#include "podium/taxonomy/taxonomy.h"

#include <algorithm>
#include <deque>

namespace podium::taxonomy {

CategoryId Taxonomy::AddCategory(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<CategoryId>(names_.size());
  names_.emplace_back(name);
  parents_.emplace_back();
  children_.emplace_back();
  index_.emplace(names_.back(), id);
  return id;
}

Status Taxonomy::AddEdge(CategoryId child, CategoryId parent) {
  if (child >= names_.size() || parent >= names_.size()) {
    return Status::OutOfRange("category id out of range");
  }
  if (child == parent) {
    return Status::InvalidArgument("self-edge in taxonomy: " + names_[child]);
  }
  const auto& existing = parents_[child];
  if (std::find(existing.begin(), existing.end(), parent) != existing.end()) {
    return Status::AlreadyExists("duplicate taxonomy edge " + names_[child] +
                                 " -> " + names_[parent]);
  }
  // Reject the edge if `child` is already an ancestor of `parent`.
  if (IsAncestor(child, parent)) {
    return Status::InvalidArgument("taxonomy cycle via " + names_[child] +
                                   " -> " + names_[parent]);
  }
  parents_[child].push_back(parent);
  children_[parent].push_back(child);
  return Status::Ok();
}

Status Taxonomy::AddEdge(std::string_view child, std::string_view parent) {
  return AddEdge(AddCategory(child), AddCategory(parent));
}

CategoryId Taxonomy::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidCategory : it->second;
}

namespace {

std::vector<CategoryId> Bfs(
    CategoryId start, const std::vector<std::vector<CategoryId>>& adjacency) {
  std::vector<CategoryId> order;
  std::vector<bool> seen(adjacency.size(), false);
  std::deque<CategoryId> queue(adjacency[start].begin(),
                               adjacency[start].end());
  for (CategoryId c : adjacency[start]) seen[c] = true;
  while (!queue.empty()) {
    CategoryId current = queue.front();
    queue.pop_front();
    order.push_back(current);
    for (CategoryId next : adjacency[current]) {
      if (!seen[next]) {
        seen[next] = true;
        queue.push_back(next);
      }
    }
  }
  return order;
}

}  // namespace

std::vector<CategoryId> Taxonomy::Ancestors(CategoryId id) const {
  return Bfs(id, parents_);
}

std::vector<CategoryId> Taxonomy::Descendants(CategoryId id) const {
  return Bfs(id, children_);
}

std::vector<CategoryId> Taxonomy::Roots() const {
  std::vector<CategoryId> roots;
  for (CategoryId id = 0; id < names_.size(); ++id) {
    if (parents_[id].empty()) roots.push_back(id);
  }
  return roots;
}

bool Taxonomy::IsAncestor(CategoryId ancestor, CategoryId descendant) const {
  if (ancestor >= names_.size() || descendant >= names_.size()) return false;
  std::vector<CategoryId> up = Ancestors(descendant);
  return std::find(up.begin(), up.end(), ancestor) != up.end();
}

}  // namespace podium::taxonomy
