#include "podium/taxonomy/inference.h"

#include <algorithm>
#include <deque>

#include "podium/util/string_util.h"

namespace podium::taxonomy {

GeneralizationRule::GeneralizationRule(std::string prefix,
                                       const Taxonomy* taxonomy,
                                       Aggregation aggregation)
    : prefix_(std::move(prefix)),
      taxonomy_(taxonomy),
      aggregation_(aggregation) {}

std::string GeneralizationRule::Describe() const {
  return "generalize '" + prefix_ + "<category>' over taxonomy";
}

namespace {

/// Categories ordered children-before-parents (reverse topological order of
/// the parent DAG), via Kahn's algorithm on child-counts.
std::vector<CategoryId> LeafToRootOrder(const Taxonomy& taxonomy) {
  const std::size_t n = taxonomy.size();
  std::vector<std::size_t> pending_children(n);
  std::deque<CategoryId> ready;
  for (CategoryId c = 0; c < n; ++c) {
    pending_children[c] = taxonomy.Children(c).size();
    if (pending_children[c] == 0) ready.push_back(c);
  }
  std::vector<CategoryId> order;
  order.reserve(n);
  while (!ready.empty()) {
    CategoryId c = ready.front();
    ready.pop_front();
    order.push_back(c);
    for (CategoryId parent : taxonomy.Parents(c)) {
      if (--pending_children[parent] == 0) ready.push_back(parent);
    }
  }
  return order;  // size < n only if the DAG invariant was violated
}

}  // namespace

Result<std::size_t> GeneralizationRule::Apply(
    ProfileRepository& repository) const {
  if (taxonomy_ == nullptr) {
    return Status::InvalidArgument("GeneralizationRule without a taxonomy");
  }
  const std::vector<CategoryId> order = LeafToRootOrder(*taxonomy_);
  if (order.size() != taxonomy_->size()) {
    return Status::Internal("taxonomy contains a cycle");
  }

  // Resolve (and lazily intern, for non-leaf targets) the property id of
  // each category. A category participates only if its property label is
  // already known or becomes a derivation target.
  PropertyTable& table = repository.properties();
  std::vector<PropertyId> property_of(taxonomy_->size(), kInvalidProperty);
  for (CategoryId c = 0; c < taxonomy_->size(); ++c) {
    property_of[c] = table.Find(prefix_ + taxonomy_->Name(c));
  }

  // Support counts for kSupportMean are computed against observed data,
  // before this rule adds anything.
  std::vector<double> support(taxonomy_->size(), 0.0);
  if (aggregation_ == Aggregation::kSupportMean) {
    for (CategoryId c = 0; c < taxonomy_->size(); ++c) {
      if (property_of[c] != kInvalidProperty) {
        support[c] =
            static_cast<double>(repository.SupportCount(property_of[c]));
      }
    }
  }

  std::size_t added = 0;
  std::vector<double> value(taxonomy_->size(), 0.0);
  std::vector<double> weight(taxonomy_->size(), 0.0);
  std::vector<bool> known(taxonomy_->size(), false);
  for (UserId u = 0; u < repository.user_count(); ++u) {
    std::fill(known.begin(), known.end(), false);
    // Seed with observed scores.
    for (CategoryId c : order) {
      if (property_of[c] == kInvalidProperty) continue;
      if (auto score = repository.user(u).Get(property_of[c])) {
        value[c] = *score;
        weight[c] = aggregation_ == Aggregation::kSupportMean
                        ? std::max(support[c], 1.0)
                        : 1.0;
        known[c] = true;
      }
    }
    // Propagate leaf-to-root.
    for (CategoryId c : order) {
      if (known[c]) continue;
      double weighted_sum = 0.0;
      double total_weight = 0.0;
      double max_value = 0.0;
      bool any = false;
      for (CategoryId child : taxonomy_->Children(c)) {
        if (!known[child]) continue;
        weighted_sum += value[child] * weight[child];
        total_weight += weight[child];
        max_value = any ? std::max(max_value, value[child]) : value[child];
        any = true;
      }
      if (!any) continue;
      const double derived = aggregation_ == Aggregation::kMax
                                 ? max_value
                                 : weighted_sum / total_weight;
      value[c] = derived;
      weight[c] = total_weight;
      known[c] = true;
      if (property_of[c] == kInvalidProperty) {
        property_of[c] = table.Intern(prefix_ + taxonomy_->Name(c));
      }
      PODIUM_RETURN_IF_ERROR(
          repository.SetScore(u, property_of[c], derived));
      ++added;
    }
  }
  return added;
}

FunctionalPropertyRule::FunctionalPropertyRule(std::string prefix,
                                               std::vector<std::string> domain)
    : prefix_(std::move(prefix)), domain_(std::move(domain)) {}

std::string FunctionalPropertyRule::Describe() const {
  return "functional property '" + prefix_ + "<value>'";
}

Result<std::size_t> FunctionalPropertyRule::Apply(
    ProfileRepository& repository) const {
  PropertyTable& table = repository.properties();

  // Resolve the domain to property ids.
  std::vector<PropertyId> domain_ids;
  if (domain_.empty()) {
    for (PropertyId p = 0; p < table.size(); ++p) {
      if (util::StartsWith(table.Label(p), prefix_)) domain_ids.push_back(p);
    }
  } else {
    for (const std::string& v : domain_) {
      domain_ids.push_back(table.Intern(prefix_ + v, PropertyKind::kBoolean));
    }
  }
  if (domain_ids.size() < 2) return std::size_t{0};

  std::size_t added = 0;
  for (UserId u = 0; u < repository.user_count(); ++u) {
    PropertyId true_property = kInvalidProperty;
    bool conflict = false;
    for (PropertyId p : domain_ids) {
      auto score = repository.user(u).Get(p);
      if (score.has_value() && *score == 1.0) {
        if (true_property != kInvalidProperty) {
          conflict = true;
          break;
        }
        true_property = p;
      }
    }
    if (conflict) {
      return Status::FailedPrecondition(util::StringPrintf(
          "user '%s' has multiple true values for functional property '%s'",
          repository.user(u).name().c_str(), prefix_.c_str()));
    }
    if (true_property == kInvalidProperty) continue;
    for (PropertyId p : domain_ids) {
      if (p == true_property || repository.user(u).Has(p)) continue;
      PODIUM_RETURN_IF_ERROR(repository.SetScore(u, p, 0.0));
      ++added;
    }
  }
  return added;
}

void Enricher::AddRule(std::unique_ptr<InferenceRule> rule) {
  rules_.push_back(std::move(rule));
}

Result<std::size_t> Enricher::Apply(ProfileRepository& repository) const {
  std::size_t total = 0;
  for (const auto& rule : rules_) {
    Result<std::size_t> added = rule->Apply(repository);
    if (!added.ok()) return added.status();
    total += added.value();
  }
  return total;
}

Result<std::size_t> Enricher::ApplyToFixpoint(ProfileRepository& repository,
                                              int max_rounds) const {
  std::size_t total = 0;
  for (int round = 0; round < max_rounds; ++round) {
    Result<std::size_t> added = Apply(repository);
    if (!added.ok()) return added.status();
    total += added.value();
    if (added.value() == 0) break;
  }
  return total;
}

}  // namespace podium::taxonomy
