#ifndef PODIUM_TAXONOMY_INFERENCE_H_
#define PODIUM_TAXONOMY_INFERENCE_H_

#include <memory>
#include <string>
#include <vector>

#include "podium/profile/repository.h"
#include "podium/taxonomy/taxonomy.h"
#include "podium/util/result.h"

namespace podium::taxonomy {

/// A profile-completion inference rule (Section 3.1). Rules add derived
/// properties to user profiles; they never overwrite scores a user already
/// has, preserving the precedence of observed data over inferred data.
class InferenceRule {
 public:
  virtual ~InferenceRule() = default;

  /// Human-readable rule description for logs and explanations.
  virtual std::string Describe() const = 0;

  /// Applies the rule over all profiles; returns the number of property
  /// scores added.
  virtual Result<std::size_t> Apply(ProfileRepository& repository) const = 0;
};

/// How a GeneralizationRule combines child-category scores into the parent.
enum class Aggregation {
  kMean,          // plain average of known child scores
  kSupportMean,   // average weighted by each child property's support |p|
  kMax,           // optimistic: strongest child signal
};

/// Generalization over a taxonomy (Example 3.2): given properties named
/// "<prefix><Category>" (e.g. "avgRating Mexican") and a taxonomy edge
/// Mexican -> Latin, derives "<prefix>Latin" for users who have scores for
/// any child of Latin. Propagation runs leaf-to-root, so derived values
/// feed further generalization (Mexican -> Latin -> Food).
class GeneralizationRule : public InferenceRule {
 public:
  /// `prefix` includes any separator, e.g. "avgRating ".
  GeneralizationRule(std::string prefix, const Taxonomy* taxonomy,
                     Aggregation aggregation = Aggregation::kMean);

  std::string Describe() const override;
  Result<std::size_t> Apply(ProfileRepository& repository) const override;

 private:
  std::string prefix_;
  const Taxonomy* taxonomy_;  // not owned; must outlive the rule
  Aggregation aggregation_;
};

/// Closed-world completion for functional properties (Example 3.2): if
/// "<prefix><X>" holds with score 1 for exactly one X, then "<prefix><Y>"
/// is inferred false (score 0) for every other Y in the property's domain.
/// A user with two true values for a functional property is a data
/// inconsistency and fails the rule.
class FunctionalPropertyRule : public InferenceRule {
 public:
  /// The domain is the set of value labels, e.g. all cities. If empty, the
  /// domain is discovered from the repository (all properties that start
  /// with `prefix`).
  FunctionalPropertyRule(std::string prefix,
                         std::vector<std::string> domain = {});

  std::string Describe() const override;
  Result<std::size_t> Apply(ProfileRepository& repository) const override;

 private:
  std::string prefix_;
  std::vector<std::string> domain_;
};

/// Applies an ordered list of rules; optionally iterates to fixpoint so
/// rules can feed each other.
class Enricher {
 public:
  Enricher() = default;

  void AddRule(std::unique_ptr<InferenceRule> rule);
  std::size_t rule_count() const { return rules_.size(); }

  /// One pass over all rules; returns total scores added.
  Result<std::size_t> Apply(ProfileRepository& repository) const;

  /// Repeats passes until no rule adds anything or `max_rounds` passes ran.
  Result<std::size_t> ApplyToFixpoint(ProfileRepository& repository,
                                      int max_rounds = 8) const;

 private:
  std::vector<std::unique_ptr<InferenceRule>> rules_;
};

}  // namespace podium::taxonomy

#endif  // PODIUM_TAXONOMY_INFERENCE_H_
