#ifndef PODIUM_TAXONOMY_TAXONOMY_H_
#define PODIUM_TAXONOMY_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "podium/util/result.h"

namespace podium::taxonomy {

/// Dense identifier of a taxonomy category.
using CategoryId = std::uint32_t;
inline constexpr CategoryId kInvalidCategory = 0xFFFFFFFFu;

/// A directed acyclic generalization hierarchy over category names, e.g.
/// Mexican -> Latin -> Food (Section 3.1, Example 3.2). A category may have
/// several parents (Fusion -> {Asian, European}).
class Taxonomy {
 public:
  Taxonomy() = default;

  /// Adds (or finds) a category by name.
  CategoryId AddCategory(std::string_view name);

  /// Declares `child` IS-A `parent`. Fails if this would create a cycle or
  /// if the edge already exists.
  Status AddEdge(CategoryId child, CategoryId parent);

  /// Name-based convenience; creates missing categories.
  Status AddEdge(std::string_view child, std::string_view parent);

  CategoryId Find(std::string_view name) const;
  const std::string& Name(CategoryId id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

  const std::vector<CategoryId>& Parents(CategoryId id) const {
    return parents_[id];
  }
  const std::vector<CategoryId>& Children(CategoryId id) const {
    return children_[id];
  }

  /// All strict ancestors of `id` (transitive parents), deduplicated, in
  /// breadth-first order.
  std::vector<CategoryId> Ancestors(CategoryId id) const;

  /// All strict descendants of `id`, deduplicated, in breadth-first order.
  std::vector<CategoryId> Descendants(CategoryId id) const;

  /// Categories with no parents.
  std::vector<CategoryId> Roots() const;

  /// True if `ancestor` is reachable from `descendant` via parent edges.
  bool IsAncestor(CategoryId ancestor, CategoryId descendant) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<CategoryId>> parents_;
  std::vector<std::vector<CategoryId>> children_;
  std::unordered_map<std::string, CategoryId> index_;
};

}  // namespace podium::taxonomy

#endif  // PODIUM_TAXONOMY_TAXONOMY_H_
