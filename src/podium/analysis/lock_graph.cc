#include "podium/analysis/lock_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string_view>
#include <utility>

namespace podium::analysis {

namespace {

/// One lock the calling thread currently holds (or held before parking in
/// a condition-variable wait).
struct HeldLock {
  const void* mutex = nullptr;
  const char* name = "";
  AcquisitionSite site;
};

/// The held stack is thread-local and touched without any lock; the graph
/// below is global and guarded by a raw std::mutex — deliberately NOT a
/// util::Mutex, which would re-enter these hooks.
thread_local std::vector<HeldLock>* t_held = nullptr;
thread_local std::vector<HeldLock>* t_parked = nullptr;  // inside CondVar waits

std::vector<HeldLock>& Held() {
  // Leaked on purpose: instrumented locks fire during thread and static
  // destruction, after a non-leaked vector would already be gone.
  if (t_held == nullptr) {
    t_held = new std::vector<HeldLock>();  // podium-lint: allow(raw-new)
  }
  return *t_held;
}

std::vector<HeldLock>& Parked() {
  if (t_parked == nullptr) {
    t_parked = new std::vector<HeldLock>();  // podium-lint: allow(raw-new)
  }
  return *t_parked;
}

/// First recorded witness for a (holder, acquired) class pair. Later
/// identical nestings are deduplicated — the report always cites the
/// original sites.
struct EdgeWitness {
  AcquisitionSite holder_site;
  AcquisitionSite acquired_site;
};

struct Graph {
  std::mutex mutex;
  /// adjacency[holder][acquired] = first witness of holder→acquired.
  std::map<std::string, std::map<std::string, EdgeWitness>> adjacency;
  /// Closing edges already reported, so a hot inversion reports once.
  std::set<std::pair<std::string, std::string>> reported;
  CycleHandler handler;
};

Graph& TheGraph() {
  // Leaked: see Held().  podium-lint: allow(raw-new)
  static Graph* graph = new Graph();
  return *graph;
}

void DefaultHandler(const CycleReport& report) {
  const std::string rendered = report.Render();
  std::fwrite(rendered.data(), 1, rendered.size(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}

std::string FormatSite(const AcquisitionSite& site) {
  std::string out = site.file != nullptr ? site.file : "";
  const std::size_t slash = out.rfind('/');
  if (slash != std::string::npos) out.erase(0, slash + 1);
  out += ':';
  out += std::to_string(site.line);
  return out;
}

/// Depth-first search for a path `from` →* `to` over the adjacency map.
/// Returns the edge chain when one exists. Called with the graph mutex
/// held; the graph is small (one node per lock class) so recursion depth
/// and cost are bounded by the number of classes.
bool FindPath(const Graph& graph, const std::string& from,
              const std::string& to, std::set<std::string>* visited,
              std::vector<LockOrderEdge>* path) {
  if (from == to) return true;
  if (!visited->insert(from).second) return false;
  const auto it = graph.adjacency.find(from);
  if (it == graph.adjacency.end()) return false;
  for (const auto& [next, witness] : it->second) {
    LockOrderEdge edge;
    edge.holder = from;
    edge.acquired = next;
    edge.holder_site = witness.holder_site;
    edge.acquired_site = witness.acquired_site;
    path->push_back(std::move(edge));
    if (FindPath(graph, next, to, visited, path)) return true;
    path->pop_back();
  }
  return false;
}

void Report(const CycleReport& report) {
  CycleHandler handler;
  {
    std::lock_guard<std::mutex> lock(TheGraph().mutex);
    handler = TheGraph().handler;
  }
  if (handler) {
    handler(report);
  } else {
    DefaultHandler(report);
  }
}

}  // namespace

std::string CycleReport::Render() const {
  std::string out;
  if (kind == Kind::kRecursive) {
    out += "podium lock-order: recursive acquisition of \"";
    out += closing_edge.acquired;
    out += "\" (same mutex instance)\n";
    out += "  first acquired at " + FormatSite(closing_edge.holder_site) +
           "\n";
    out += "  reacquired at " + FormatSite(closing_edge.acquired_site) +
           " while still held — self-deadlock\n";
    return out;
  }
  out += "podium lock-order: cycle closed by \"";
  out += closing_edge.holder;
  out += "\" -> \"";
  out += closing_edge.acquired;
  out += "\"\n";
  out += "  new edge: holding \"" + closing_edge.holder + "\" (acquired at " +
         FormatSite(closing_edge.holder_site) + ") while acquiring \"" +
         closing_edge.acquired + "\" at " +
         FormatSite(closing_edge.acquired_site) + "\n";
  out += "  conflicts with recorded order:\n";
  for (const LockOrderEdge& edge : path) {
    out += "    holding \"" + edge.holder + "\" (acquired at " +
           FormatSite(edge.holder_site) + ") while acquiring \"" +
           edge.acquired + "\" at " + FormatSite(edge.acquired_site) + "\n";
  }
  out += "  some interleaving of these acquisitions deadlocks.\n";
  return out;
}

CycleHandler SetLockCycleHandler(CycleHandler handler) {
  std::lock_guard<std::mutex> lock(TheGraph().mutex);
  CycleHandler previous = std::move(TheGraph().handler);
  TheGraph().handler = std::move(handler);
  return previous;
}

void OnLock(const void* mutex, const char* name,
            const AcquisitionSite& site) {
  std::vector<HeldLock>& held = Held();

  // Same-instance reacquire: self-deadlock regardless of any other lock.
  for (const HeldLock& lock : held) {
    if (lock.mutex == mutex) {
      CycleReport report;
      report.kind = CycleReport::Kind::kRecursive;
      report.closing_edge.holder = lock.name;
      report.closing_edge.acquired = name;
      report.closing_edge.holder_site = lock.site;
      report.closing_edge.acquired_site = site;
      Report(report);
      // Fall through: with a non-aborting handler installed the caller
      // continues (tests drive hooks without real locking).
      break;
    }
  }

  if (!held.empty()) {
    // Record holder→name for every held lock, checking each new edge for
    // a cycle before inserting it.
    std::vector<CycleReport> cycles;
    {
      Graph& graph = TheGraph();
      std::lock_guard<std::mutex> lock(graph.mutex);
      for (const HeldLock& holder : held) {
        // Same-class nesting (two instances sharing a name) is not an
        // edge: a self-loop would flag legitimately ordered siblings.
        // Same-*instance* reacquire was reported above as kRecursive.
        if (std::string_view(holder.name) == name) continue;
        auto& out_edges = graph.adjacency[holder.name];
        if (out_edges.find(name) != out_edges.end()) continue;  // known
        std::set<std::string> visited;
        std::vector<LockOrderEdge> path;
        if (FindPath(graph, name, holder.name, &visited, &path) &&
            graph.reported.insert({holder.name, name}).second) {
          CycleReport report;
          report.kind = CycleReport::Kind::kCycle;
          report.closing_edge.holder = holder.name;
          report.closing_edge.acquired = name;
          report.closing_edge.holder_site = holder.site;
          report.closing_edge.acquired_site = site;
          report.path = std::move(path);
          cycles.push_back(std::move(report));
        }
        EdgeWitness witness;
        witness.holder_site = holder.site;
        witness.acquired_site = site;
        out_edges.emplace(name, witness);
      }
    }
    // Report outside the graph mutex: handlers may re-enter (log through
    // instrumented locks) or abort.
    for (const CycleReport& report : cycles) Report(report);
  }

  held.push_back(HeldLock{mutex, name, site});
}

void OnTryLock(const void* mutex, const char* name, bool acquired,
               const AcquisitionSite& site) {
  if (!acquired) return;  // a failed try-lock never blocked: no edge
  Held().push_back(HeldLock{mutex, name, site});
}

void OnUnlock(const void* mutex) {
  std::vector<HeldLock>& held = Held();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mutex == mutex) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void OnCondVarWait(const void* mutex) {
  std::vector<HeldLock>& held = Held();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mutex == mutex) {
      Parked().push_back(*it);
      held.erase(std::next(it).base());
      return;
    }
  }
}

void OnCondVarRequeue(const void* mutex) {
  std::vector<HeldLock>& parked = Parked();
  for (auto it = parked.rbegin(); it != parked.rend(); ++it) {
    if (it->mutex == mutex) {
      // Original name and site survive the wait: the reacquire is the
      // same commitment, not a new edge.
      Held().push_back(*it);
      parked.erase(std::next(it).base());
      return;
    }
  }
}

void ResetLockGraphForTest() {
  Graph& graph = TheGraph();
  std::lock_guard<std::mutex> lock(graph.mutex);
  graph.adjacency.clear();
  graph.reported.clear();
}

std::size_t EdgeCountForTest() {
  Graph& graph = TheGraph();
  std::lock_guard<std::mutex> lock(graph.mutex);
  std::size_t count = 0;
  for (const auto& [node, edges] : graph.adjacency) count += edges.size();
  return count;
}

bool IsHeldForTest(const void* mutex) {
  for (const HeldLock& lock : Held()) {
    if (lock.mutex == mutex) return true;
  }
  return false;
}

std::size_t HeldCountForTest() { return Held().size(); }

}  // namespace podium::analysis
