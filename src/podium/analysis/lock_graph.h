#ifndef PODIUM_ANALYSIS_LOCK_GRAPH_H_
#define PODIUM_ANALYSIS_LOCK_GRAPH_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

/// Runtime lock-order deadlock detection (DESIGN.md §14).
///
/// Every `util::Mutex` carries a stable name — its *lock class*, shared by
/// all instances created with that name — and, in builds configured with
/// `-DPODIUM_LOCK_ORDER=ON`, every acquisition reports here. The detector
/// keeps a thread-local stack of held locks and a process-wide directed
/// graph over lock classes: holding "a" while acquiring "b" records the
/// edge a→b with both acquisition sites (file:line via
/// std::source_location). The first acquisition that would close a cycle
/// — an inversion some interleaving can turn into a real deadlock, even
/// if this run never blocks — invokes the cycle handler with the closing
/// edge, the pre-existing path it conflicts with, and every recorded
/// site. The default handler renders the report to stderr and aborts;
/// tests install their own via SetLockCycleHandler.
///
/// This header is deliberately dependency-free (no podium includes, raw
/// std::mutex inside lock_graph.cc): it sits *below* util/ in the module
/// DAG so the instrumentation weave in util/mutex.h is a legal layered
/// edge, and the detector can never re-enter itself through util::Mutex.
///
/// The hooks are ordinary functions, callable directly: the unit tests
/// drive them without any instrumented build, so the graph machinery is
/// covered by the plain test suite while the `lock-order` CI job proves
/// the woven instrumentation end to end.
namespace podium::analysis {

/// Where an acquisition happened, captured from std::source_location at
/// the Lock()/MutexLock call site. Pointers reference static storage
/// (source_location string literals); copies are cheap and never dangle.
struct AcquisitionSite {
  const char* file = "";
  unsigned line = 0;
  const char* function = "";
};

/// One recorded ordering commitment: `holder` was held (acquired at
/// holder_site) while `acquired` was being acquired (at acquired_site).
struct LockOrderEdge {
  std::string holder;
  std::string acquired;
  AcquisitionSite holder_site;
  AcquisitionSite acquired_site;
};

/// What the detector found. `kCycle`: the new edge closes a directed
/// cycle with `path` (the pre-existing chain from the acquired class back
/// to the holder class). `kRecursive`: the same mutex *instance* is
/// already on this thread's held stack — self-deadlock, reported
/// distinctly because no second thread or inverted edge is involved.
struct CycleReport {
  enum class Kind { kCycle, kRecursive };

  Kind kind = Kind::kCycle;
  LockOrderEdge closing_edge;
  std::vector<LockOrderEdge> path;  // empty for kRecursive

  /// Multi-line human-readable rendering: the conflict, then every edge
  /// with its original acquisition sites.
  std::string Render() const;
};

/// Called on the acquiring thread, before it blocks. Handlers that
/// return let execution continue (the acquisition proceeds; for a real
/// inversion the process may then genuinely deadlock — the default
/// handler prints Render() to stderr and aborts instead).
using CycleHandler = std::function<void(const CycleReport&)>;

/// Installs `handler` for subsequent reports; nullptr restores the
/// abort-on-report default. Returns the previous handler.
CycleHandler SetLockCycleHandler(CycleHandler handler);

/// --- Hooks woven into util::Mutex / MutexLock / CondVar ------------------

/// Blocking acquisition about to start: checks for same-instance
/// recursion and for a cycle over lock classes, records edges from every
/// held lock to `name`, then pushes `mutex` onto the held stack. Runs
/// before the underlying lock() so a genuine deadlock is reported rather
/// than waited on.
void OnLock(const void* mutex, const char* name, const AcquisitionSite& site);

/// Non-blocking attempt: on success the lock joins the held stack (later
/// acquisitions under it record edges from it) but records no incoming
/// edge — a try-lock can fail but never block, so it cannot close a
/// deadlock cycle. A failed attempt records nothing at all.
void OnTryLock(const void* mutex, const char* name, bool acquired,
               const AcquisitionSite& site);

/// Release: removes `mutex` from the held stack (searched from the top;
/// condition-variable waits release out of LIFO order).
void OnUnlock(const void* mutex);

/// CondVar::Wait is a release + reacquire pair: the wait removes `mutex`
/// from the held stack while the thread sleeps (other threads really can
/// acquire it), and the wake re-adds it with its original acquisition
/// site without recording new edges — the ordering commitment was made
/// at the original acquisition, so waits never poison the graph.
void OnCondVarWait(const void* mutex);
void OnCondVarRequeue(const void* mutex);

/// --- Test support --------------------------------------------------------

/// Drops every recorded edge and forgets reported cycles. Held stacks are
/// thread-local and survive; tests reset between scenarios on one thread.
void ResetLockGraphForTest();

/// Number of distinct recorded (holder, acquired) class pairs.
std::size_t EdgeCountForTest();

/// True when `mutex` is on the calling thread's held stack.
bool IsHeldForTest(const void* mutex);

/// Locks currently held by the calling thread (waiting locks excluded).
std::size_t HeldCountForTest();

}  // namespace podium::analysis

#endif  // PODIUM_ANALYSIS_LOCK_GRAPH_H_
