#ifndef PODIUM_UTIL_STRING_UTIL_H_
#define PODIUM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace podium::util {

/// Splits `input` on `delimiter`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `parts` with `separator` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view input);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a double with `digits` significant fraction digits, trimming
/// trailing zeros ("0.25", "3", "0.333").
std::string FormatDouble(double value, int digits = 4);

}  // namespace podium::util

#endif  // PODIUM_UTIL_STRING_UTIL_H_
