#ifndef PODIUM_UTIL_RNG_H_
#define PODIUM_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace podium::util {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All randomness in the library flows through this type so
/// that every experiment is reproducible from a single seed.
///
/// Not thread-safe; use one Rng per thread.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, bound) without modulo bias; bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Zipf-like rank sample over [0, n): index i with weight 1/(i+1)^s.
  /// Used by the data generators to produce long-tailed activity levels.
  std::size_t NextZipf(std::size_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k > n yields all of [0, n)),
  /// in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Derives an independent child generator; children with distinct labels
  /// produce independent streams.
  Rng Fork(std::uint64_t label);

 private:
  std::uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace podium::util

#endif  // PODIUM_UTIL_RNG_H_
