#include "podium/util/arena.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

namespace podium::util {

Arena::Arena(std::size_t capacity_bytes) : capacity_(RoundUp(capacity_bytes)) {
  // One aligned block for payload + guard. The guard stays zero forever:
  // SIMD gathers may read it, nothing writes it.
  block_.reset(static_cast<std::byte*>(::operator new[](
      capacity_ + kGuardBytes, std::align_val_t{kAlignment})));
  std::memset(block_.get(), 0, capacity_ + kGuardBytes);
}

std::byte* Arena::TakeBytes(std::size_t bytes) {
  if (block_ == nullptr || bytes > capacity_ - used_) return nullptr;
  std::byte* out = block_.get() + used_;
  used_ += bytes;
  return out;
}

void Arena::Reset() {
  if (block_ != nullptr && used_ > 0) {
    std::memset(block_.get(), 0, used_);
  }
  used_ = 0;
}

void Arena::DieExhausted(std::size_t requested_bytes) const {
  // The arena sits below the logging layer; a capacity bug is fatal and
  // unrecoverable, so report it on stderr and abort.
  std::fprintf(stderr,
               "podium::util::Arena exhausted: request of %zu bytes with "
               "%zu of %zu used\n",
               requested_bytes, used_, capacity_);
  std::abort();
}

}  // namespace podium::util
