#include "podium/util/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace podium::util {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return StableSum(values) / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return acc / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  assert(std::is_sorted(sorted.begin(), sorted.end()));
  q = Clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Clamp(double value, double lo, double hi) {
  return std::max(lo, std::min(hi, value));
}

bool AlmostEqual(double a, double b, double tolerance) {
  return std::fabs(a - b) <= tolerance;
}

double StableSum(const std::vector<double>& values) {
  double sum = 0.0;
  double compensation = 0.0;
  for (double v : values) {
    const double y = v - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace podium::util
