#include "podium/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

// Known layering wart: the pool instruments itself (phase timers, the
// thread-count gauge), which points util/ up at telemetry/. Inverting it
// means an observer-callback seam nothing else needs yet; tolerated here,
// and only here, until a second util/ client wants telemetry.
// podium-lint: allow(layer-violation)
#include "podium/telemetry/phase.h"
// podium-lint: allow(layer-violation)
#include "podium/telemetry/telemetry.h"
#include "podium/util/mutex.h"
#include "podium/util/parse.h"
#include "podium/util/thread_annotations.h"

namespace podium::util {

namespace {

/// Set while the thread executes chunks of some loop; nested ParallelFor
/// calls observe it and run inline.
thread_local bool t_in_parallel = false;

}  // namespace

bool InParallelRegion() { return t_in_parallel; }

ChunkPlan PlanChunks(std::size_t n, std::size_t grain) {
  ChunkPlan plan;
  if (n == 0) return plan;
  const std::size_t min_chunk = std::max<std::size_t>(grain, 1);
  // At most kMaxChunks chunks, each at least `grain` items; ceil divisions
  // keep the last chunk the short one.
  plan.chunk_size = std::max(min_chunk, (n + kMaxChunks - 1) / kMaxChunks);
  plan.num_chunks = (n + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

/// One ParallelFor in flight: the chunk cursor the executing threads pop
/// from, the per-chunk error slots, and the completion accounting the
/// caller blocks on. Lives on the caller's stack; workers are counted in
/// and out under the pool mutex so it cannot be freed while in use.
struct ThreadPool::Job {
  std::size_t n = 0;
  ChunkPlan plan;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
      nullptr;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> chunks_left{0};
  std::size_t active_workers = 0;  // guarded by the pool mutex
  std::vector<std::exception_ptr> errors;
};

ThreadPool::ThreadPool(std::size_t thread_count) {
  const std::size_t workers =
      thread_count > 0 ? thread_count - 1 : static_cast<std::size_t>(0);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunks(Job& job) {
  const bool was_parallel = t_in_parallel;
  t_in_parallel = true;
  for (;;) {
    const std::size_t chunk =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.plan.num_chunks) break;
    try {
      (*job.body)(job.plan.ChunkBegin(chunk), job.plan.ChunkEnd(chunk, job.n),
                  chunk);
    } catch (...) {
      job.errors[chunk] = std::current_exception();
    }
    job.chunks_left.fetch_sub(1, std::memory_order_acq_rel);
  }
  t_in_parallel = was_parallel;
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stopping_ &&
             (job_ == nullptr || generation_ == seen_generation)) {
        work_ready_.Wait(lock);
      }
      if (stopping_) return;
      job = job_;
      seen_generation = generation_;
      ++job->active_workers;
    }
    RunChunks(*job);
    {
      MutexLock lock(mutex_);
      --job->active_workers;
    }
    work_done_.NotifyAll();
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  Job job;
  job.n = n;
  job.plan = PlanChunks(n, grain);
  job.body = &body;
  job.chunks_left.store(job.plan.num_chunks, std::memory_order_relaxed);
  job.errors.assign(job.plan.num_chunks, nullptr);

  const bool serial =
      workers_.empty() || t_in_parallel || job.plan.num_chunks == 1;
  if (!serial) {
    {
      MutexLock lock(mutex_);
      job_ = &job;
      ++generation_;
    }
    work_ready_.NotifyAll();
  }
  RunChunks(job);
  if (!serial) {
    MutexLock lock(mutex_);
    while (job.chunks_left.load(std::memory_order_acquire) != 0 ||
           job.active_workers != 0) {
      work_done_.Wait(lock);
    }
    job_ = nullptr;
  }
  for (std::exception_ptr& error : job.errors) {
    if (error) std::rethrow_exception(error);
  }
}

namespace {

Mutex g_global_mutex{"threadpool.global"};
std::size_t g_configured_threads PODIUM_GUARDED_BY(g_global_mutex) =
    0;  // 0 = automatic
std::unique_ptr<ThreadPool> g_global_pool PODIUM_GUARDED_BY(g_global_mutex);

std::size_t ResolveThreadCount() PODIUM_REQUIRES(g_global_mutex) {
  if (g_configured_threads > 0) return g_configured_threads;
  if (const char* env = std::getenv("PODIUM_THREADS")) {
    // Checked parse: PODIUM_THREADS=8abc or an overflowing value used to
    // be strtol-salvaged into a thread count; now anything but a whole
    // positive integer is ignored and the hardware default applies.
    const Result<std::size_t> parsed = ParseSize(env);
    if (parsed.ok() && parsed.value() > 0) return parsed.value();
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  MutexLock lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(ResolveThreadCount());
    if (telemetry::Enabled()) {
      telemetry::MetricsRegistry::Global().gauge("parallel.threads").Set(
          static_cast<double>(g_global_pool->thread_count()));
    }
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreadCount(std::size_t count) {
  MutexLock lock(g_global_mutex);
  g_configured_threads = count;
  g_global_pool.reset();  // rebuilt at the new size on next use
}

std::size_t ThreadPool::GlobalThreadCount() {
  MutexLock lock(g_global_mutex);
  return g_global_pool ? g_global_pool->thread_count() : ResolveThreadCount();
}

namespace internal {

void DispatchParallelFor(
    std::string_view name, std::size_t n, std::size_t grain,
    const ChunkPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  ThreadPool& pool = ThreadPool::Global();
  if (!telemetry::Enabled()) {
    pool.ParallelFor(n, grain, body);
    return;
  }
  const std::string prefix = "parallel." + std::string(name);
  auto& registry = telemetry::MetricsRegistry::Global();
  registry.counter(prefix + ".invocations").Add();
  registry.gauge(prefix + ".threads")
      .Set(static_cast<double>(std::min(pool.thread_count(), plan.num_chunks)));
  registry.gauge(prefix + ".chunks").Set(static_cast<double>(plan.num_chunks));
  telemetry::PhaseSpan span(prefix);
  pool.ParallelFor(n, grain, body);
}

}  // namespace internal

}  // namespace podium::util
