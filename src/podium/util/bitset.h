#ifndef PODIUM_UTIL_BITSET_H_
#define PODIUM_UTIL_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace podium::util {

/// A fixed-size bitset over caller-provided (typically Arena-allocated)
/// 64-bit words, built for the greedy selector's alive set: the argmax
/// scan walks it word-at-a-time, skipping 64 retired users per all-zero
/// word instead of testing a byte per user.
///
/// The view does not own its words; the backing span must be
/// WordsFor(bits) long and outlive the bitset. Words are expected
/// zero-initialized (Arena spans are); bits past `size()` in the last
/// word must stay clear — Set() enforces this by contract (callers pass
/// indices < size()), and ForEachSet relies on it.
class FixedBitset {
 public:
  FixedBitset() = default;

  FixedBitset(std::span<std::uint64_t> words, std::size_t bits)
      : words_(words), bits_(bits) {}

  /// Number of 64-bit words needed to back `bits` bits.
  static constexpr std::size_t WordsFor(std::size_t bits) {
    return (bits + 63) / 64;
  }

  std::size_t size() const { return bits_; }

  void Set(std::size_t i) { words_[i >> 6] |= Mask(i); }
  void Clear(std::size_t i) { words_[i >> 6] &= ~Mask(i); }
  bool Test(std::size_t i) const { return (words_[i >> 6] & Mask(i)) != 0; }

  /// Population count over all words.
  std::size_t CountSet() const {
    std::size_t count = 0;
    for (std::uint64_t word : words_) count += std::popcount(word);
    return count;
  }

  /// Calls `fn(index)` for every set bit in ascending order, one word at a
  /// time: an all-zero word costs one load and one test.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        fn((w << 6) + static_cast<std::size_t>(bit));
      }
    }
  }

  std::span<const std::uint64_t> words() const { return words_; }

 private:
  static constexpr std::uint64_t Mask(std::size_t i) {
    return std::uint64_t{1} << (i & 63);
  }

  std::span<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

}  // namespace podium::util

#endif  // PODIUM_UTIL_BITSET_H_
