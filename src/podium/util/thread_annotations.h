#ifndef PODIUM_UTIL_THREAD_ANNOTATIONS_H_
#define PODIUM_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes behind PODIUM_ macros, no-ops
/// on every other compiler. The analysis proves lock discipline at compile
/// time: which mutex guards which member, which functions must (or must
/// not) hold which lock, and that every acquire has a matching release.
/// The CI `static-analysis` job builds with
/// `-Wthread-safety -Werror=thread-safety`, so an unannotated access to a
/// guarded member — or a call that violates the declared lock order — is a
/// build break, not a TSAN lottery ticket.
///
/// The attributes only fire on types declared as capabilities, which the
/// standard library's std::mutex is not (libstdc++ ships it unannotated);
/// concurrent code therefore uses podium::util::Mutex / MutexLock /
/// CondVar from util/mutex.h, which carry these annotations.
///
/// Conventions (DESIGN.md §10):
///  - every member written under a lock is declared PODIUM_GUARDED_BY(mu);
///  - private helpers called with the lock held say PODIUM_REQUIRES(mu);
///  - public entry points that take the lock themselves say
///    PODIUM_EXCLUDES(mu), which doubles as the machine-checked statement
///    of a lock-ordering rule ("this call must not run under that mutex").

#if defined(__clang__)
#define PODIUM_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PODIUM_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Declares a type as a lockable capability ("mutex").
#define PODIUM_CAPABILITY(x) PODIUM_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define PODIUM_SCOPED_CAPABILITY \
  PODIUM_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Member data that may only be read or written while holding `x`.
#define PODIUM_GUARDED_BY(x) PODIUM_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose pointee (not the pointer itself) is guarded by `x`.
#define PODIUM_PT_GUARDED_BY(x) \
  PODIUM_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The caller must hold the listed capabilities (exclusively).
#define PODIUM_REQUIRES(...) \
  PODIUM_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities. This is how a lock
/// hierarchy is written down: annotating Foo::Bar() with
/// PODIUM_EXCLUDES(other.mutex) forbids ever nesting Bar() under it.
#define PODIUM_EXCLUDES(...) \
  PODIUM_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function acquires the listed capabilities and returns holding them.
#define PODIUM_ACQUIRE(...) \
  PODIUM_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define PODIUM_RELEASE(...) \
  PODIUM_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define PODIUM_TRY_ACQUIRE(...) \
  PODIUM_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the capability named by the
/// arguments (lets accessors participate in the analysis).
#define PODIUM_RETURN_CAPABILITY(x) \
  PODIUM_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the definition is trusted, not analyzed. Use sparingly
/// and say why at the use site.
#define PODIUM_NO_THREAD_SAFETY_ANALYSIS \
  PODIUM_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // PODIUM_UTIL_THREAD_ANNOTATIONS_H_
