#include "podium/util/parse.h"

#include <charconv>
#include <cmath>
#include <string>
#include <system_error>
#include <type_traits>

namespace podium::util {

namespace {

std::string Quoted(std::string_view text) {
  std::string out = "'";
  out.append(text);
  out += '\'';
  return out;
}

template <typename T>
Result<T> ParseWith(std::string_view text, const char* kind) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string("empty ") + kind);
  }
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  // std::from_chars accepts neither leading whitespace nor a leading '+',
  // never reads errno, and reports the exact end of the number — the
  // checked core the C library parsers lack.
  std::from_chars_result parsed;
  if constexpr (std::is_floating_point_v<T>) {
    parsed = std::from_chars(first, last, value, std::chars_format::general);
  } else {
    parsed = std::from_chars(first, last, value);
  }
  if (parsed.ec == std::errc::result_out_of_range) {
    return Status::OutOfRange(Quoted(text) + " overflows " + kind);
  }
  if (parsed.ec != std::errc() || parsed.ptr != last) {
    return Status::InvalidArgument(Quoted(text) + " is not a valid " + kind);
  }
  return value;
}

}  // namespace

Result<std::int64_t> ParseInt64(std::string_view text) {
  return ParseWith<std::int64_t>(text, "integer");
}

Result<std::size_t> ParseSize(std::string_view text) {
  // from_chars on an unsigned type accepts '-' by wrapping; reject it
  // explicitly so "-3" is an error rather than a huge count.
  if (!text.empty() && text.front() == '-') {
    return Status::InvalidArgument(Quoted(text) +
                                   " is not a valid non-negative integer");
  }
  return ParseWith<std::size_t>(text, "non-negative integer");
}

Result<double> ParseDouble(std::string_view text) {
  Result<double> parsed = ParseWith<double>(text, "number");
  // from_chars accepts the "inf"/"nan" spellings; no podium input means
  // either, so treat them as malformed rather than propagate non-finites.
  if (parsed.ok() && !std::isfinite(parsed.value())) {
    return Status::InvalidArgument(Quoted(text) + " is not a finite number");
  }
  return parsed;
}

}  // namespace podium::util
