#ifndef PODIUM_UTIL_RESULT_H_
#define PODIUM_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "podium/util/status.h"

namespace podium {

/// Holder of either a value of type T or an error Status; the payload-bearing
/// counterpart of Status (compare absl::StatusOr / arrow::Result).
///
///   Result<Repository> r = Repository::FromJsonFile(path);
///   if (!r.ok()) return r.status();
///   Repository repo = std::move(r).value();
///
/// [[nodiscard]] on the class makes ignoring any returned Result a
/// compiler warning (an error in the CI static-analysis job).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value. Intentionally implicit so that
  /// `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. Intentionally implicit so that
  /// `return Status::NotFound(...)` works. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ is engaged.
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), propagating its status on error, else
/// assigning the value into `lhs`.
#define PODIUM_INTERNAL_CONCAT2(a, b) a##b
#define PODIUM_INTERNAL_CONCAT(a, b) PODIUM_INTERNAL_CONCAT2(a, b)
#define PODIUM_ASSIGN_OR_RETURN(lhs, expr)                             \
  PODIUM_INTERNAL_ASSIGN_OR_RETURN(                                    \
      PODIUM_INTERNAL_CONCAT(_podium_result_, __LINE__), lhs, expr)
#define PODIUM_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

}  // namespace podium

#endif  // PODIUM_UTIL_RESULT_H_
