#ifndef PODIUM_UTIL_MATH_UTIL_H_
#define PODIUM_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace podium::util {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Population variance (divide by N); 0 for inputs of size < 1.
double Variance(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated quantile of `sorted` (must be ascending),
/// q in [0, 1]. Returns 0 for an empty input.
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Clamps `value` into [lo, hi].
double Clamp(double value, double lo, double hi);

/// True if |a - b| <= tolerance.
bool AlmostEqual(double a, double b, double tolerance = 1e-9);

/// Sum with Kahan compensation; stable for the long metric accumulations.
double StableSum(const std::vector<double>& values);

}  // namespace podium::util

#endif  // PODIUM_UTIL_MATH_UTIL_H_
