#ifndef PODIUM_UTIL_THREAD_POOL_H_
#define PODIUM_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

#include "podium/util/mutex.h"
#include "podium/util/thread_annotations.h"

namespace podium::util {

/// How a [0, n) range is cut into chunks. The decomposition is a pure
/// function of (n, grain) — it never depends on the thread count — so
/// per-chunk state (forked RNG streams, partial floating-point sums
/// combined in chunk order) is reproducible at any --threads setting.
/// This is the library's determinism contract; see DESIGN.md §7.
struct ChunkPlan {
  std::size_t chunk_size = 0;
  std::size_t num_chunks = 0;

  std::size_t ChunkBegin(std::size_t chunk) const { return chunk * chunk_size; }
  std::size_t ChunkEnd(std::size_t chunk, std::size_t n) const {
    const std::size_t end = (chunk + 1) * chunk_size;
    return end < n ? end : n;
  }
};

/// Plans chunks of at least `grain` items each, capped at kMaxChunks
/// chunks total so per-chunk bookkeeping stays bounded.
ChunkPlan PlanChunks(std::size_t n, std::size_t grain);

/// The chunk-count cap used by PlanChunks (enough slack to keep 64
/// hardware threads busy without work stealing).
inline constexpr std::size_t kMaxChunks = 64;

/// True while the calling thread is executing a ParallelFor body; nested
/// parallel loops detect this and run serially inline.
bool InParallelRegion();

/// Fixed pool of worker threads executing chunked parallel-for loops.
/// There is no work stealing and no task queue: each ParallelFor cuts its
/// range with PlanChunks and the workers (plus the calling thread) claim
/// chunks off a shared atomic cursor. Which thread runs a chunk is
/// scheduling noise; chunk boundaries — and therefore anything derived
/// from the chunk index — are deterministic.
///
/// Library code should not use this class directly; call the free
/// ParallelFor() below, which short-circuits to an inline serial loop for
/// single-chunk ranges, single-thread pools and nested regions, and
/// records telemetry when enabled.
class ThreadPool {
 public:
  /// Spawns `thread_count - 1` workers (the calling thread participates
  /// in every loop, so a pool of 1 spawns nothing and runs serially).
  explicit ThreadPool(std::size_t thread_count);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Workers plus the participating caller.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(chunk_begin, chunk_end, chunk_index) for every chunk of
  /// PlanChunks(n, grain), blocking until all chunks finish. If any body
  /// throws, the exception of the lowest-indexed failing chunk is
  /// rethrown after the loop completes (remaining chunks still run).
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& body);

  /// The process-wide pool, sized by SetGlobalThreadCount / the
  /// PODIUM_THREADS environment variable / hardware_concurrency, in that
  /// precedence order. Built lazily on first use.
  static ThreadPool& Global();

  /// Overrides the global pool size (0 restores the automatic default).
  /// Takes effect immediately: an existing global pool is torn down and
  /// rebuilt. Not safe to call while a ParallelFor is in flight.
  static void SetGlobalThreadCount(std::size_t count);

  /// The size the global pool has (or would be built with).
  static std::size_t GlobalThreadCount();

 private:
  struct Job;

  void WorkerLoop();
  static void RunChunks(Job& job);

  std::vector<std::thread> workers_;
  Mutex mutex_{"threadpool.pool"};
  CondVar work_ready_;
  CondVar work_done_;
  Job* job_ PODIUM_GUARDED_BY(mutex_) = nullptr;
  // Bumped per job; successive stack-allocated jobs can share an address,
  // so workers key off this, not the pointer.
  std::uint64_t generation_ PODIUM_GUARDED_BY(mutex_) = 0;
  bool stopping_ PODIUM_GUARDED_BY(mutex_) = false;
};

namespace internal {
/// Telemetry + dispatch behind the ParallelFor template: records the
/// per-phase utilization gauges and runs the loop on the global pool.
void DispatchParallelFor(
    std::string_view name, std::size_t n, std::size_t grain,
    const ChunkPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);
}  // namespace internal

/// Chunked parallel loop over [0, n) on the global pool.
/// body(begin, end, chunk) must not touch state written by other chunks;
/// results keyed by chunk index (or by element index) are deterministic.
/// `name` labels the loop in telemetry ("parallel.<name>.*" gauges and a
/// "parallel.<name>" phase span). Single-chunk ranges, 1-thread pools and
/// nested calls run inline on the caller with zero dispatch cost.
template <typename Body>
void ParallelFor(std::string_view name, std::size_t n, Body&& body,
                 std::size_t grain = 1) {
  if (n == 0) return;
  const ChunkPlan plan = PlanChunks(n, grain);
  if (plan.num_chunks == 1 || InParallelRegion() ||
      ThreadPool::GlobalThreadCount() == 1) {
    for (std::size_t chunk = 0; chunk < plan.num_chunks; ++chunk) {
      body(plan.ChunkBegin(chunk), plan.ChunkEnd(chunk, n), chunk);
    }
    return;
  }
  internal::DispatchParallelFor(name, n, grain, plan,
                                std::function<void(std::size_t, std::size_t,
                                                   std::size_t)>(body));
}

}  // namespace podium::util

#endif  // PODIUM_UTIL_THREAD_POOL_H_
