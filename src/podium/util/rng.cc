#include "podium/util/rng.h"

#include <cassert>
#include <cmath>

namespace podium::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // Guard against the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  // xoshiro256** step.
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<std::int64_t>(NextU64());
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

std::size_t Rng::NextZipf(std::size_t n, double s) {
  assert(n > 0);
  // Inverse-CDF sampling on the (small) harmonic table would cost O(n) per
  // draw; instead use rejection sampling against the continuous envelope
  // 1/x^s, which is exact for the discretization below and O(1) expected.
  if (n == 1) return 0;
  if (s <= 0.0) return NextBounded(n);
  for (;;) {
    // Continuous sample x in [1, n+1) with density proportional to x^-s.
    double u = NextDouble();
    double x;
    if (std::fabs(s - 1.0) < 1e-12) {
      x = std::exp(u * std::log(static_cast<double>(n) + 1.0));
    } else {
      const double top = std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
      x = std::pow(u * (top - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const auto k = static_cast<std::size_t>(x);  // in [1, n]
    // Accept k with probability (k/x)^s, correcting envelope vs. pmf.
    const double accept = std::pow(static_cast<double>(k) / x, s);
    if (NextDouble() < accept) return k - 1;
  }
}

std::size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last item.
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) {
    Shuffle(all);
    return all;
  }
  // Partial Fisher-Yates: only the first k positions need to be drawn.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + NextBounded(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork(std::uint64_t label) {
  // Mix the child's label with fresh output so forks are independent of
  // both each other and the parent's future stream.
  return Rng(NextU64() ^ (label * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL));
}

}  // namespace podium::util
