#ifndef PODIUM_UTIL_MUTEX_H_
#define PODIUM_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "podium/util/thread_annotations.h"

namespace podium::util {

class MutexLock;
class CondVar;

/// std::mutex declared as a Clang thread-safety capability. The standard
/// library type works fine at runtime but is invisible to the analysis
/// (libstdc++ ships it without the capability attribute), so every mutex
/// in concurrent podium code is one of these instead: same cost, same
/// semantics, but `PODIUM_GUARDED_BY(mutex_)` on the members it protects
/// is now enforced by `-Wthread-safety` rather than by code review.
class PODIUM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PODIUM_ACQUIRE() { mu_.lock(); }
  void Unlock() PODIUM_RELEASE() { mu_.unlock(); }
  bool TryLock() PODIUM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a Mutex (the annotated std::unique_lock). Unlike
/// lock_guard it can feed a CondVar wait; unlike unique_lock it cannot be
/// unlocked early or moved, so "constructed <=> held" stays true and the
/// analysis can trust the scope.
class PODIUM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PODIUM_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() PODIUM_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock. Waits atomically release the
/// mutex and reacquire it before returning, so from the analysis' point
/// of view the capability is held across the call — which is exactly the
/// guarantee guarded members need.
///
/// There is deliberately no predicate overload: the analysis cannot see
/// into a lambda, so a predicate reading guarded members would either
/// warn or silently escape checking. Callers write the standard loop
///
///   MutexLock lock(mutex_);
///   while (!condition) cv_.Wait(lock);
///
/// which keeps every guarded read inside the analyzed locked scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Waits until notified or `deadline`; false means the deadline passed
  /// (the caller still holds the lock and must re-check its condition).
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline) != std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace podium::util

#endif  // PODIUM_UTIL_MUTEX_H_
