#ifndef PODIUM_UTIL_MUTEX_H_
#define PODIUM_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <source_location>

#include "podium/util/thread_annotations.h"

// Runtime lock-order detection (DESIGN.md §14): configured with
// -DPODIUM_LOCK_ORDER=ON, every acquisition below reports to
// podium::analysis' lock-order graph, and the first acquisition that
// closes an ordering cycle aborts with both conflicting edges and their
// original file:line sites. Off (the default), the hooks — and the name
// each mutex carries — compile away entirely: Mutex is exactly a
// std::mutex and the source_location defaults are dead arguments.
#if defined(PODIUM_LOCK_ORDER)
#include "podium/analysis/lock_graph.h"
#define PODIUM_LOCK_ORDER_ONLY(x) x
#else
#define PODIUM_LOCK_ORDER_ONLY(x)
#endif

namespace podium::util {

class MutexLock;
class CondVar;

#if defined(PODIUM_LOCK_ORDER)
namespace internal {
inline analysis::AcquisitionSite ToSite(const std::source_location& loc) {
  analysis::AcquisitionSite site;
  site.file = loc.file_name();
  site.line = loc.line();
  site.function = loc.function_name();
  return site;
}
}  // namespace internal
#endif

/// std::mutex declared as a Clang thread-safety capability. The standard
/// library type works fine at runtime but is invisible to the analysis
/// (libstdc++ ships it without the capability attribute), so every mutex
/// in concurrent podium code is one of these instead: same cost, same
/// semantics, but `PODIUM_GUARDED_BY(mutex_)` on the members it protects
/// is now enforced by `-Wthread-safety` rather than by code review.
///
/// Every instance carries a stable name — its lock *class* in the §14
/// lock-order model: `util::Mutex mutex_{"serve.result_cache"};`. The
/// name is what the runtime detector builds its ordering graph over, so
/// it should identify the role, not the instance ("shard.pool" for every
/// element of an array, which shares one default-constructed name). The
/// `unnamed-mutex` lint rule keeps declaration sites named; in detector-
/// off builds the argument is discarded and the mutex stays exactly
/// sizeof(std::mutex).
class PODIUM_CAPABILITY("mutex") Mutex {
 public:
#if defined(PODIUM_LOCK_ORDER)
  explicit Mutex(const char* name = "<unnamed>") : name_(name) {}
#else
  explicit Mutex(const char* /*name*/ = nullptr) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(std::source_location loc = std::source_location::current())
      PODIUM_ACQUIRE() {
    PODIUM_LOCK_ORDER_ONLY(
        analysis::OnLock(this, name_, internal::ToSite(loc));)
    (void)loc;
    mu_.lock();
  }
  void Unlock() PODIUM_RELEASE() {
    PODIUM_LOCK_ORDER_ONLY(analysis::OnUnlock(this);)
    mu_.unlock();
  }
  bool TryLock(std::source_location loc = std::source_location::current())
      PODIUM_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    PODIUM_LOCK_ORDER_ONLY(
        analysis::OnTryLock(this, name_, acquired, internal::ToSite(loc));)
    (void)loc;
    return acquired;
  }

 private:
  friend class MutexLock;
  std::mutex mu_;
  PODIUM_LOCK_ORDER_ONLY(const char* name_;)
};

/// RAII lock over a Mutex (the annotated std::unique_lock). Unlike
/// lock_guard it can feed a CondVar wait; unlike unique_lock it cannot be
/// unlocked early or moved, so "constructed <=> held" stays true and the
/// analysis can trust the scope.
class PODIUM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, std::source_location loc =
                                    std::source_location::current())
      PODIUM_ACQUIRE(mu)
      : lock_(mu.mu_, std::defer_lock) {
    PODIUM_LOCK_ORDER_ONLY(mutex_ = &mu; analysis::OnLock(
        &mu, mu.name_, internal::ToSite(loc));)
    (void)loc;
    lock_.lock();
  }
  ~MutexLock() PODIUM_RELEASE() {
    PODIUM_LOCK_ORDER_ONLY(analysis::OnUnlock(mutex_);)
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
  PODIUM_LOCK_ORDER_ONLY(Mutex* mutex_ = nullptr;)
};

/// Condition variable bound to MutexLock. Waits atomically release the
/// mutex and reacquire it before returning, so from the analysis' point
/// of view the capability is held across the call — which is exactly the
/// guarantee guarded members need.
///
/// There is deliberately no predicate overload: the analysis cannot see
/// into a lambda, so a predicate reading guarded members would either
/// warn or silently escape checking. Callers write the standard loop
///
///   MutexLock lock(mutex_);
///   while (!condition) cv_.Wait(lock);
///
/// which keeps every guarded read inside the analyzed locked scope.
///
/// Under the §14 lock-order detector a wait is a release/reacquire pair:
/// the lock leaves the thread's held stack while it sleeps and returns —
/// with its original acquisition site — when the wait returns, so waits
/// neither record new ordering edges nor leave phantom holders behind.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    PODIUM_LOCK_ORDER_ONLY(analysis::OnCondVarWait(lock.mutex_);)
    cv_.wait(lock.lock_);
    PODIUM_LOCK_ORDER_ONLY(analysis::OnCondVarRequeue(lock.mutex_);)
  }

  /// Waits until notified or `deadline`; false means the deadline passed
  /// (the caller still holds the lock and must re-check its condition).
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    PODIUM_LOCK_ORDER_ONLY(analysis::OnCondVarWait(lock.mutex_);)
    const bool notified =
        cv_.wait_until(lock.lock_, deadline) != std::cv_status::timeout;
    PODIUM_LOCK_ORDER_ONLY(analysis::OnCondVarRequeue(lock.mutex_);)
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace podium::util

#endif  // PODIUM_UTIL_MUTEX_H_
