#ifndef PODIUM_UTIL_ARENA_H_
#define PODIUM_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>

namespace podium::util {

/// A fixed-capacity bump allocator handing out cache-line-aligned spans
/// from one contiguous block.
///
/// Built for the CSR index and the greedy per-run state: every span starts
/// on a 64-byte boundary (no false sharing between adjacent spans, and a
/// span's first element begins a cache line), all spans of one owner sit
/// in one `operator new` block (one TLB/page-locality region instead of a
/// scatter of vector headers), and the block keeps `kGuardBytes` of
/// readable slack past the capacity so 4-byte-per-lane SIMD gathers over
/// byte arrays may read up to 3 bytes beyond their last element without
/// leaving the allocation (see core/kernels.h for the contract).
///
/// The capacity is fixed at construction — growing would move the block
/// and invalidate every handed-out span. Callers compute their exact
/// footprint up front with BytesFor() sums; TryAllocateSpan() reports
/// exhaustion by returning an empty span, and AllocateSpan() treats it as
/// a programming error and aborts. Reset() rewinds the bump pointer for
/// reuse (all previously returned spans become invalid).
///
/// Allocated spans are zero-initialized. Only trivially copyable,
/// trivially destructible element types are supported: the arena never
/// runs constructors or destructors.
class Arena {
 public:
  /// Every span starts on this boundary; capacities and per-span sizes
  /// round up to it.
  static constexpr std::size_t kAlignment = 64;

  /// Readable (zeroed) slack past the capacity, for SIMD gather overread.
  static constexpr std::size_t kGuardBytes = 64;

  /// An empty arena (capacity 0); assign a sized one over it before use.
  Arena() = default;

  /// Reserves one aligned block of `capacity_bytes` (rounded up to
  /// kAlignment) plus the guard slack.
  explicit Arena(std::size_t capacity_bytes);

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// The arena footprint of `count` elements of T: the span payload
  /// rounded up to the alignment quantum. Sum these to size an arena.
  template <typename T>
  static constexpr std::size_t BytesFor(std::size_t count) {
    return RoundUp(count * sizeof(T));
  }

  /// Allocates a zeroed span of `count` elements, or an empty span when
  /// the remaining capacity cannot hold it. A zero-count request returns
  /// an empty span without consuming capacity.
  template <typename T>
  [[nodiscard]] std::span<T> TryAllocateSpan(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena spans never run constructors or destructors");
    static_assert(alignof(T) <= kAlignment);
    if (count == 0) return {};
    std::byte* bytes = TakeBytes(BytesFor<T>(count));
    if (bytes == nullptr) return {};
    return {Launder<T>(bytes), count};
  }

  /// TryAllocateSpan, with exhaustion promoted to a fatal error: the
  /// caller sized the arena, so running out is a bug, not a condition.
  template <typename T>
  [[nodiscard]] std::span<T> AllocateSpan(std::size_t count) {
    std::span<T> span = TryAllocateSpan<T>(count);
    if (span.empty() && count > 0) {
      DieExhausted(count * sizeof(T));
    }
    return span;
  }

  /// Rewinds the bump pointer and re-zeroes the block: previously returned
  /// spans become dangling; the block itself is reused, not reallocated.
  void Reset();

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  /// True when `address` lies inside this arena's block (guard included) —
  /// the contiguity property tests assert with this.
  bool Contains(const void* address) const {
    const std::byte* p = static_cast<const std::byte*>(address);
    return block_ != nullptr && p >= block_.get() &&
           p < block_.get() + capacity_ + kGuardBytes;
  }

 private:
  static constexpr std::size_t RoundUp(std::size_t bytes) {
    return (bytes + kAlignment - 1) & ~(kAlignment - 1);
  }

  template <typename T>
  static T* Launder(std::byte* bytes) {
    // The block is raw zeroed storage; for the trivially-copyable element
    // types the arena admits, reusing it as T objects is exactly what
    // std::vector's allocator would do. Confined here by the
    // intrinsics-scope lint rule.
    return reinterpret_cast<T*>(bytes);
  }

  /// Bumps by `bytes` (already rounded); nullptr when exhausted.
  std::byte* TakeBytes(std::size_t bytes);

  [[noreturn]] void DieExhausted(std::size_t requested_bytes) const;

  struct AlignedDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };

  std::unique_ptr<std::byte[], AlignedDelete> block_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace podium::util

#endif  // PODIUM_UTIL_ARENA_H_
