#ifndef PODIUM_UTIL_STATUS_H_
#define PODIUM_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace podium {

/// Error taxonomy for fallible library operations. Modeled after the
/// RocksDB/Arrow convention: library paths never throw; they return a
/// Status (or a Result<T>, see result.h) that callers must inspect.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kIoError,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail without a payload.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries an
/// explanatory message otherwise. Usage:
///
///   Status s = repo.Load(path);
///   if (!s.ok()) return s;  // propagate
///
/// [[nodiscard]] on the class makes ignoring any returned Status a
/// compiler warning (an error in the CI static-analysis job); sites that
/// genuinely don't care cast to void and say why.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status from the current function.
#define PODIUM_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::podium::Status _podium_status = (expr);        \
    if (!_podium_status.ok()) return _podium_status; \
  } while (false)

}  // namespace podium

#endif  // PODIUM_UTIL_STATUS_H_
