#ifndef PODIUM_UTIL_PARSE_H_
#define PODIUM_UTIL_PARSE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "podium/util/result.h"

namespace podium::util {

/// Checked numeric parsing. Unlike atoi/strtol (which salvage a numeric
/// prefix, fold overflow into LONG_MAX, and report errors through errno
/// conventions nobody checks) these helpers accept exactly one complete
/// number and nothing else: no leading/trailing junk, no whitespace, no
/// empty input, and overflow is an error, not a clamp. They are the only
/// sanctioned way to turn untrusted text (env vars, argv, flag values)
/// into numbers — podium_lint's banned-function rule rejects the raw
/// C library parsers everywhere in the tree.

/// Parses a decimal integer with optional leading '-'.
[[nodiscard]] Result<std::int64_t> ParseInt64(std::string_view text);

/// Parses a non-negative decimal integer ('-0' included? no: any '-' is
/// rejected) into size_t.
[[nodiscard]] Result<std::size_t> ParseSize(std::string_view text);

/// Parses a floating-point number (fixed or scientific). Infinities and
/// NaN spellings are rejected; out-of-range magnitudes are errors.
[[nodiscard]] Result<double> ParseDouble(std::string_view text);

}  // namespace podium::util

#endif  // PODIUM_UTIL_PARSE_H_
