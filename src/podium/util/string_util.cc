#include "podium/util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace podium::util {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      fields.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  std::size_t begin = 0;
  while (begin < input.size() && is_space(input[begin])) ++begin;
  std::size_t end = input.size();
  while (end > begin && is_space(input[end - 1])) --end;
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  std::string out = StringPrintf("%.*f", digits, value);
  if (out.find('.') != std::string::npos) {
    std::size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace podium::util
