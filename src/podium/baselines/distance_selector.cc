#include "podium/baselines/distance_selector.h"

#include <algorithm>
#include <limits>

#include "podium/core/score.h"

namespace podium::baselines {

namespace {

/// |P_a ∩ P_b| via merge over the sorted entry lists.
std::size_t IntersectionSize(const UserProfile& a, const UserProfile& b) {
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t count = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].property < eb[j].property) {
      ++i;
    } else if (eb[j].property < ea[i].property) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

double JaccardDistance(const ProfileRepository& repository, UserId a,
                       UserId b) {
  const UserProfile& pa = repository.user(a);
  const UserProfile& pb = repository.user(b);
  const std::size_t intersection = IntersectionSize(pa, pb);
  const std::size_t union_size = pa.size() + pb.size() - intersection;
  if (union_size == 0) return 1.0;
  return 1.0 - static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

double MeanPairwiseIntersection(const ProfileRepository& repository,
                                const std::vector<UserId>& subset) {
  if (subset.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t j = i + 1; j < subset.size(); ++j) {
      total += static_cast<double>(IntersectionSize(
          repository.user(subset[i]), repository.user(subset[j])));
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

Result<Selection> DistanceSelector::Select(
    const DiversificationInstance& instance, std::size_t budget) const {
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  const ProfileRepository& repository = instance.repository();
  const std::size_t n = repository.user_count();
  if (n == 0) return Selection{};

  Selection selection;
  std::vector<bool> selected(n, false);

  // Seed: the largest profile (ties by id).
  UserId seed = 0;
  for (UserId u = 1; u < n; ++u) {
    if (repository.user(u).size() > repository.user(seed).size()) seed = u;
  }
  selection.users.push_back(seed);
  selected[seed] = true;

  // Maintain per-candidate aggregate distance to the selected set; each
  // round folds in the newest member only (O(B·|U|) distance evaluations).
  std::vector<double> aggregate(
      n, objective_ == DistanceObjective::kMaxSum
             ? 0.0
             : std::numeric_limits<double>::infinity());
  UserId newest = seed;
  while (selection.users.size() < std::min(budget, n)) {
    UserId best = kInvalidUser;
    for (UserId u = 0; u < n; ++u) {
      if (selected[u]) continue;
      const double d = JaccardDistance(repository, u, newest);
      if (objective_ == DistanceObjective::kMaxSum) {
        aggregate[u] += d;
      } else {
        aggregate[u] = std::min(aggregate[u], d);
      }
      if (best == kInvalidUser || aggregate[u] > aggregate[best]) best = u;
    }
    if (best == kInvalidUser) break;
    selection.users.push_back(best);
    selected[best] = true;
    newest = best;
  }
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

}  // namespace podium::baselines
