#ifndef PODIUM_BASELINES_TMODEL_SELECTOR_H_
#define PODIUM_BASELINES_TMODEL_SELECTOR_H_

#include <string>
#include <vector>

#include "podium/core/selection.h"

namespace podium::baselines {

/// The T-Model of Wu et al. (PVLDB'15) — the paper's closest related work
/// and Table 1's "coverage-based / predicted" row: select users so that
/// their PREDICTED opinions in a single category realize a target opinion
/// distribution. Unlike Podium it (a) needs an opinion predictor, and
/// (b) diversifies in one category only — the two limitations the paper's
/// Section 2 calls out.
///
/// Prediction here is profile-driven: a user's opinion bucket for the
/// chosen property is their score's bucket β(p). Users without the
/// property have no predictable opinion and are excluded from the
/// candidate pool (a further contrast with Podium, whose open-world
/// profiles never disqualify a user). Selection greedily adds the user
/// whose predicted opinion brings the subset's expected opinion
/// histogram closest (L1) to the target.
class TModelSelector : public Selector {
 public:
  struct Options {
    /// The single category/property to diversify on. Required.
    std::string property_label;

    /// Target opinion distribution over the property's buckets. Empty
    /// (default) targets the population's own distribution — the
    /// "representative panel" goal.
    std::vector<double> target;
  };

  explicit TModelSelector(Options options) : options_(std::move(options)) {}

  std::string Name() const override { return "T-Model"; }

  Result<Selection> Select(const DiversificationInstance& instance,
                           std::size_t budget) const override;

 private:
  Options options_;
};

}  // namespace podium::baselines

#endif  // PODIUM_BASELINES_TMODEL_SELECTOR_H_
