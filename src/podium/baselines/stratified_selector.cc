#include "podium/baselines/stratified_selector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "podium/core/score.h"
#include "podium/util/rng.h"
#include "podium/util/string_util.h"

namespace podium::baselines {

Result<Selection> StratifiedSelector::Select(
    const DiversificationInstance& instance, std::size_t budget) const {
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  const ProfileRepository& repository = instance.repository();
  const std::size_t n = repository.user_count();
  if (n == 0) return Selection{};

  // Stratum properties: every property with the prefix. A user joins the
  // stratum of their first true-valued (score > 0.5) matching property;
  // users with none fall into the catch-all stratum.
  std::vector<PropertyId> stratum_properties;
  const PropertyTable& table = repository.properties();
  for (PropertyId p = 0; p < table.size(); ++p) {
    if (util::StartsWith(table.Label(p), stratum_prefix_)) {
      stratum_properties.push_back(p);
    }
  }
  const std::size_t catch_all = stratum_properties.size();
  std::vector<std::vector<UserId>> strata(catch_all + 1);
  for (UserId u = 0; u < n; ++u) {
    std::size_t stratum = catch_all;
    for (std::size_t s = 0; s < stratum_properties.size(); ++s) {
      const auto score = repository.user(u).Get(stratum_properties[s]);
      if (score.has_value() && *score > 0.5) {
        stratum = s;
        break;
      }
    }
    strata[stratum].push_back(u);
  }

  // Proportionate allocation (Def. 2.1) via the largest-remainder method:
  // quota_s = budget * |stratum_s| / |U|.
  const std::size_t k = std::min(budget, n);
  std::vector<std::size_t> allocation(strata.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t allocated = 0;
  for (std::size_t s = 0; s < strata.size(); ++s) {
    if (strata[s].empty()) continue;
    const double quota = static_cast<double>(k) *
                         static_cast<double>(strata[s].size()) /
                         static_cast<double>(n);
    allocation[s] = std::min(static_cast<std::size_t>(quota),
                             strata[s].size());
    allocated += allocation[s];
    if (allocation[s] < strata[s].size()) {
      remainders.emplace_back(quota - std::floor(quota), s);
    }
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  for (const auto& [remainder, s] : remainders) {
    if (allocated >= k) break;
    if (allocation[s] < strata[s].size()) {
      ++allocation[s];
      ++allocated;
    }
  }
  // Any residue (strata exhausted) goes to strata with spare users.
  for (std::size_t s = 0; allocated < k && s < strata.size(); ++s) {
    while (allocated < k && allocation[s] < strata[s].size()) {
      ++allocation[s];
      ++allocated;
    }
  }

  // Uniform sampling within each stratum.
  util::Rng rng(seed_);
  Selection selection;
  for (std::size_t s = 0; s < strata.size(); ++s) {
    if (allocation[s] == 0) continue;
    for (std::size_t index :
         rng.SampleWithoutReplacement(strata[s].size(), allocation[s])) {
      selection.users.push_back(strata[s][index]);
    }
  }
  std::sort(selection.users.begin(), selection.users.end());
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

}  // namespace podium::baselines
