#include "podium/baselines/mmr_selector.h"

#include <algorithm>
#include <limits>

#include "podium/baselines/distance_selector.h"
#include "podium/core/score.h"

namespace podium::baselines {

Result<Selection> MmrSelector::Select(const DiversificationInstance& instance,
                                      std::size_t budget) const {
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  if (!(lambda_ >= 0.0 && lambda_ <= 1.0)) {
    return Status::InvalidArgument("lambda must be in [0, 1]");
  }
  const ProfileRepository& repository = instance.repository();
  const std::size_t n = repository.user_count();
  if (n == 0) return Selection{};

  // Relevance: normalized profile richness.
  std::size_t max_profile = 1;
  for (UserId u = 0; u < n; ++u) {
    max_profile = std::max(max_profile, repository.user(u).size());
  }
  std::vector<double> relevance(n);
  for (UserId u = 0; u < n; ++u) {
    relevance[u] = static_cast<double>(repository.user(u).size()) /
                   static_cast<double>(max_profile);
  }

  // max-similarity to the selected set, folded in incrementally.
  std::vector<double> max_similarity(n, 0.0);
  std::vector<bool> selected(n, false);
  Selection selection;

  // First pick: pure relevance (no diversity term yet), ties by id.
  UserId first = 0;
  for (UserId u = 1; u < n; ++u) {
    if (relevance[u] > relevance[first]) first = u;
  }
  selection.users.push_back(first);
  selected[first] = true;

  UserId newest = first;
  while (selection.users.size() < std::min(budget, n)) {
    UserId best = kInvalidUser;
    double best_score = -std::numeric_limits<double>::infinity();
    for (UserId u = 0; u < n; ++u) {
      if (selected[u]) continue;
      const double similarity =
          1.0 - JaccardDistance(repository, u, newest);
      max_similarity[u] = std::max(max_similarity[u], similarity);
      const double mmr =
          lambda_ * relevance[u] - (1.0 - lambda_) * max_similarity[u];
      if (mmr > best_score) {
        best_score = mmr;
        best = u;
      }
    }
    if (best == kInvalidUser) break;
    selection.users.push_back(best);
    selected[best] = true;
    newest = best;
  }
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

}  // namespace podium::baselines
