#ifndef PODIUM_BASELINES_MMR_SELECTOR_H_
#define PODIUM_BASELINES_MMR_SELECTOR_H_

#include "podium/core/selection.h"

namespace podium::baselines {

/// Maximal Marginal Relevance (Carbonell & Goldstein, SIGIR'98) — the
/// classic IR diversity re-ranker the paper cites in its related work. A
/// distance-based method included for comparison beyond the paper's own
/// baselines: it greedily adds
///
///   argmax_u  λ · rel(u) − (1 − λ) · max_{v ∈ S} sim(u, v)
///
/// where rel(u) is the user's profile richness (|P_u| normalized to the
/// largest profile — the analogue of document relevance when all users
/// are "relevant") and sim is the Jaccard similarity of property sets.
class MmrSelector : public Selector {
 public:
  explicit MmrSelector(double lambda = 0.5) : lambda_(lambda) {}

  std::string Name() const override { return "MMR"; }

  Result<Selection> Select(const DiversificationInstance& instance,
                           std::size_t budget) const override;

 private:
  double lambda_;
};

}  // namespace podium::baselines

#endif  // PODIUM_BASELINES_MMR_SELECTOR_H_
