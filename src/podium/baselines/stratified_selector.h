#ifndef PODIUM_BASELINES_STRATIFIED_SELECTOR_H_
#define PODIUM_BASELINES_STRATIFIED_SELECTOR_H_

#include <cstdint>
#include <string>

#include "podium/core/selection.h"

namespace podium::baselines {

/// Survey-style stratified sampling — the classical coverage-based method
/// the paper contrasts with in Table 1 and Section 2. Strata are the
/// values of ONE (typically demographic, functional) property family,
/// e.g. "livesIn <city>": surveyors hand-pick a small set of
/// non-overlapping groups and allocate the budget proportionally to the
/// stratum sizes (the proportionate allocation of Def. 2.1, realized by
/// largest-remainder rounding), sampling uniformly within each stratum.
///
/// Its Table-1 limitations are visible by construction: a single
/// low-dimensional partition (no high-dimensional coverage), no value
/// ranges beyond the chosen property, and under-coverage of everything
/// the strata do not express.
class StratifiedSelector : public Selector {
 public:
  /// `stratum_prefix` selects the property family ("livesIn "); users are
  /// assigned to the stratum of their (single) true property with that
  /// prefix, with a catch-all stratum for users carrying none.
  explicit StratifiedSelector(std::string stratum_prefix = "livesIn ",
                              std::uint64_t seed = 42)
      : stratum_prefix_(std::move(stratum_prefix)), seed_(seed) {}

  std::string Name() const override { return "Stratified"; }

  Result<Selection> Select(const DiversificationInstance& instance,
                           std::size_t budget) const override;

 private:
  std::string stratum_prefix_;
  std::uint64_t seed_;
};

}  // namespace podium::baselines

#endif  // PODIUM_BASELINES_STRATIFIED_SELECTOR_H_
