#ifndef PODIUM_BASELINES_KMEANS_SELECTOR_H_
#define PODIUM_BASELINES_KMEANS_SELECTOR_H_

#include <cstdint>

#include "podium/core/selection.h"

namespace podium::baselines {

/// The "Clustering" baseline of Section 8.3: split the repository into B
/// clusters with k-means (k-means++ seeding, Lloyd iterations) over the
/// sparse profile vectors — missing properties read as 0 — and take the
/// near-mean user of each cluster as its representative.
class KMeansSelector : public Selector {
 public:
  struct Options {
    int max_iterations = 12;
    std::uint64_t seed = 42;
  };

  KMeansSelector() : options_{} {}
  explicit KMeansSelector(Options options) : options_(options) {}

  std::string Name() const override { return "Clustering"; }

  Result<Selection> Select(const DiversificationInstance& instance,
                           std::size_t budget) const override;

 private:
  Options options_;
};

}  // namespace podium::baselines

#endif  // PODIUM_BASELINES_KMEANS_SELECTOR_H_
