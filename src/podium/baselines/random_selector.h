#ifndef PODIUM_BASELINES_RANDOM_SELECTOR_H_
#define PODIUM_BASELINES_RANDOM_SELECTOR_H_

#include <cstdint>

#include "podium/core/selection.h"

namespace podium::baselines {

/// The "Random Selection" baseline of Section 8.3: a uniformly random
/// subset of the users — the common practice in survey-style opinion
/// procurement.
class RandomSelector : public Selector {
 public:
  explicit RandomSelector(std::uint64_t seed = 42) : seed_(seed) {}

  std::string Name() const override { return "Random"; }

  Result<Selection> Select(const DiversificationInstance& instance,
                           std::size_t budget) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace podium::baselines

#endif  // PODIUM_BASELINES_RANDOM_SELECTOR_H_
