#include "podium/baselines/tmodel_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "podium/core/score.h"

namespace podium::baselines {

namespace {

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += std::fabs(a[i] - b[i]);
  }
  return total;
}

}  // namespace

Result<Selection> TModelSelector::Select(
    const DiversificationInstance& instance, std::size_t budget) const {
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  const ProfileRepository& repository = instance.repository();
  const PropertyId property =
      repository.properties().Find(options_.property_label);
  if (property == kInvalidProperty) {
    return Status::NotFound("unknown property: " + options_.property_label);
  }
  const auto& buckets = instance.groups().buckets_per_property()[property];
  if (buckets.empty()) {
    return Status::FailedPrecondition(
        "property '" + options_.property_label +
        "' has no buckets in this instance (no observed scores, or the "
        "instance was built from explicit group definitions)");
  }
  const std::size_t k = buckets.size();

  // Per-user predicted opinion bucket (one-hot); users without the
  // property are not predictable and leave the candidate pool.
  const std::size_t n = repository.user_count();
  std::vector<int> user_bucket(n, -1);
  std::vector<double> population(k, 0.0);
  for (UserId u = 0; u < n; ++u) {
    const auto score = repository.user(u).Get(property);
    if (score.has_value()) {
      user_bucket[u] = bucketing::FindBucket(buckets, *score);
      if (user_bucket[u] >= 0) {
        population[static_cast<std::size_t>(user_bucket[u])] += 1.0;
      }
    }
  }

  // Target: caller-provided or the population's own distribution.
  std::vector<double> target = options_.target;
  if (target.empty()) {
    target = population;
  } else if (target.size() != k) {
    return Status::InvalidArgument(
        "target distribution size does not match the bucket count");
  }
  double target_total = 0.0;
  for (double t : target) {
    if (t < 0.0) {
      return Status::InvalidArgument("target distribution must be >= 0");
    }
    target_total += t;
  }
  if (target_total <= 0.0) {
    return Status::InvalidArgument("target distribution must have mass");
  }
  for (double& t : target) t /= target_total;

  // Greedy: add the user whose predicted opinion minimizes the L1 gap of
  // the subset's expected normalized histogram to the target.
  std::vector<double> expected(k, 0.0);
  std::vector<bool> selected(n, false);
  Selection selection;
  std::vector<double> candidate(k);
  for (std::size_t round = 0; round < std::min(budget, n); ++round) {
    UserId best = kInvalidUser;
    double best_distance = std::numeric_limits<double>::infinity();
    for (UserId u = 0; u < n; ++u) {
      if (selected[u] || user_bucket[u] < 0) continue;
      for (std::size_t b = 0; b < k; ++b) {
        const double contribution =
            static_cast<std::size_t>(user_bucket[u]) == b ? 1.0 : 0.0;
        candidate[b] = (expected[b] + contribution) /
                       static_cast<double>(round + 1);
      }
      const double distance = L1Distance(candidate, target);
      if (distance < best_distance) {
        best_distance = distance;
        best = u;
      }
    }
    if (best == kInvalidUser) break;  // predictable users exhausted
    selected[best] = true;
    selection.users.push_back(best);
    expected[static_cast<std::size_t>(user_bucket[best])] += 1.0;
  }
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

}  // namespace podium::baselines
