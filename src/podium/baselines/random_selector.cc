#include "podium/baselines/random_selector.h"

#include "podium/core/score.h"
#include "podium/util/rng.h"

namespace podium::baselines {

Result<Selection> RandomSelector::Select(
    const DiversificationInstance& instance, std::size_t budget) const {
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  util::Rng rng(seed_);
  Selection selection;
  for (std::size_t index : rng.SampleWithoutReplacement(
           instance.repository().user_count(), budget)) {
    selection.users.push_back(static_cast<UserId>(index));
  }
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

}  // namespace podium::baselines
