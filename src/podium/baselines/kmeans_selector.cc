#include "podium/baselines/kmeans_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "podium/core/score.h"
#include "podium/util/rng.h"

namespace podium::baselines {

namespace {

/// Dense center with cached squared norm.
struct Center {
  std::vector<double> coords;
  double norm2 = 0.0;

  void RecomputeNorm() {
    norm2 = 0.0;
    for (double v : coords) norm2 += v * v;
  }
};

double SparseNorm2(const UserProfile& profile) {
  double total = 0.0;
  for (const PropertyScore& entry : profile.entries()) {
    total += entry.score * entry.score;
  }
  return total;
}

/// ||x_u - c||² computed sparsely.
double Distance2(const UserProfile& profile, double user_norm2,
                 const Center& center) {
  double dot = 0.0;
  for (const PropertyScore& entry : profile.entries()) {
    dot += entry.score * center.coords[entry.property];
  }
  return std::max(0.0, user_norm2 - 2.0 * dot + center.norm2);
}

Center CenterFromUser(const UserProfile& profile, std::size_t dims) {
  Center center;
  center.coords.assign(dims, 0.0);
  for (const PropertyScore& entry : profile.entries()) {
    center.coords[entry.property] = entry.score;
  }
  center.RecomputeNorm();
  return center;
}

}  // namespace

Result<Selection> KMeansSelector::Select(
    const DiversificationInstance& instance, std::size_t budget) const {
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  const ProfileRepository& repository = instance.repository();
  const std::size_t n = repository.user_count();
  const std::size_t dims = repository.property_count();
  const std::size_t k = std::min(budget, n);
  if (k == 0) return Selection{};

  std::vector<double> user_norm2(n);
  for (UserId u = 0; u < n; ++u) {
    user_norm2[u] = SparseNorm2(repository.user(u));
  }

  // k-means++ seeding.
  util::Rng rng(options_.seed);
  std::vector<Center> centers;
  centers.reserve(k);
  centers.push_back(
      CenterFromUser(repository.user(rng.NextBounded(n)), dims));
  std::vector<double> min_dist2(n, std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    double total = 0.0;
    for (UserId u = 0; u < n; ++u) {
      min_dist2[u] = std::min(
          min_dist2[u], Distance2(repository.user(u), user_norm2[u],
                                  centers.back()));
      total += min_dist2[u];
    }
    UserId chosen;
    if (total <= 0.0) {
      chosen = static_cast<UserId>(rng.NextBounded(n));
    } else {
      double r = rng.NextDouble() * total;
      chosen = static_cast<UserId>(n - 1);
      for (UserId u = 0; u < n; ++u) {
        r -= min_dist2[u];
        if (r < 0.0) {
          chosen = u;
          break;
        }
      }
    }
    centers.push_back(CenterFromUser(repository.user(chosen), dims));
  }

  // Lloyd iterations.
  std::vector<std::uint32_t> assignment(n, 0);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    bool changed = false;
    for (UserId u = 0; u < n; ++u) {
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_c = assignment[u];
      for (std::uint32_t c = 0; c < centers.size(); ++c) {
        const double d = Distance2(repository.user(u), user_norm2[u],
                                   centers[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (best_c != assignment[u]) {
        assignment[u] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Recompute means; empty clusters are re-seeded on a random user.
    std::vector<std::size_t> counts(centers.size(), 0);
    for (Center& center : centers) {
      std::fill(center.coords.begin(), center.coords.end(), 0.0);
    }
    for (UserId u = 0; u < n; ++u) {
      ++counts[assignment[u]];
      for (const PropertyScore& entry : repository.user(u).entries()) {
        centers[assignment[u]].coords[entry.property] += entry.score;
      }
    }
    for (std::uint32_t c = 0; c < centers.size(); ++c) {
      if (counts[c] == 0) {
        centers[c] =
            CenterFromUser(repository.user(rng.NextBounded(n)), dims);
        continue;
      }
      for (double& v : centers[c].coords) {
        v /= static_cast<double>(counts[c]);
      }
      centers[c].RecomputeNorm();
    }
  }

  // Near-mean representative per cluster.
  std::vector<UserId> representative(centers.size(), kInvalidUser);
  std::vector<double> representative_dist(
      centers.size(), std::numeric_limits<double>::infinity());
  for (UserId u = 0; u < n; ++u) {
    const std::uint32_t c = assignment[u];
    const double d = Distance2(repository.user(u), user_norm2[u], centers[c]);
    if (d < representative_dist[c]) {
      representative_dist[c] = d;
      representative[c] = u;
    }
  }

  Selection selection;
  for (UserId rep : representative) {
    if (rep != kInvalidUser) selection.users.push_back(rep);
  }
  // Deduplicate (possible only via re-seeded empty clusters).
  std::sort(selection.users.begin(), selection.users.end());
  selection.users.erase(
      std::unique(selection.users.begin(), selection.users.end()),
      selection.users.end());
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

}  // namespace podium::baselines
