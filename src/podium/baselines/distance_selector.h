#ifndef PODIUM_BASELINES_DISTANCE_SELECTOR_H_
#define PODIUM_BASELINES_DISTANCE_SELECTOR_H_

#include <cstdint>

#include "podium/core/selection.h"

namespace podium::baselines {

/// Aggregation of pairwise distances maximized by the greedy.
enum class DistanceObjective {
  kMaxSum,  // maximize Σ pairwise distance of the selected subset
  kMaxMin,  // maximize the minimal pairwise distance
};

/// The distance-based baseline of Section 8.3 (the S-Model of Wu et al.):
/// greedy selection maximizing pairwise Jaccard distance between the
/// *property sets* of the selected users,
///   d(u, v) = 1 − |P_u ∩ P_v| / |P_u ∪ P_v|.
///
/// The first pick seeds with the user of the largest profile (a
/// deterministic stand-in for the arbitrary seed of the greedy); each
/// subsequent pick maximizes the chosen aggregate of distances to the
/// already-selected users.
class DistanceSelector : public Selector {
 public:
  explicit DistanceSelector(
      DistanceObjective objective = DistanceObjective::kMaxSum)
      : objective_(objective) {}

  std::string Name() const override { return "Distance"; }

  Result<Selection> Select(const DiversificationInstance& instance,
                           std::size_t budget) const override;

 private:
  DistanceObjective objective_;
};

/// Jaccard distance between two users' property sets (1 when both are
/// empty — maximally dissimilar by convention, matching the selector's
/// avoidance of shared properties).
double JaccardDistance(const ProfileRepository& repository, UserId a,
                       UserId b);

/// Mean pairwise property-set intersection size of a subset (the statistic
/// Section 8.4 contrasts: ~2 for distance-based vs. tens for Podium).
double MeanPairwiseIntersection(const ProfileRepository& repository,
                                const std::vector<UserId>& subset);

}  // namespace podium::baselines

#endif  // PODIUM_BASELINES_DISTANCE_SELECTOR_H_
