#ifndef PODIUM_SHARD_SHARDED_SNAPSHOT_H_
#define PODIUM_SHARD_SHARDED_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "podium/core/instance.h"
#include "podium/profile/repository.h"
#include "podium/shard/partitioner.h"
#include "podium/shard/scheme.h"
#include "podium/util/result.h"

namespace podium::shard {

/// One shard: a sub-repository of the partition's users (dense local ids,
/// ascending in global id) plus a shard-local CSR GroupIndex over the
/// GLOBAL group-id space, wrapped in a DiversificationInstance whose
/// weights and coverage are the GLOBAL values — every shard optimizes the
/// same objective f, which is what the two-round bound and the K=1
/// byte-identity guarantee rest on (DESIGN.md §13).
struct ShardSnapshot {
  ProfileRepository repository;
  /// Local id → global id, strictly ascending.
  std::vector<UserId> global_ids;
  DiversificationInstance instance;

  std::size_t user_count() const { return global_ids.size(); }
  /// Bytes of the shard's CSR adjacency arena.
  std::size_t MemoryBytes() const;
};

/// A sharded, immutable view of a repository: the global GroupScheme, the
/// partition plan, and K independently arena-backed ShardSnapshots built
/// in parallel on the global thread pool. Plugs into serve::Snapshot
/// behind the same atomic-generation swap as the single-snapshot engine.
class ShardedSnapshot {
 public:
  /// Builds scheme + partition + K shards. EBS weights are rejected
  /// (their rank-lexicographic scoring does not decompose across a merge
  /// round); Iden/LBS are exact. The input repository is only read — the
  /// shards hold independent sub-repositories.
  static Result<std::shared_ptr<const ShardedSnapshot>> Build(
      const ProfileRepository& repository, const InstanceOptions& instance,
      const ShardOptions& options, std::uint64_t generation = 1);

  std::size_t shard_count() const { return shards_.size(); }
  const ShardSnapshot& shard(std::size_t s) const { return *shards_[s]; }
  const GroupScheme& scheme() const { return scheme_; }
  const ShardOptions& options() const { return options_; }
  std::uint64_t generation() const { return generation_; }

  std::size_t user_count() const { return user_count_; }
  std::size_t group_count() const { return scheme_.group_count(); }
  WeightKind weight_kind() const { return instance_options_.weight_kind; }
  CoverageKind coverage_kind() const {
    return instance_options_.coverage_kind;
  }
  std::size_t default_budget() const { return instance_options_.budget; }

  /// Global coverage requirement per group (what the merge round decrements).
  const std::vector<std::uint32_t>& coverage() const { return coverage_; }
  /// Global scalar weight per group.
  const std::vector<double>& weights() const { return weights_.scalars(); }

  /// Sum of all shards' adjacency arena bytes.
  std::size_t MemoryBytes() const;

  /// (shard, local id) of a global user. Binary search over each shard's
  /// ascending global_ids — O(K log n), used only for per-selection name
  /// lookups, so no global O(users) reverse map is stored.
  struct Location {
    std::size_t shard = 0;
    UserId local = kInvalidUser;
  };
  Result<Location> Locate(UserId global) const;

  /// Display name of a global user.
  Result<std::string> UserName(UserId global) const;

 private:
  ShardedSnapshot() = default;

  GroupScheme scheme_;
  ShardOptions options_;
  InstanceOptions instance_options_;
  GroupWeighting weights_;
  std::vector<std::uint32_t> coverage_;
  // unique_ptr so instance.repository() pointers stay stable forever.
  std::vector<std::unique_ptr<ShardSnapshot>> shards_;
  std::size_t user_count_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace podium::shard

#endif  // PODIUM_SHARD_SHARDED_SNAPSHOT_H_
