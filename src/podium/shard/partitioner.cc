#include "podium/shard/partitioner.h"

#include <string>
#include <utility>

#include "podium/telemetry/phase.h"
#include "podium/util/thread_pool.h"

namespace podium::shard {

namespace {

/// Chunk grain for loops over users (profiles are small; a few hundred
/// users amortize dispatch).
constexpr std::size_t kUserGrain = 1024;

/// SplitMix64 finalizer — a strong, cheap bit mixer. Plain arithmetic on
/// the key, so shard assignment is a pure function of the id being
/// hashed (never of thread count or iteration order).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// The property with the highest score in u's profile, ties by lowest
/// property id; kInvalidProperty for empty profiles.
PropertyId SalientProperty(const UserProfile& profile) {
  PropertyId best = kInvalidProperty;
  double best_score = -1.0;
  for (const PropertyScore& entry : profile.entries()) {
    if (entry.score > best_score) {
      best_score = entry.score;
      best = entry.property;
    }
  }
  return best;
}

}  // namespace

std::string_view PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kHashUsers:
      return "hash";
    case PartitionStrategy::kGroupAffine:
      return "group-affine";
  }
  return "unknown";
}

Result<PartitionStrategy> ParsePartitionStrategy(std::string_view name) {
  if (name == "hash") return PartitionStrategy::kHashUsers;
  if (name == "group-affine" || name == "group_affine") {
    return PartitionStrategy::kGroupAffine;
  }
  return Status::InvalidArgument("unknown partition strategy: " +
                                 std::string(name));
}

Result<PartitionPlan> Partitioner::Partition(
    const ProfileRepository& repository, const ShardOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  telemetry::PhaseSpan span("shard.partition");

  const std::size_t num_users = repository.user_count();
  const std::size_t k = options.num_shards;
  PartitionPlan plan;
  plan.num_shards = k;
  plan.strategy = options.strategy;
  plan.users.resize(k);

  // Chunked over users into per-chunk shard buckets, merged per shard in
  // chunk order — each shard's list comes out strictly ascending.
  const util::ChunkPlan user_plan = util::PlanChunks(num_users, kUserGrain);
  std::vector<std::vector<std::vector<UserId>>> chunk_buckets(
      user_plan.num_chunks);
  util::ParallelFor(
      "shard.partition.assign", num_users,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        auto& local = chunk_buckets[chunk];
        local.resize(k);
        for (UserId u = begin; u < end; ++u) {
          std::uint64_t key = u;
          if (options.strategy == PartitionStrategy::kGroupAffine) {
            const PropertyId salient = SalientProperty(repository.user(u));
            if (salient != kInvalidProperty) key = salient;
          }
          local[Mix64(key) % k].push_back(u);
        }
      },
      kUserGrain);
  util::ParallelFor(
      "shard.partition.gather", k,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t s = begin; s < end; ++s) {
          std::size_t total = 0;
          for (const auto& local : chunk_buckets) total += local[s].size();
          plan.users[s].reserve(total);
          for (const auto& local : chunk_buckets) {
            plan.users[s].insert(plan.users[s].end(), local[s].begin(),
                                 local[s].end());
          }
        }
      },
      1);
  return plan;
}

}  // namespace podium::shard
