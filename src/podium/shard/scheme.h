#ifndef PODIUM_SHARD_SCHEME_H_
#define PODIUM_SHARD_SCHEME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "podium/bucketing/bucketizer.h"
#include "podium/groups/group_index.h"
#include "podium/profile/repository.h"
#include "podium/util/result.h"

namespace podium::shard {

/// The GLOBAL group structure of a repository — definitions, bucket
/// boundaries, (property, bucket) → group-id mapping, and global group
/// sizes — WITHOUT the global CSR adjacency. This is what every shard
/// shares: each shard materializes only its local slice of the adjacency
/// against this scheme's group-id space, so the 2^32-links-per-arena CSR
/// ceiling applies per shard instead of to the whole population.
///
/// BuildGroupScheme mirrors GroupIndex::Build phase for phase (collect →
/// bucketize → provisional ids → count → prune) minus member-list
/// materialization, so defs_, ordering, and pruning are identical to what
/// the single-snapshot engine derives; podium_check's K=1 byte-identity
/// sweep guards the mirror against drift.
struct GroupScheme {
  /// Group definitions in global id order (== GroupIndex::Build's order).
  std::vector<GroupDef> defs;
  /// |G| over the whole repository, per global group id.
  std::vector<std::uint32_t> global_sizes;
  /// β(p) per property (empty for unbucketed properties).
  std::vector<std::vector<bucketing::Bucket>> buckets_per_property;
  /// group_of_bucket[p][b] = global group id of property p's bucket-b
  /// group, or kInvalidGroup when the bucket produced no (kept) group.
  /// Outer vector indexed by PropertyId; inner empty when unbucketed.
  std::vector<std::vector<GroupId>> group_of_bucket;
  /// |𝒰| the scheme was computed over.
  std::size_t population = 0;

  std::size_t group_count() const { return defs.size(); }
};

/// Computes the global scheme for `repository` under `options`. Memory is
/// O(groups + per-property scores), never O(links).
Result<GroupScheme> BuildGroupScheme(const ProfileRepository& repository,
                                     const GroupingOptions& options = {});

}  // namespace podium::shard

#endif  // PODIUM_SHARD_SCHEME_H_
