#include "podium/shard/sharded_selector.h"

#include <algorithm>
#include <string>
#include <utility>

#include "podium/obs/trace.h"
#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/stopwatch.h"
#include "podium/util/thread_pool.h"

namespace podium::shard {

namespace {

/// Per-shard gauges stay bounded-cardinality: beyond this many shards the
/// labeled pool-size gauges are skipped (aggregate counters remain).
constexpr std::size_t kMaxLabeledShards = 32;

/// One merge-round candidate: a user from some shard's pool. Sorted by
/// ascending global id so the argmax scan's first-strictly-greater rule
/// breaks ties toward the lowest global id — the same deterministic
/// tie-break as the single-snapshot greedy.
struct Candidate {
  UserId global = 0;
  std::uint32_t shard = 0;
  UserId local = 0;
};

}  // namespace

Result<ShardedSelection> ShardedSelector::Select(
    const ShardedSnapshot& snapshot, std::size_t budget) const {
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  obs::Span select_span("shard.select");
  telemetry::PhaseSpan phase("shard.select");
  const std::size_t k = snapshot.shard_count();

  ShardedSelection result;
  result.pool_sizes.assign(k, 0);
  result.shard_seconds.assign(k, 0.0);

  // Round 1: independent greedy per shard over the shard's instance —
  // which carries the GLOBAL weights/coverage — for a candidate pool of
  // max(pool_factor·B, B) users. Pool ⊇ the shard's budget-B greedy
  // selection because greedy prefixes are selection-consistent.
  const std::size_t pool_budget =
      std::max(snapshot.options().pool_factor * budget, budget);
  obs::TraceContext* trace = obs::CurrentTrace();
  const double fanout_start =
      trace == nullptr ? 0.0 : trace->ElapsedSeconds();
  std::vector<Selection> pools(k);
  std::vector<Status> errors(k);
  util::ParallelFor(
      "shard.select.fanout", k,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t s = begin; s < end; ++s) {
          util::Stopwatch watch;
          const ShardSnapshot& shard = snapshot.shard(s);
          if (shard.user_count() > 0) {
            GreedyOptions options;
            options.mode = mode_;
            Result<Selection> pool = GreedySelector(std::move(options))
                                         .Select(shard.instance, pool_budget);
            if (pool.ok()) {
              pools[s] = std::move(pool).value();
            } else {
              errors[s] = pool.status();
            }
          }
          result.shard_seconds[s] = watch.ElapsedSeconds();
        }
      },
      1);
  for (std::size_t s = 0; s < k; ++s) {
    if (!errors[s].ok()) return errors[s];
    result.pool_sizes[s] = pools[s].users.size();
    if (trace != nullptr) {
      trace->AddCompletedSpan("shard.round1." + std::to_string(s),
                              fanout_start, result.shard_seconds[s]);
    }
  }

  // Union the pools, sorted by ascending global id.
  std::vector<Candidate> candidates;
  for (std::size_t s = 0; s < k; ++s) {
    const ShardSnapshot& shard = snapshot.shard(s);
    for (UserId local : pools[s].users) {
      candidates.push_back(Candidate{shard.global_ids[local],
                                     static_cast<std::uint32_t>(s), local});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.global < b.global;
            });
  result.candidate_count = candidates.size();

  // Round 2: one exact greedy over the union, against the global
  // weights/coverage. Candidate adjacency comes from each candidate's
  // shard-local CSR (whose group ids ARE the global ids); gains are
  // maintained by retirement-style decrements — exact, because Iden/LBS
  // weights are integers and every partial sum stays below 2^52.
  util::Stopwatch merge_watch;
  {
    obs::Span merge_span("shard.merge");
    telemetry::PhaseSpan merge_phase("shard.merge");
    const std::vector<double>& weights = snapshot.weights();
    std::vector<std::uint32_t> remaining = snapshot.coverage();
    const std::size_t num_groups = remaining.size();

    const std::size_t n = candidates.size();
    std::vector<double> gain(n, 0.0);
    std::vector<std::uint8_t> alive(n, 1);
    std::vector<std::vector<std::uint32_t>> candidates_of_group(num_groups);
    for (std::size_t i = 0; i < n; ++i) {
      const ShardSnapshot& shard = snapshot.shard(candidates[i].shard);
      for (GroupId g : shard.instance.groups().groups_of(candidates[i].local)) {
        gain[i] += weights[g];
        candidates_of_group[g].push_back(static_cast<std::uint32_t>(i));
      }
    }

    std::vector<std::uint32_t> selected_per_group(num_groups, 0);
    const std::size_t rounds = std::min(budget, n);
    result.merged.users.reserve(rounds);
    for (std::size_t round = 0; round < rounds; ++round) {
      // Plain argmax scan (the union is small: ≤ K·pool_factor·B). First
      // strictly-greater wins, so ties go to the lowest global id.
      std::size_t best = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        if (best == n || gain[i] > gain[best]) best = i;
      }
      alive[best] = 0;
      result.merged.users.push_back(candidates[best].global);

      const ShardSnapshot& shard = snapshot.shard(candidates[best].shard);
      for (GroupId g :
           shard.instance.groups().groups_of(candidates[best].local)) {
        ++selected_per_group[g];
        if (remaining[g] == 0) continue;
        if (--remaining[g] == 0) {
          // Group satisfied: retire its weight from every live candidate.
          for (std::uint32_t j : candidates_of_group[g]) {
            if (alive[j]) gain[j] -= weights[g];
          }
        }
      }
    }

    // Global score, summed in ascending group order — the same integer
    // TotalScore computes over the unsharded instance for this set.
    const std::vector<std::uint32_t>& coverage = snapshot.coverage();
    double score = 0.0;
    for (GroupId g = 0; g < num_groups; ++g) {
      score += weights[g] *
               static_cast<double>(std::min(selected_per_group[g],
                                            coverage[g]));
    }
    result.merged.score = score;
  }
  result.merge_seconds = merge_watch.ElapsedSeconds();

  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.counter("shard.selects").Add();
    registry.counter("shard.merge_candidates")
        .Add(static_cast<std::uint64_t>(result.candidate_count));
    auto& skew = registry.histogram("shard.round1_seconds");
    for (std::size_t s = 0; s < k; ++s) {
      skew.Observe(result.shard_seconds[s]);
      if (k <= kMaxLabeledShards) {
        registry
            .gauge("shard.pool_users{shard=\"" + std::to_string(s) + "\"}")
            .Set(static_cast<double>(result.pool_sizes[s]));
      }
    }
  }
  return result;
}

}  // namespace podium::shard
