#include "podium/shard/sharded_snapshot.h"

#include <algorithm>
#include <utility>

#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/thread_pool.h"

namespace podium::shard {

namespace {

/// Builds one shard in place: sub-repository, local CSR over the global
/// group-id space, and the local instance carrying the GLOBAL scoring.
Status BuildShard(const ProfileRepository& repository,
                  const GroupScheme& scheme, const GroupWeighting& weights,
                  const std::vector<std::uint32_t>& coverage,
                  CoverageKind coverage_kind, std::size_t budget,
                  std::vector<UserId> users, ShardSnapshot* out) {
  out->global_ids = std::move(users);
  const std::size_t n_local = out->global_ids.size();

  // Sub-repository under the SAME PropertyTable (ids must line up with
  // the scheme's); local ids are positions in the ascending global list.
  out->repository.properties() = repository.properties();
  for (UserId local = 0; local < n_local; ++local) {
    const UserProfile& source = repository.user(out->global_ids[local]);
    Result<UserId> added = out->repository.AddUser(source.name());
    if (!added.ok()) return added.status();
    out->repository.mutable_user(added.value())
        .ReplaceEntries(source.entries());
  }

  // Local member lists per GLOBAL group id — the same entry → bucket →
  // group assignment GroupIndex::Build performs, restricted to this
  // shard's users. Locally-empty groups stay (FromMembership keeps them),
  // preserving the shared id space.
  std::vector<std::vector<UserId>> members(scheme.group_count());
  for (UserId local = 0; local < n_local; ++local) {
    for (const PropertyScore& entry :
         out->repository.user(local).entries()) {
      const auto& buckets = scheme.buckets_per_property[entry.property];
      if (buckets.empty()) continue;
      const int b = bucketing::FindBucket(buckets, entry.score);
      if (b < 0) continue;
      const GroupId g =
          scheme.group_of_bucket[entry.property][static_cast<std::size_t>(b)];
      if (g == kInvalidGroup) continue;
      members[g].push_back(local);
    }
  }

  Result<GroupIndex> index =
      GroupIndex::FromMembership(scheme.defs, members, n_local);
  if (!index.ok()) return index.status();

  Result<DiversificationInstance> instance =
      DiversificationInstance::FromGroupsWithScoring(
          out->repository, std::move(index).value(), weights, coverage_kind,
          coverage, budget);
  if (!instance.ok()) return instance.status();
  out->instance = std::move(instance).value();
  return Status::Ok();
}

}  // namespace

std::size_t ShardSnapshot::MemoryBytes() const {
  const util::Arena* arena = instance.groups().adjacency_arena();
  return arena == nullptr ? 0 : arena->capacity();
}

Result<std::shared_ptr<const ShardedSnapshot>> ShardedSnapshot::Build(
    const ProfileRepository& repository, const InstanceOptions& instance,
    const ShardOptions& options, std::uint64_t generation) {
  telemetry::PhaseSpan span("shard.snapshot.build");
  if (instance.budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  if (instance.weight_kind == WeightKind::kEbs) {
    return Status::Unimplemented(
        "EBS weights are not supported under sharding: their "
        "rank-lexicographic scoring does not decompose across the merge "
        "round (use Iden or LBS)");
  }

  Result<GroupScheme> scheme =
      BuildGroupScheme(repository, instance.grouping);
  if (!scheme.ok()) return scheme.status();

  Result<PartitionPlan> plan = Partitioner::Partition(repository, options);
  if (!plan.ok()) return plan.status();

  auto snapshot = std::shared_ptr<ShardedSnapshot>(
      new ShardedSnapshot());  // podium-lint: allow(raw-new)
  snapshot->scheme_ = std::move(scheme).value();
  snapshot->options_ = options;
  snapshot->instance_options_ = instance;
  snapshot->user_count_ = repository.user_count();
  snapshot->generation_ = generation;
  snapshot->weights_ = GroupWeighting::ComputeFromSizes(
      snapshot->scheme_.global_sizes, instance.weight_kind, instance.budget);
  snapshot->coverage_ =
      ComputeCoverage(snapshot->scheme_.global_sizes, instance.coverage_kind,
                      instance.budget, repository.user_count());

  const std::size_t k = options.num_shards;
  snapshot->shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    snapshot->shards_.push_back(std::make_unique<ShardSnapshot>());
  }
  PartitionPlan& users = plan.value();
  std::vector<Status> errors(k);
  util::ParallelFor(
      "shard.snapshot.shards", k,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t s = begin; s < end; ++s) {
          errors[s] = BuildShard(
              repository, snapshot->scheme_, snapshot->weights_,
              snapshot->coverage_, instance.coverage_kind, instance.budget,
              std::move(users.users[s]), snapshot->shards_[s].get());
        }
      },
      1);
  for (const Status& status : errors) {
    if (!status.ok()) return status;
  }

  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.counter("shard.snapshot.builds").Add();
    registry.counter("shard.snapshot.shards")
        .Add(static_cast<std::uint64_t>(k));
    registry.gauge("shard.snapshot.memory_bytes")
        .Set(static_cast<double>(snapshot->MemoryBytes()));
  }
  return std::shared_ptr<const ShardedSnapshot>(std::move(snapshot));
}

std::size_t ShardedSnapshot::MemoryBytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->MemoryBytes();
  return total;
}

Result<ShardedSnapshot::Location> ShardedSnapshot::Locate(
    UserId global) const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<UserId>& ids = shards_[s]->global_ids;
    const auto it = std::lower_bound(ids.begin(), ids.end(), global);
    if (it != ids.end() && *it == global) {
      return Location{s, static_cast<UserId>(it - ids.begin())};
    }
  }
  return Status::NotFound("user id not present in any shard");
}

Result<std::string> ShardedSnapshot::UserName(UserId global) const {
  Result<Location> location = Locate(global);
  if (!location.ok()) return location.status();
  return shards_[location.value().shard]
      ->repository.user(location.value().local)
      .name();
}

}  // namespace podium::shard
