#ifndef PODIUM_SHARD_PARTITIONER_H_
#define PODIUM_SHARD_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "podium/profile/repository.h"
#include "podium/util/result.h"

namespace podium::shard {

/// How users are assigned to shards.
enum class PartitionStrategy : std::uint8_t {
  /// shard(u) = splitmix64(u) mod K — uniform, oblivious to profiles.
  /// Balanced shard sizes; groups scatter across all shards.
  kHashUsers,
  /// shard(u) = splitmix64(p*(u)) mod K where p*(u) is the property with
  /// the highest score in u's profile (ties by lowest property id; users
  /// with empty profiles fall back to hashing their id). Users sharing a
  /// salient property co-locate, so the groups derived from it stay
  /// mostly within one shard — the "cluster then select" layout of the
  /// clustered-diversity line of work.
  kGroupAffine,
};

std::string_view PartitionStrategyName(PartitionStrategy strategy);
Result<PartitionStrategy> ParsePartitionStrategy(std::string_view name);

/// Options for building a sharded snapshot.
struct ShardOptions {
  /// K. 1 reproduces the single-snapshot engine byte for byte.
  std::size_t num_shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kHashUsers;
  /// Per-shard candidate pools hold max(pool_factor * B, B) users (capped
  /// at the shard population), so the merge round always sees at least a
  /// full budget's worth of candidates from every non-degenerate shard.
  std::size_t pool_factor = 2;
};

/// The result of partitioning: shard membership as explicit ascending
/// global-user-id lists. Deterministic in (repository, options) — shard
/// assignment never depends on thread count.
struct PartitionPlan {
  std::size_t num_shards = 0;
  PartitionStrategy strategy = PartitionStrategy::kHashUsers;
  /// users[s] = global ids of shard s's users, strictly ascending.
  std::vector<std::vector<UserId>> users;

  std::size_t total_users() const {
    std::size_t n = 0;
    for (const auto& shard : users) n += shard.size();
    return n;
  }
};

/// Splits a repository's population into num_shards disjoint shards.
class Partitioner {
 public:
  static Result<PartitionPlan> Partition(const ProfileRepository& repository,
                                         const ShardOptions& options);
};

}  // namespace podium::shard

#endif  // PODIUM_SHARD_PARTITIONER_H_
