#include "podium/shard/scheme.h"

#include <algorithm>
#include <utility>

#include "podium/telemetry/phase.h"
#include "podium/util/thread_pool.h"

namespace podium::shard {

namespace {

/// Same user-loop grain as GroupIndex::Build — the phases below mirror it.
constexpr std::size_t kUserGrain = 256;

}  // namespace

Result<GroupScheme> BuildGroupScheme(const ProfileRepository& repository,
                                     const GroupingOptions& options) {
  telemetry::PhaseSpan span("shard.scheme");
  Result<std::unique_ptr<bucketing::Bucketizer>> bucketizer =
      bucketing::MakeBucketizer(options.bucket_method);
  if (!bucketizer.ok()) return bucketizer.status();
  if (options.max_buckets < 1) {
    return Status::InvalidArgument("max_buckets must be >= 1");
  }

  const PropertyTable& table = repository.properties();
  const std::size_t num_properties = table.size();
  const std::size_t num_users = repository.user_count();

  // Collect observed scores per property — chunked over users, per-chunk
  // slices concatenated in chunk order (ascending user id), exactly as
  // GroupIndex::Build collects them.
  const util::ChunkPlan user_plan = util::PlanChunks(num_users, kUserGrain);
  std::vector<std::vector<std::vector<double>>> chunk_scores(
      user_plan.num_chunks);
  util::ParallelFor(
      "shard.scheme.collect", num_users,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        auto& local = chunk_scores[chunk];
        local.resize(num_properties);
        for (UserId u = begin; u < end; ++u) {
          for (const PropertyScore& entry : repository.user(u).entries()) {
            local[entry.property].push_back(entry.score);
          }
        }
      },
      kUserGrain);
  std::vector<std::vector<double>> scores(num_properties);
  util::ParallelFor(
      "shard.scheme.merge", num_properties,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (PropertyId p = begin; p < end; ++p) {
          std::size_t total = 0;
          for (const auto& local : chunk_scores) total += local[p].size();
          scores[p].reserve(total);
          for (const auto& local : chunk_scores) {
            scores[p].insert(scores[p].end(), local[p].begin(),
                             local[p].end());
          }
        }
      },
      16);
  chunk_scores.clear();
  chunk_scores.shrink_to_fit();

  GroupScheme scheme;
  scheme.population = num_users;
  scheme.buckets_per_property.resize(num_properties);

  auto passes_filter = [&options, &table](PropertyId p) {
    if (options.property_filters.empty()) return true;
    const std::string& label = table.Label(p);
    for (const std::string& filter : options.property_filters) {
      if (label.find(filter) != std::string::npos) return true;
    }
    return false;
  };

  // Bucketize per property (stateless bucketizers split identically to
  // Build's per-chunk instances).
  std::vector<Status> bucket_errors(num_properties);
  util::ParallelFor(
      "shard.scheme.bucketize", num_properties,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        const auto local_bucketizer =
            bucketing::MakeBucketizer(options.bucket_method);
        for (PropertyId p = begin; p < end; ++p) {
          if (scores[p].empty() || !passes_filter(p)) continue;
          if (table.Kind(p) == PropertyKind::kBoolean) {
            scheme.buckets_per_property[p] = bucketing::FixedBooleanBuckets();
            continue;
          }
          Result<std::vector<bucketing::Bucket>> split =
              local_bucketizer.value()->Split(scores[p], options.max_buckets);
          if (!split.ok()) {
            bucket_errors[p] = split.status();
            continue;
          }
          scheme.buckets_per_property[p] = std::move(split).value();
        }
      },
      4);
  for (PropertyId p = 0; p < num_properties; ++p) {
    if (!bucket_errors[p].ok()) return bucket_errors[p];
  }

  // Provisional slots in (property, bucket) order — Build's id order.
  std::vector<std::vector<GroupId>> slot_of(num_properties);
  std::vector<GroupDef> provisional_defs;
  for (PropertyId p = 0; p < num_properties; ++p) {
    const auto& buckets = scheme.buckets_per_property[p];
    if (buckets.empty()) continue;
    slot_of[p].assign(buckets.size(), kInvalidGroup);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (!options.include_boolean_false_groups &&
          table.Kind(p) == PropertyKind::kBoolean &&
          buckets[b].label == "false") {
        continue;
      }
      slot_of[p][b] = static_cast<GroupId>(provisional_defs.size());
      provisional_defs.push_back(
          GroupDef{p, buckets[b], MakeGroupLabel(table, p, buckets[b])});
    }
  }

  // Count members per slot — Build's assign pass with uint64 counters in
  // place of member lists, so memory stays O(groups) per chunk.
  const std::size_t num_slots = provisional_defs.size();
  std::vector<std::vector<std::uint64_t>> chunk_counts(user_plan.num_chunks);
  util::ParallelFor(
      "shard.scheme.count", num_users,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        auto& local = chunk_counts[chunk];
        local.resize(num_slots);
        for (UserId u = begin; u < end; ++u) {
          for (const PropertyScore& entry : repository.user(u).entries()) {
            const auto& buckets = scheme.buckets_per_property[entry.property];
            if (buckets.empty()) continue;
            const int b = bucketing::FindBucket(buckets, entry.score);
            if (b < 0) continue;  // unreachable for valid partitions
            const GroupId slot =
                slot_of[entry.property][static_cast<std::size_t>(b)];
            if (slot == kInvalidGroup) continue;
            ++local[slot];
          }
        }
      },
      kUserGrain);
  std::vector<std::uint64_t> slot_sizes(num_slots, 0);
  for (const auto& local : chunk_counts) {
    for (std::size_t slot = 0; slot < local.size(); ++slot) {
      slot_sizes[slot] += local[slot];
    }
  }

  // Prune exactly as Build does (empty and undersized slots drop; the
  // survivors compact in slot order) and invert slot_of into the final
  // (property, bucket) → global id map.
  const std::size_t min_size = std::max<std::size_t>(options.min_group_size, 1);
  scheme.group_of_bucket.resize(num_properties);
  for (PropertyId p = 0; p < num_properties; ++p) {
    scheme.group_of_bucket[p].assign(slot_of[p].size(), kInvalidGroup);
  }
  std::vector<GroupId> final_of_slot(num_slots, kInvalidGroup);
  for (std::size_t slot = 0; slot < num_slots; ++slot) {
    if (slot_sizes[slot] < min_size) continue;
    final_of_slot[slot] = static_cast<GroupId>(scheme.defs.size());
    scheme.defs.push_back(std::move(provisional_defs[slot]));
    scheme.global_sizes.push_back(static_cast<std::uint32_t>(slot_sizes[slot]));
  }
  for (PropertyId p = 0; p < num_properties; ++p) {
    for (std::size_t b = 0; b < slot_of[p].size(); ++b) {
      if (slot_of[p][b] == kInvalidGroup) continue;
      scheme.group_of_bucket[p][b] = final_of_slot[slot_of[p][b]];
    }
  }
  return scheme;
}

}  // namespace podium::shard
