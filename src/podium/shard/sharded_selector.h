#ifndef PODIUM_SHARD_SHARDED_SELECTOR_H_
#define PODIUM_SHARD_SHARDED_SELECTOR_H_

#include <cstddef>
#include <vector>

#include "podium/core/greedy.h"
#include "podium/core/selection.h"
#include "podium/shard/sharded_snapshot.h"
#include "podium/util/result.h"

namespace podium::shard {

/// The merged result of a two-round distributed selection, plus the
/// per-phase observability the serve layer and benches surface (shard
/// skew is the thing to watch at high K).
struct ShardedSelection {
  /// Final selection in merge-round pick order; users are GLOBAL ids and
  /// score is the GLOBAL score_𝒢 (exactly TotalScore of the unsharded
  /// instance over the same set — integer-exact for Iden/LBS).
  Selection merged;

  /// Candidate pool size contributed by each shard.
  std::vector<std::size_t> pool_sizes;
  /// Per-shard wall clock of the first round, seconds (skew signal).
  std::vector<double> shard_seconds;
  /// Total candidates entering the merge round.
  std::size_t candidate_count = 0;
  double merge_seconds = 0.0;
};

/// Two-round distributed greedy (the GreeDi shape; DESIGN.md §13):
/// round 1 runs the lazy-heap greedy independently per shard — against
/// the GLOBAL weights/coverage baked into each shard's instance — for a
/// candidate pool of max(pool_factor·B, B) users; round 2 unions the
/// pools and runs one exact greedy over the union. Guarantees
/// f(merged) ≥ (1−1/e)²/min(K,B) · f(OPT), and at K=1 reproduces the
/// single-snapshot greedy byte for byte.
class ShardedSelector {
 public:
  explicit ShardedSelector(GreedyMode mode = GreedyMode::kLazyHeap)
      : mode_(mode) {}

  [[nodiscard]] Result<ShardedSelection> Select(
      const ShardedSnapshot& snapshot, std::size_t budget) const;

 private:
  GreedyMode mode_;
};

}  // namespace podium::shard

#endif  // PODIUM_SHARD_SHARDED_SELECTOR_H_
