#ifndef PODIUM_INGEST_YELP_H_
#define PODIUM_INGEST_YELP_H_

#include <string>

#include "podium/opinion/opinion_store.h"
#include "podium/profile/repository.h"
#include "podium/util/result.h"

namespace podium::ingest {

/// Ingestion of the Yelp Open Dataset — the real dataset behind the
/// paper's Figures 3c/3d. The dataset itself is licensed for academic use
/// and not redistributable, so users supply their own copy of the
/// JSON-lines files (business.json, review.json, user.json) and this
/// module turns them into a ProfileRepository + OpinionStore exactly as
/// Section 8.1 describes: businesses filtered to restaurants, the most
/// active users kept, and per-category Average Rating / Visit Frequency /
/// Enthusiasm Level properties derived from the reviews.

struct YelpIngestOptions {
  /// Keep only businesses whose category list contains this entry
  /// ("restaurant-related data"). Empty keeps everything.
  std::string required_category = "Restaurants";

  /// Keep only the N most-active users (the paper keeps the top 60K);
  /// 0 keeps everyone.
  std::size_t max_users = 60000;

  /// Users with fewer reviews (after business filtering) are dropped.
  std::size_t min_reviews_per_user = 1;

  /// Derive the third property family. The paper's Yelp runs omit it.
  bool derive_enthusiasm = false;

  /// Infer a boolean "livesIn <city>" property from the user's modal
  /// review city (Yelp profiles carry no residence field; the mode is the
  /// standard proxy).
  bool infer_home_city = true;

  /// Review texts are scanned for this many topic keywords (the topic
  /// vocabulary of opinion metrics); sentiment of a mention follows the
  /// review's star rating (>= 4 positive, <= 2 negative, 3 by text
  /// polarity is out of scope and defaults to positive). 0 disables topic
  /// extraction.
  std::size_t max_topics = 24;
};

struct YelpDataset {
  ProfileRepository repository;
  opinion::OpinionStore opinions;
  std::size_t businesses_kept = 0;
  std::size_t reviews_kept = 0;
};

/// Parses the three JSON-lines files and builds the dataset. Files are
/// streamed line by line; malformed lines fail the ingest (the official
/// dumps are well-formed).
[[nodiscard]] Result<YelpDataset> IngestYelp(const std::string& business_path,
                               const std::string& review_path,
                               const std::string& user_path,
                               const YelpIngestOptions& options = {});

}  // namespace podium::ingest

#endif  // PODIUM_INGEST_YELP_H_
