#include "podium/ingest/yelp.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <unordered_map>

#include "podium/datagen/vocabularies.h"
#include "podium/json/parser.h"
#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/math_util.h"
#include "podium/util/string_util.h"

namespace podium::ingest {

namespace {

struct Business {
  opinion::DestinationId destination = opinion::kInvalidDestination;
  std::string city;
  std::vector<std::string> categories;
};

struct RawReview {
  std::string user_id;
  opinion::DestinationId destination = opinion::kInvalidDestination;
  int stars = 0;
  int useful = 0;
  std::vector<opinion::TopicMention> topics;
  std::string city;  // of the business, for home-city inference
};

/// Calls `handler(value)` for every non-empty line of a JSON-lines file.
template <typename Handler>
Status ForEachJsonLine(const std::string& path, Handler&& handler) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (util::StripWhitespace(line).empty()) continue;
    Result<json::Value> value = json::Parse(line);
    if (!value.ok()) {
      return Status::ParseError(util::StringPrintf(
          "%s:%zu: %s", path.c_str(), line_number,
          value.status().message().c_str()));
    }
    PODIUM_RETURN_IF_ERROR(handler(value.value()));
  }
  if (in.bad()) return Status::IoError("error reading file: " + path);
  return Status::Ok();
}

Result<std::string> RequiredString(const json::Object& object,
                                   const char* key) {
  const json::Value* value = object.Find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::ParseError(std::string("missing string field '") + key +
                              "'");
  }
  return value->AsString();
}

double NumberOr(const json::Object& object, const char* key,
                double fallback) {
  const json::Value* value = object.Find(key);
  return value != nullptr && value->is_number() ? value->AsNumber()
                                                : fallback;
}

/// Case-insensitive substring search (topic keywords in review text).
bool ContainsNoCase(const std::string& haystack, const std::string& needle) {
  return util::AsciiToLower(haystack).find(util::AsciiToLower(needle)) !=
         std::string::npos;
}

}  // namespace

Result<YelpDataset> IngestYelp(const std::string& business_path,
                               const std::string& review_path,
                               const std::string& user_path,
                               const YelpIngestOptions& options) {
  telemetry::PhaseSpan ingest_span("ingest.yelp");
  YelpDataset dataset;

  // --- Topic vocabulary -----------------------------------------------------
  std::vector<std::string> topics;
  if (options.max_topics > 0) {
    topics = datagen::TopicNames(options.max_topics);
    for (const std::string& topic : topics) {
      dataset.opinions.InternTopic(topic);
    }
  }

  // --- businesses -----------------------------------------------------------
  std::optional<telemetry::PhaseSpan> section;
  section.emplace("ingest.businesses");
  std::unordered_map<std::string, Business> businesses;
  PODIUM_RETURN_IF_ERROR(ForEachJsonLine(
      business_path, [&](const json::Value& value) -> Status {
        if (!value.is_object()) {
          return Status::ParseError("business line is not an object");
        }
        const json::Object& object = value.AsObject();
        Result<std::string> id = RequiredString(object, "business_id");
        if (!id.ok()) return id.status();

        // "categories" is a comma-separated string (may be null).
        std::vector<std::string> categories;
        if (const json::Value* cats = object.Find("categories");
            cats != nullptr && cats->is_string()) {
          for (const std::string& piece : util::Split(cats->AsString(), ',')) {
            const std::string_view stripped = util::StripWhitespace(piece);
            if (!stripped.empty()) categories.emplace_back(stripped);
          }
        }
        if (!options.required_category.empty() &&
            std::find(categories.begin(), categories.end(),
                      options.required_category) == categories.end()) {
          return Status::Ok();  // filtered out
        }

        Business business;
        business.city =
            RequiredString(object, "city").value_or("unknown");
        business.categories = categories;
        opinion::Destination destination;
        destination.name =
            RequiredString(object, "name").value_or(id.value());
        destination.city = business.city;
        destination.categories = categories;
        business.destination =
            dataset.opinions.AddDestination(std::move(destination));
        businesses.emplace(std::move(id).value(), std::move(business));
        ++dataset.businesses_kept;
        return Status::Ok();
      }));

  // --- users (activity ranking) ----------------------------------------------
  // user.json carries review_count; the paper keeps the most active.
  section.emplace("ingest.users");
  std::vector<std::pair<std::string, double>> activity;
  PODIUM_RETURN_IF_ERROR(ForEachJsonLine(
      user_path, [&](const json::Value& value) -> Status {
        if (!value.is_object()) {
          return Status::ParseError("user line is not an object");
        }
        const json::Object& object = value.AsObject();
        Result<std::string> id = RequiredString(object, "user_id");
        if (!id.ok()) return id.status();
        activity.emplace_back(std::move(id).value(),
                              NumberOr(object, "review_count", 0.0));
        return Status::Ok();
      }));
  std::stable_sort(activity.begin(), activity.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (options.max_users > 0 && activity.size() > options.max_users) {
    activity.resize(options.max_users);
  }
  std::unordered_map<std::string, std::vector<RawReview>> reviews_by_user;
  for (const auto& [id, count] : activity) {
    reviews_by_user.emplace(id, std::vector<RawReview>{});
  }

  // --- reviews ---------------------------------------------------------------
  section.emplace("ingest.reviews");
  PODIUM_RETURN_IF_ERROR(ForEachJsonLine(
      review_path, [&](const json::Value& value) -> Status {
        if (!value.is_object()) {
          return Status::ParseError("review line is not an object");
        }
        const json::Object& object = value.AsObject();
        Result<std::string> user_id = RequiredString(object, "user_id");
        if (!user_id.ok()) return user_id.status();
        auto user_it = reviews_by_user.find(user_id.value());
        if (user_it == reviews_by_user.end()) return Status::Ok();
        Result<std::string> business_id =
            RequiredString(object, "business_id");
        if (!business_id.ok()) return business_id.status();
        auto business_it = businesses.find(business_id.value());
        if (business_it == businesses.end()) return Status::Ok();

        RawReview review;
        review.destination = business_it->second.destination;
        review.city = business_it->second.city;
        review.stars = static_cast<int>(
            util::Clamp(NumberOr(object, "stars", 0.0), 1.0, 5.0));
        review.useful =
            static_cast<int>(std::max(0.0, NumberOr(object, "useful", 0.0)));
        if (!topics.empty()) {
          if (const json::Value* text = object.Find("text");
              text != nullptr && text->is_string()) {
            const opinion::Sentiment sentiment =
                review.stars <= 2 ? opinion::Sentiment::kNegative
                                  : opinion::Sentiment::kPositive;
            for (opinion::TopicId t = 0; t < topics.size(); ++t) {
              if (ContainsNoCase(text->AsString(), topics[t])) {
                review.topics.push_back({t, sentiment});
              }
            }
          }
        }
        user_it->second.push_back(std::move(review));
        return Status::Ok();
      }));

  // --- profile derivation (Section 8.1) ---------------------------------------
  section.emplace("ingest.profiles");
  PropertyTable& properties = dataset.repository.properties();
  std::unordered_map<std::string, PropertyId> avg_property;
  std::unordered_map<std::string, PropertyId> freq_property;
  std::unordered_map<std::string, PropertyId> enthusiasm_property;
  auto property_for = [&properties](
                          std::unordered_map<std::string, PropertyId>& cache,
                          const std::string& prefix,
                          const std::string& category,
                          PropertyKind kind = PropertyKind::kScore) {
    auto it = cache.find(category);
    if (it != cache.end()) return it->second;
    const PropertyId id = properties.Intern(prefix + category, kind);
    cache.emplace(category, id);
    return id;
  };

  for (const auto& [user_id, count] : activity) {
    const std::vector<RawReview>& reviews = reviews_by_user[user_id];
    if (reviews.size() < options.min_reviews_per_user) continue;

    Result<UserId> added = dataset.repository.AddUser(user_id);
    if (!added.ok()) return added.status();
    const UserId user = added.value();

    struct Aggregate {
      std::uint32_t count = 0;
      double rating_sum = 0.0;
    };
    std::map<std::string, Aggregate> per_category;
    std::map<std::string, std::uint32_t> city_counts;
    double total_rating = 0.0;
    for (const RawReview& review : reviews) {
      total_rating += static_cast<double>(review.stars);
      ++city_counts[review.city];
      opinion::Review stored;
      stored.user = user;
      stored.destination = review.destination;
      stored.rating = review.stars;
      stored.useful_votes = review.useful;
      stored.topics = review.topics;
      PODIUM_RETURN_IF_ERROR(dataset.opinions.AddReview(std::move(stored)));
      ++dataset.reviews_kept;
      // Category aggregation via the destination's category list.
      const opinion::Destination& destination =
          dataset.opinions.destination(review.destination);
      for (const std::string& category : destination.categories) {
        if (category == options.required_category) continue;  // trivial
        Aggregate& aggregate = per_category[category];
        ++aggregate.count;
        aggregate.rating_sum += static_cast<double>(review.stars);
      }
    }
    if (reviews.empty()) continue;
    const double overall_avg =
        total_rating / static_cast<double>(reviews.size());

    std::vector<PropertyScore> entries;
    entries.reserve(3 * per_category.size() + 1);
    for (const auto& [category, aggregate] : per_category) {
      const double category_avg =
          aggregate.rating_sum / static_cast<double>(aggregate.count);
      entries.push_back(PropertyScore{
          property_for(avg_property, "avgRating ", category),
          util::Clamp(category_avg / overall_avg - 0.5, 0.0, 1.0)});
      entries.push_back(PropertyScore{
          property_for(freq_property, "visitFreq ", category),
          static_cast<double>(aggregate.count) /
              static_cast<double>(reviews.size())});
      if (options.derive_enthusiasm) {
        entries.push_back(PropertyScore{
            property_for(enthusiasm_property, "enthusiasm ", category),
            aggregate.rating_sum / total_rating});
      }
    }
    if (options.infer_home_city && !city_counts.empty()) {
      const auto modal = std::max_element(
          city_counts.begin(), city_counts.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      entries.push_back(PropertyScore{
          properties.Intern("livesIn " + modal->first,
                            PropertyKind::kBoolean),
          1.0});
    }
    dataset.repository.mutable_user(user).ReplaceEntries(std::move(entries));
  }
  section.reset();

  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.counter("ingest.yelp.runs").Add();
    registry.counter("ingest.yelp.businesses").Add(dataset.businesses_kept);
    registry.counter("ingest.yelp.reviews").Add(dataset.reviews_kept);
    registry.counter("ingest.yelp.users")
        .Add(dataset.repository.user_count());
  }
  return dataset;
}

}  // namespace podium::ingest
