#ifndef PODIUM_DATAGEN_GENERATOR_H_
#define PODIUM_DATAGEN_GENERATOR_H_

#include <string>
#include <vector>

#include "podium/datagen/config.h"
#include "podium/opinion/opinion_store.h"
#include "podium/profile/repository.h"
#include "podium/taxonomy/taxonomy.h"
#include "podium/util/result.h"

namespace podium::datagen {

/// A generated dataset: the profile repository Podium selects from, the
/// cuisine taxonomy behind the derived properties, and the ground-truth
/// opinions used to simulate procurement.
///
/// Profiles are derived from all reviews EXCEPT those of the hold-out
/// destinations (Section 8.2: "select users based on profiles excluding
/// the data related to some destination, then evaluate diversity of the
/// selected subset reviews on the excluded destination").
struct Dataset {
  ProfileRepository repository;
  taxonomy::Taxonomy cuisine;
  std::vector<taxonomy::CategoryId> leaf_categories;
  opinion::OpinionStore opinions;
  std::vector<opinion::DestinationId> holdout;
  std::vector<std::string> cities;
  std::vector<std::string> age_groups;
  DatasetConfig config;
};

/// Generates a full dataset from `config`. Deterministic in config.seed.
Result<Dataset> GenerateDataset(const DatasetConfig& config);

}  // namespace podium::datagen

#endif  // PODIUM_DATAGEN_GENERATOR_H_
