#include "podium/datagen/persona.h"

#include <algorithm>

#include "podium/util/math_util.h"

namespace podium::datagen {

Persona SamplePersona(std::size_t num_categories, std::size_t num_topics,
                      util::Rng& rng) {
  Persona persona;
  persona.category_affinity.assign(num_categories, 0.0);
  persona.topic_interest.assign(num_topics, 0.0);

  // 4..12 loved categories, 2..8 disliked ones.
  const std::size_t loved = 4 + rng.NextBounded(9);
  const std::size_t disliked = 2 + rng.NextBounded(7);
  std::vector<std::size_t> picks =
      rng.SampleWithoutReplacement(num_categories, loved + disliked);
  for (std::size_t i = 0; i < picks.size() && i < loved; ++i) {
    persona.category_affinity[picks[i]] = rng.NextDouble(0.45, 1.0);
  }
  for (std::size_t i = loved; i < picks.size(); ++i) {
    persona.category_affinity[picks[i]] = rng.NextDouble(-1.0, -0.35);
  }

  // Concentrated topic interests: a few strong topics on a weak base.
  for (double& interest : persona.topic_interest) {
    interest = rng.NextDouble(0.02, 0.15);
  }
  const std::size_t strong_topics =
      std::min<std::size_t>(3 + rng.NextBounded(4), num_topics);
  for (std::size_t pick :
       rng.SampleWithoutReplacement(num_topics, strong_topics)) {
    persona.topic_interest[pick] = rng.NextDouble(0.5, 1.0);
  }

  persona.rating_bias = rng.NextDouble(-0.6, 0.6);
  persona.positivity = rng.NextDouble(-1.0, 1.0);
  return persona;
}

UserTaste SampleUserTaste(const Persona& persona, std::size_t persona_index,
                          util::Rng& rng) {
  UserTaste taste;
  taste.persona = persona_index;
  taste.category_affinity = persona.category_affinity;
  taste.topic_interest = persona.topic_interest;

  // Individual perturbation on the persona's non-zero affinities plus a
  // couple of idiosyncratic tastes of the user's own.
  for (double& affinity : taste.category_affinity) {
    if (affinity != 0.0) {
      affinity = util::Clamp(affinity + rng.NextGaussian(0.0, 0.18),
                             -1.0, 1.0);
    }
  }
  const std::size_t quirks = rng.NextBounded(4);  // 0..3 personal picks
  for (std::size_t i = 0; i < quirks; ++i) {
    const std::size_t category =
        rng.NextBounded(taste.category_affinity.size());
    taste.category_affinity[category] = util::Clamp(
        taste.category_affinity[category] + rng.NextDouble(-0.9, 0.9), -1.0,
        1.0);
  }
  for (double& interest : taste.topic_interest) {
    interest =
        util::Clamp(interest + rng.NextGaussian(0.0, 0.08), 0.0, 1.0);
  }
  taste.rating_bias =
      util::Clamp(persona.rating_bias + rng.NextGaussian(0.0, 0.15), -1.0,
                  1.0);
  taste.positivity =
      util::Clamp(persona.positivity + rng.NextGaussian(0.0, 0.2), -1.0, 1.0);
  return taste;
}

}  // namespace podium::datagen
