#ifndef PODIUM_DATAGEN_PERSONA_H_
#define PODIUM_DATAGEN_PERSONA_H_

#include <vector>

#include "podium/util/rng.h"

namespace podium::datagen {

/// A latent user archetype. Users are noisy copies of their persona, which
/// is what makes profile properties *correlated* across users — the
/// structure Podium's simple groups implicitly exploit when covering
/// complex groups (Section 8.4).
struct Persona {
  /// Per leaf category, in [-1, 1]: >0 loved, <0 disliked, 0 indifferent.
  /// Sparse in spirit — most entries are 0.
  std::vector<double> category_affinity;

  /// Per topic, in [0, 1]: how likely the persona is to mention the topic.
  std::vector<double> topic_interest;

  /// Stars added/removed from every rating, in [-0.6, 0.6].
  double rating_bias = 0.0;

  /// Disposition toward positive sentiment, in [-1, 1].
  double positivity = 0.0;
};

/// Samples a persona: a handful of loved and disliked categories, a
/// concentrated topic-interest profile, and global rating temperament.
Persona SamplePersona(std::size_t num_categories, std::size_t num_topics,
                      util::Rng& rng);

/// A concrete user's taste: persona values perturbed by individual noise.
struct UserTaste {
  std::size_t persona = 0;
  std::vector<double> category_affinity;  // same layout as Persona
  std::vector<double> topic_interest;
  double rating_bias = 0.0;
  double positivity = 0.0;
};

UserTaste SampleUserTaste(const Persona& persona, std::size_t persona_index,
                          util::Rng& rng);

}  // namespace podium::datagen

#endif  // PODIUM_DATAGEN_PERSONA_H_
