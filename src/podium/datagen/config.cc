#include "podium/datagen/config.h"

namespace podium::datagen {

DatasetConfig DatasetConfig::TripAdvisorLike() {
  DatasetConfig config;
  config.num_users = 4475;
  config.num_restaurants = 50000;
  // ~1200 leaves + internal generalizations yield ≈3.7K score properties
  // and ≈11K simple groups, matching the paper's 11749 for TripAdvisor.
  config.leaf_categories = 1200;
  config.num_cities = 60;
  config.num_personas = 20;
  config.min_reviews_per_user = 8;
  config.max_reviews_per_user = 150;
  config.activity_zipf = 1.1;
  config.with_usefulness = false;
  config.derive_enthusiasm = true;
  config.holdout_destinations = 50;
  config.min_holdout_reviews = 25;
  config.seed = 7;
  return config;
}

DatasetConfig DatasetConfig::YelpLike() {
  DatasetConfig config;
  config.num_users = 20000;
  config.num_restaurants = 30000;
  // Two property families only (no enthusiasm) over ~1300 leaves ≈ 8.1K
  // groups, matching the paper's 8491 for Yelp.
  config.leaf_categories = 1300;
  config.num_cities = 40;
  config.num_personas = 16;
  config.min_reviews_per_user = 15;
  config.max_reviews_per_user = 150;
  config.activity_zipf = 1.0;  // most-active users: flatter tail
  config.with_usefulness = true;
  config.derive_enthusiasm = false;
  config.holdout_destinations = 130;
  config.min_holdout_reviews = 40;
  config.seed = 11;
  return config;
}

}  // namespace podium::datagen
