#include "podium/datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "podium/datagen/persona.h"
#include "podium/datagen/vocabularies.h"
#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/math_util.h"
#include "podium/util/rng.h"
#include "podium/util/string_util.h"
#include "podium/util/thread_pool.h"

namespace podium::datagen {

namespace {

struct Restaurant {
  std::uint32_t city = 0;
  std::vector<std::uint32_t> leaf_indices;  // indices into Dataset::leaf_categories
  double quality = 0.5;                     // latent, in [0, 1]
  std::vector<float> topic_quality;         // per topic, in [0, 1]
};

struct UserRecord {
  UserTaste taste;
  std::uint32_t city = 0;
  std::uint32_t age_group = 0;
  std::size_t review_target = 0;
};

/// Transient per-review record kept for profile derivation.
struct ReviewStub {
  opinion::DestinationId destination;
  int rating;
};

double MeanAffinity(const UserTaste& taste, const Restaurant& restaurant) {
  double total = 0.0;
  for (std::uint32_t leaf : restaurant.leaf_indices) {
    total += taste.category_affinity[leaf];
  }
  return total / static_cast<double>(restaurant.leaf_indices.size());
}

int SampleRating(const UserTaste& taste, const Restaurant& restaurant,
                 util::Rng& rng) {
  // Taste dominates within a destination (its quality is a constant
  // there); temperament biases; noise blurs. A strong affinity->rating
  // coupling is what lets profile-diverse panels produce rating-diverse
  // opinions — the paper's central empirical observation.
  const double affinity01 = 0.5 + 0.5 * MeanAffinity(taste, restaurant);
  double score01 = 0.42 * restaurant.quality + 0.42 * affinity01 +
                   0.08 * (0.5 + 0.5 * taste.positivity) +
                   0.08 * taste.rating_bias + rng.NextGaussian(0.0, 0.09);
  score01 = util::Clamp(score01, 0.0, 0.9999);
  return 1 + static_cast<int>(score01 * 5.0);
}

opinion::Sentiment SampleSentiment(const UserTaste& taste,
                                   const Restaurant& restaurant,
                                   opinion::TopicId topic, int rating,
                                   util::Rng& rng) {
  const double topic_quality =
      static_cast<double>(restaurant.topic_quality[topic]);
  const double logit = 3.2 * (topic_quality - 0.5) +
                       0.55 * (static_cast<double>(rating) - 3.0) +
                       0.5 * taste.positivity + rng.NextGaussian(0.0, 0.8);
  const double p = 1.0 / (1.0 + std::exp(-logit));
  return rng.NextBernoulli(p) ? opinion::Sentiment::kPositive
                              : opinion::Sentiment::kNegative;
}

int SampleUsefulVotes(const Restaurant& restaurant, int rating,
                      util::Rng& rng) {
  // Reviews aligned with the destination's latent quality resonate with
  // more readers ("a larger group of users agree or can relate").
  const double expected = 1.0 + 4.0 * restaurant.quality;
  const double agreement =
      1.0 - std::fabs(static_cast<double>(rating) - expected) / 4.0;
  const double scale = std::exp(rng.NextGaussian(0.0, 0.9));
  const double votes = std::max(0.0, 2.5 * agreement * scale - 0.8);
  return static_cast<int>(votes);
}

}  // namespace

Result<Dataset> GenerateDataset(const DatasetConfig& config) {
  if (config.num_users == 0 || config.num_restaurants == 0) {
    return Status::InvalidArgument("dataset must have users and restaurants");
  }
  if (config.min_reviews_per_user == 0 ||
      config.max_reviews_per_user < config.min_reviews_per_user) {
    return Status::InvalidArgument("invalid review count range");
  }

  telemetry::PhaseSpan generate_span("datagen.generate");
  Dataset dataset;
  dataset.config = config;
  util::Rng rng(config.seed);

  // --- Vocabularies -------------------------------------------------------
  CuisineTaxonomy cuisine = BuildCuisineTaxonomy(config.leaf_categories);
  dataset.cuisine = std::move(cuisine.taxonomy);
  dataset.leaf_categories = std::move(cuisine.leaves);
  dataset.cities = CityNames(config.num_cities);
  dataset.age_groups = AgeGroupLabels(config.num_age_groups);
  const std::vector<std::string> topics = TopicNames(config.num_topics);
  for (const std::string& topic : topics) {
    dataset.opinions.InternTopic(topic);
  }
  const std::size_t num_leaves = dataset.leaf_categories.size();

  // Ancestor closure per leaf (leaf itself first, then ancestors). The
  // taxonomy root ("Food") is excluded: it holds for every review, so a
  // derived "avgRating Food" property would carry no information and its
  // buckets would dominate the group-size ranking with noise.
  const taxonomy::CategoryId root = dataset.cuisine.Find("Food");
  std::vector<std::vector<taxonomy::CategoryId>> closure(num_leaves);
  for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
    closure[leaf].push_back(dataset.leaf_categories[leaf]);
    for (taxonomy::CategoryId ancestor :
         dataset.cuisine.Ancestors(dataset.leaf_categories[leaf])) {
      if (ancestor == root) continue;
      closure[leaf].push_back(ancestor);
    }
  }

  // --- Personas and users -------------------------------------------------
  std::optional<telemetry::PhaseSpan> section;
  section.emplace("datagen.users");
  util::Rng persona_rng = rng.Fork(1);
  std::vector<Persona> personas;
  personas.reserve(config.num_personas);
  for (std::size_t i = 0; i < config.num_personas; ++i) {
    personas.push_back(SamplePersona(num_leaves, topics.size(), persona_rng));
  }

  // Topics are anchored to categories (a vegan cares about "veggie
  // options"): each topic gets a few anchor leaf categories, and a user's
  // interest in the topic blends the persona's interest with the user's
  // affinity for the anchors. This is the profile -> opinion-content
  // coupling behind "diverse users provide diverse opinions".
  util::Rng anchor_rng = rng.Fork(8);
  std::vector<std::vector<std::size_t>> topic_anchors(topics.size());
  for (auto& anchors : topic_anchors) {
    anchors = anchor_rng.SampleWithoutReplacement(
        num_leaves, std::min<std::size_t>(3, num_leaves));
  }

  util::Rng user_rng = rng.Fork(2);
  std::vector<UserRecord> users(config.num_users);
  const std::size_t activity_range =
      config.max_reviews_per_user - config.min_reviews_per_user + 1;
  for (UserRecord& user : users) {
    const std::size_t persona =
        user_rng.NextZipf(config.num_personas, config.persona_zipf);
    user.taste = SampleUserTaste(personas[persona], persona, user_rng);
    for (std::size_t t = 0; t < topic_anchors.size(); ++t) {
      double anchor_affinity = 0.0;
      for (std::size_t leaf : topic_anchors[t]) {
        anchor_affinity = std::max(
            anchor_affinity, std::fabs(user.taste.category_affinity[leaf]));
      }
      user.taste.topic_interest[t] = util::Clamp(
          0.35 * user.taste.topic_interest[t] + 0.85 * anchor_affinity +
              0.02,
          0.0, 1.0);
    }
    user.city = static_cast<std::uint32_t>(
        user_rng.NextZipf(dataset.cities.size(), config.city_zipf));
    user.age_group = static_cast<std::uint32_t>(
        user_rng.NextZipf(dataset.age_groups.size(), 0.5));
    user.review_target = config.min_reviews_per_user +
                         user_rng.NextZipf(activity_range,
                                           config.activity_zipf);
  }

  // --- Restaurants --------------------------------------------------------
  section.emplace("datagen.restaurants");
  util::Rng restaurant_rng = rng.Fork(3);
  std::vector<Restaurant> restaurants(config.num_restaurants);
  std::vector<std::vector<std::uint32_t>> restaurants_by_leaf(num_leaves);
  for (std::uint32_t r = 0; r < restaurants.size(); ++r) {
    Restaurant& restaurant = restaurants[r];
    restaurant.city = static_cast<std::uint32_t>(
        restaurant_rng.NextZipf(dataset.cities.size(), config.city_zipf));
    const auto primary = static_cast<std::uint32_t>(
        restaurant_rng.NextZipf(num_leaves, config.category_zipf));
    restaurant.leaf_indices.push_back(primary);
    // Optional secondary (and rarely tertiary) category.
    if (restaurant_rng.NextBernoulli(0.5)) {
      const auto secondary = static_cast<std::uint32_t>(
          restaurant_rng.NextZipf(num_leaves, config.category_zipf));
      if (secondary != primary) restaurant.leaf_indices.push_back(secondary);
      if (restaurant_rng.NextBernoulli(0.15)) {
        const auto tertiary =
            static_cast<std::uint32_t>(restaurant_rng.NextBounded(num_leaves));
        if (std::find(restaurant.leaf_indices.begin(),
                      restaurant.leaf_indices.end(),
                      tertiary) == restaurant.leaf_indices.end()) {
          restaurant.leaf_indices.push_back(tertiary);
        }
      }
    }
    restaurant.quality =
        util::Clamp(restaurant_rng.NextGaussian(0.62, 0.16), 0.15, 0.97);
    restaurant.topic_quality.resize(topics.size());
    for (float& q : restaurant.topic_quality) {
      q = static_cast<float>(util::Clamp(
          restaurant_rng.NextGaussian(restaurant.quality, 0.18), 0.0, 1.0));
    }
    for (std::uint32_t leaf : restaurant.leaf_indices) {
      restaurants_by_leaf[leaf].push_back(r);
    }
    opinion::Destination destination;
    destination.name = util::StringPrintf("restaurant-%05u", r);
    destination.city = dataset.cities[restaurant.city];
    for (std::uint32_t leaf : restaurant.leaf_indices) {
      destination.categories.push_back(
          dataset.cuisine.Name(dataset.leaf_categories[leaf]));
    }
    dataset.opinions.AddDestination(std::move(destination));
  }

  // --- Reviews ------------------------------------------------------------
  // Category choice per review: softmax-ish over the user's positive
  // affinities with an exploration floor.
  section.emplace("datagen.reviews");
  util::Rng review_rng = rng.Fork(4);
  std::vector<std::vector<ReviewStub>> stubs(config.num_users);
  std::vector<double> category_weights(num_leaves);
  for (std::uint32_t u = 0; u < users.size(); ++u) {
    const UserRecord& user = users[u];
    for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
      const double affinity = user.taste.category_affinity[leaf];
      category_weights[leaf] = 0.04 + (affinity > 0.0 ? 2.5 * affinity : 0.0);
    }
    std::unordered_set<std::uint32_t> visited;
    std::size_t attempts = 0;
    const std::size_t max_attempts = user.review_target * 6;
    while (stubs[u].size() < user.review_target &&
           attempts++ < max_attempts) {
      const std::size_t leaf = review_rng.NextDiscrete(category_weights);
      const auto& pool = restaurants_by_leaf[leaf];
      if (pool.empty()) continue;
      const std::uint32_t r = pool[review_rng.NextZipf(
          pool.size(), config.restaurant_popularity_zipf)];
      if (!visited.insert(r).second) continue;  // already reviewed
      const Restaurant& restaurant = restaurants[r];
      opinion::Review review;
      review.user = u;
      review.destination = r;
      review.rating = SampleRating(user.taste, restaurant, review_rng);
      // 1..4 topic mentions weighted by the user's interests.
      const std::size_t mentions = 1 + review_rng.NextBounded(4);
      std::unordered_set<opinion::TopicId> mentioned;
      for (std::size_t m = 0; m < mentions; ++m) {
        const auto topic = static_cast<opinion::TopicId>(
            review_rng.NextDiscrete(user.taste.topic_interest));
        if (!mentioned.insert(topic).second) continue;
        review.topics.push_back(opinion::TopicMention{
            topic, SampleSentiment(user.taste, restaurant, topic,
                                   review.rating, review_rng)});
      }
      if (config.with_usefulness) {
        review.useful_votes =
            SampleUsefulVotes(restaurant, review.rating, review_rng);
      }
      stubs[u].push_back(ReviewStub{r, review.rating});
      PODIUM_RETURN_IF_ERROR(dataset.opinions.AddReview(std::move(review)));
    }
  }

  // --- Hold-out destinations ----------------------------------------------
  std::vector<opinion::DestinationId> popular =
      dataset.opinions.PopularDestinations(config.min_holdout_reviews);
  if (popular.size() > config.holdout_destinations) {
    popular.resize(config.holdout_destinations);
  }
  dataset.holdout = std::move(popular);
  std::unordered_set<opinion::DestinationId> holdout_set(
      dataset.holdout.begin(), dataset.holdout.end());

  // --- Profile derivation (Section 8.1) ------------------------------------
  // Property ids are interned once up front so per-user work is pure
  // aggregation.
  section.emplace("datagen.profiles");
  ProfileRepository& repo = dataset.repository;
  PropertyTable& properties = repo.properties();
  const std::size_t num_categories = dataset.cuisine.size();
  std::vector<PropertyId> avg_rating_property(num_categories);
  std::vector<PropertyId> visit_freq_property(num_categories);
  std::vector<PropertyId> enthusiasm_property(num_categories);
  for (taxonomy::CategoryId c = 0; c < num_categories; ++c) {
    const std::string& name = dataset.cuisine.Name(c);
    avg_rating_property[c] = properties.Intern("avgRating " + name);
    visit_freq_property[c] = properties.Intern("visitFreq " + name);
    if (config.derive_enthusiasm) {
      enthusiasm_property[c] = properties.Intern("enthusiasm " + name);
    }
  }
  std::vector<PropertyId> lives_in_property(dataset.cities.size());
  for (std::size_t c = 0; c < dataset.cities.size(); ++c) {
    lives_in_property[c] =
        properties.Intern("livesIn " + dataset.cities[c],
                          PropertyKind::kBoolean);
  }
  std::vector<PropertyId> age_group_property(dataset.age_groups.size());
  for (std::size_t a = 0; a < dataset.age_groups.size(); ++a) {
    age_group_property[a] =
        properties.Intern("ageGroup " + dataset.age_groups[a],
                          PropertyKind::kBoolean);
  }

  // Per-restaurant deduplicated category closure (leaves + ancestors), so
  // a review touches each category at most once and the frequency-style
  // scores stay within [0, 1].
  std::vector<std::vector<taxonomy::CategoryId>> restaurant_categories(
      restaurants.size());
  util::ParallelFor(
      "datagen.closures", restaurants.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r) {
          std::vector<taxonomy::CategoryId>& categories =
              restaurant_categories[r];
          for (std::uint32_t leaf : restaurants[r].leaf_indices) {
            categories.insert(categories.end(), closure[leaf].begin(),
                              closure[leaf].end());
          }
          std::sort(categories.begin(), categories.end());
          categories.erase(
              std::unique(categories.begin(), categories.end()),
              categories.end());
        }
      },
      256);

  // Users are registered serially (AddUser mutates shared repository
  // storage), then the per-user aggregation — the expensive part — runs in
  // parallel: each chunk touches only its own users' profiles, and
  // ReplaceEntries normalizes entry order (stable sort by property id over
  // unique properties), so the hash-map iteration order inside a chunk
  // cannot leak into the result. Byte-identical at any --threads.
  std::vector<UserId> user_ids(users.size());
  for (std::uint32_t u = 0; u < users.size(); ++u) {
    Result<UserId> added = repo.AddUser(util::StringPrintf("user-%05u", u));
    if (!added.ok()) return added.status();
    user_ids[u] = added.value();
  }
  util::ParallelFor(
      "datagen.profiles", users.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        struct CategoryAggregate {
          std::uint32_t count = 0;
          double rating_sum = 0.0;
        };
        std::unordered_map<taxonomy::CategoryId, CategoryAggregate>
            aggregates;
        for (std::size_t u = begin; u < end; ++u) {
          aggregates.clear();
          std::uint32_t total_reviews = 0;
          double total_rating = 0.0;
          for (const ReviewStub& stub : stubs[u]) {
            if (holdout_set.contains(stub.destination)) continue;
            ++total_reviews;
            total_rating += static_cast<double>(stub.rating);
            for (taxonomy::CategoryId category :
                 restaurant_categories[stub.destination]) {
              CategoryAggregate& aggregate = aggregates[category];
              ++aggregate.count;
              aggregate.rating_sum += static_cast<double>(stub.rating);
            }
          }

          std::vector<PropertyScore> entries;
          entries.reserve(3 * aggregates.size() + 2);
          if (total_reviews > 0) {
            const double overall_avg =
                total_rating / static_cast<double>(total_reviews);
            for (const auto& [category, aggregate] : aggregates) {
              const double category_avg =
                  aggregate.rating_sum / static_cast<double>(aggregate.count);
              // Average Rating, normalized by the user's overall average:
              // the ratio concentrates around 1, so center it at 0.5 and
              // clamp — ratio 0.5 -> score 0, ratio 1 -> 0.5, ratio 1.5+
              // -> 1 — keeping the bucket structure informative.
              entries.push_back(PropertyScore{
                  avg_rating_property[category],
                  util::Clamp(category_avg / overall_avg - 0.5, 0.0, 1.0)});
              // Visit Frequency: fraction of the user's visits in the
              // category.
              entries.push_back(PropertyScore{
                  visit_freq_property[category],
                  static_cast<double>(aggregate.count) /
                      static_cast<double>(total_reviews)});
              // Enthusiasm Level: fraction of rating points given to the
              // category.
              if (config.derive_enthusiasm) {
                entries.push_back(PropertyScore{
                    enthusiasm_property[category],
                    aggregate.rating_sum / total_rating});
              }
            }
          }
          entries.push_back(
              PropertyScore{lives_in_property[users[u].city], 1.0});
          entries.push_back(
              PropertyScore{age_group_property[users[u].age_group], 1.0});
          repo.mutable_user(user_ids[u]).ReplaceEntries(std::move(entries));
        }
      },
      128);
  section.reset();

  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.counter("datagen.datasets").Add();
    registry.counter("datagen.users").Add(config.num_users);
    registry.counter("datagen.restaurants").Add(config.num_restaurants);
    registry.counter("datagen.reviews").Add(dataset.opinions.review_count());
  }
  return dataset;
}

}  // namespace podium::datagen
