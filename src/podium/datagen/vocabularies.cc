#include "podium/datagen/vocabularies.h"

#include <algorithm>
#include <iterator>

#include "podium/util/string_util.h"

namespace podium::datagen {

namespace {

struct Family {
  const char* name;
  std::vector<const char*> seeds;
};

const std::vector<Family>& Families() {
  // Leaked vocabularies: immutable, process-lifetime, and safe during
  // static destruction.  podium-lint: allow(raw-new)
  static const auto* families = new std::vector<Family>{
      {"Latin",
       {"Mexican", "Brazilian", "Peruvian", "Argentinian", "Colombian",
        "Cuban"}},
      {"Asian",
       {"Japanese", "Chinese", "Thai", "Vietnamese", "Korean", "Indian",
        "Malaysian", "Filipino"}},
      {"European",
       {"Italian", "French", "Spanish", "Greek", "German", "Portuguese",
        "Polish"}},
      {"Middle Eastern",
       {"Lebanese", "Turkish", "Israeli", "Persian", "Moroccan"}},
      {"American",
       {"BBQ", "Burgers", "Southern", "Tex-Mex", "Diner", "Steakhouse"}},
      {"Casual",
       {"Cafe", "Bakery", "Street Food", "CheapEats", "Brunch", "Pizza",
        "Dessert"}},
      {"Specialty",
       {"Seafood", "Vegan", "Vegetarian", "Fine Dining", "Sushi", "Noodles",
        "Tapas"}},
  };
  return *families;
}

const std::vector<const char*>& BaseCities() {
  // podium-lint: allow(raw-new) -- leaked vocabulary, see Families().
  static const auto* cities = new std::vector<const char*>{
      "Tokyo",     "NYC",       "Bali",      "Paris",    "London",
      "Berlin",    "Rome",      "Madrid",    "Lisbon",   "Amsterdam",
      "Vienna",    "Prague",    "Budapest",  "Athens",   "Istanbul",
      "Dubai",     "Mumbai",    "Bangkok",   "Singapore", "Seoul",
      "Shanghai",  "Sydney",    "Melbourne", "Auckland", "Toronto",
      "Vancouver", "Chicago",   "Boston",    "Seattle",  "Austin",
      "Denver",    "Miami",     "Mexico City", "Lima",   "Bogota",
      "Sao Paulo", "Buenos Aires", "Cape Town", "Cairo", "Tel Aviv"};
  return *cities;
}

const std::vector<const char*>& BaseTopics() {
  // podium-lint: allow(raw-new) -- leaked vocabulary, see Families().
  static const auto* topics = new std::vector<const char*>{
      "service",      "food quality", "price",        "ambience",
      "wait time",    "portions",     "cleanliness",  "location",
      "staff",        "menu variety", "drinks",       "dessert",
      "parking",      "noise",        "seating",      "breakfast",
      "delivery",     "value",        "freshness",    "authenticity",
      "wine list",    "kid friendly", "veggie options", "view"};
  return *topics;
}

}  // namespace

CuisineTaxonomy BuildCuisineTaxonomy(std::size_t leaf_count) {
  CuisineTaxonomy result;
  taxonomy::Taxonomy& tax = result.taxonomy;
  const taxonomy::CategoryId root = tax.AddCategory("Food");

  // Seed cuisines under their families. Seeds are the leaves until more
  // are requested.
  std::vector<taxonomy::CategoryId> seeds;
  for (const Family& family : Families()) {
    const taxonomy::CategoryId family_id = tax.AddCategory(family.name);
    (void)tax.AddEdge(family_id, root);
    for (const char* seed_name : family.seeds) {
      const taxonomy::CategoryId seed = tax.AddCategory(seed_name);
      (void)tax.AddEdge(seed, family_id);
      seeds.push_back(seed);
    }
  }

  if (leaf_count <= seeds.size()) {
    result.leaves.assign(seeds.begin(),
                         seeds.begin() + static_cast<long>(
                                             std::max<std::size_t>(
                                                 leaf_count, 1)));
    return result;
  }

  // Expand: synthesized regional variants become the leaves; their seed
  // cuisines turn into internal generalization targets (the Mexican ->
  // Latin chain of Example 3.2 gains a "Oaxacan Mexican" level).
  static const char* kVariantNames[] = {"Traditional", "Modern", "Fusion",
                                        "Regional",    "Coastal", "Home-style",
                                        "Gourmet",     "Rustic"};
  std::size_t produced = 0;
  std::size_t wave = 0;
  while (produced < leaf_count) {
    for (std::size_t s = 0; s < seeds.size() && produced < leaf_count; ++s) {
      std::string name;
      if (wave < std::size(kVariantNames)) {
        name = std::string(kVariantNames[wave]) + " " +
               tax.Name(seeds[s]);
      } else {
        name = util::StringPrintf("%s Variant %zu", tax.Name(seeds[s]).c_str(),
                                  wave);
      }
      const taxonomy::CategoryId leaf = tax.AddCategory(name);
      (void)tax.AddEdge(leaf, seeds[s]);
      result.leaves.push_back(leaf);
      ++produced;
    }
    ++wave;
  }
  return result;
}

std::vector<std::string> CityNames(std::size_t count) {
  std::vector<std::string> cities;
  cities.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i < BaseCities().size()) {
      cities.emplace_back(BaseCities()[i]);
    } else {
      cities.push_back(util::StringPrintf("Town %02zu",
                                          i - BaseCities().size() + 1));
    }
  }
  return cities;
}

std::vector<std::string> AgeGroupLabels(std::size_t count) {
  static const char* kLabels[] = {"18-24", "25-34", "35-49",
                                  "50-64", "65-74", "75+"};
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < count && i < std::size(kLabels); ++i) {
    labels.emplace_back(kLabels[i]);
  }
  return labels;
}

std::vector<std::string> TopicNames(std::size_t count) {
  std::vector<std::string> topics;
  topics.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i < BaseTopics().size()) {
      topics.emplace_back(BaseTopics()[i]);
    } else {
      topics.push_back(util::StringPrintf("facet %02zu",
                                          i - BaseTopics().size() + 1));
    }
  }
  return topics;
}

}  // namespace podium::datagen
