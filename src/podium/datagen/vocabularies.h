#ifndef PODIUM_DATAGEN_VOCABULARIES_H_
#define PODIUM_DATAGEN_VOCABULARIES_H_

#include <string>
#include <vector>

#include "podium/taxonomy/taxonomy.h"

namespace podium::datagen {

/// Builds a cuisine taxonomy with `leaf_count` leaves: a fixed set of
/// hand-named families and seed cuisines (Latin -> Mexican, ... as in the
/// paper's examples), expanded with synthesized regional variants when
/// more leaves are requested. Returns the taxonomy and the leaf category
/// ids restaurants can be tagged with.
struct CuisineTaxonomy {
  taxonomy::Taxonomy taxonomy;
  std::vector<taxonomy::CategoryId> leaves;
};
CuisineTaxonomy BuildCuisineTaxonomy(std::size_t leaf_count);

/// City names: a fixed list of real-world city names, extended with
/// synthesized names when more are requested.
std::vector<std::string> CityNames(std::size_t count);

/// Age-range labels ("18-24", "25-34", ...), up to `count` groups.
std::vector<std::string> AgeGroupLabels(std::size_t count);

/// Review topic vocabulary ("service", "price", ...), extended with
/// synthesized facet names when more are requested.
std::vector<std::string> TopicNames(std::size_t count);

}  // namespace podium::datagen

#endif  // PODIUM_DATAGEN_VOCABULARIES_H_
