#ifndef PODIUM_DATAGEN_CONFIG_H_
#define PODIUM_DATAGEN_CONFIG_H_

#include <cstdint>
#include <cstddef>

namespace podium::datagen {

/// Knobs of the synthetic restaurant-review data generator. The two
/// presets mirror the shape of the paper's datasets (Section 8.1); see
/// DESIGN.md for the substitution rationale. All sizes scale linearly, so
/// benches can dial them down for quick runs.
struct DatasetConfig {
  std::size_t num_users = 1000;
  std::size_t num_restaurants = 5000;

  /// Leaf categories of the cuisine taxonomy (restaurants are tagged with
  /// leaves; profile properties also cover the internal generalizations).
  std::size_t leaf_categories = 120;
  std::size_t num_cities = 40;
  std::size_t num_age_groups = 6;

  /// Latent user archetypes; fewer personas -> more correlated users.
  std::size_t num_personas = 16;
  std::size_t num_topics = 24;

  /// Skew exponents of the Zipf draws (0 = uniform).
  double persona_zipf = 0.7;
  double city_zipf = 0.9;
  double category_zipf = 1.25;
  double restaurant_popularity_zipf = 1.0;

  /// Per-user review counts: min + Zipf(activity range, activity_zipf).
  std::size_t min_reviews_per_user = 8;
  std::size_t max_reviews_per_user = 150;
  double activity_zipf = 1.1;

  /// Yelp-style usefulness votes on reviews.
  bool with_usefulness = false;

  /// Whether to derive the third aggregated property family ("Enthusiasm
  /// Level"); the Yelp preset turns it off ("simpler semantics, fewer
  /// properties").
  bool derive_enthusiasm = true;

  /// Opinion-procurement hold-out: this many of the most-reviewed
  /// destinations (having at least min_holdout_reviews reviews) are
  /// excluded from profile derivation and used as ground truth.
  std::size_t holdout_destinations = 50;
  std::size_t min_holdout_reviews = 25;

  std::uint64_t seed = 7;

  /// ~4475 users / 50K restaurants / deep category taxonomy / richer
  /// per-user properties; matches the TripAdvisor sample of Section 8.1.
  static DatasetConfig TripAdvisorLike();

  /// More users, higher review volume, simpler semantics (fewer
  /// properties, no enthusiasm), usefulness votes available. The paper
  /// uses the 60K most-active Yelp users; the preset defaults to 20K so a
  /// laptop run stays minutes-scale — pass a larger num_users to match the
  /// paper exactly.
  static DatasetConfig YelpLike();
};

}  // namespace podium::datagen

#endif  // PODIUM_DATAGEN_CONFIG_H_
