#ifndef PODIUM_BUCKETING_BUCKET_H_
#define PODIUM_BUCKETING_BUCKET_H_

#include <string>
#include <vector>

namespace podium::bucketing {

/// One score range b ⊆ [0, 1] of a property's bucketing β(p) (Def. 3.4).
/// Buckets are half-open [lo, hi) except the last bucket of a partition,
/// which is closed [lo, hi] so that a score of exactly 1 is covered.
struct Bucket {
  double lo = 0.0;
  double hi = 1.0;
  bool hi_closed = false;  // true only for the last bucket of a partition
  std::string label;       // human-readable, e.g. "high"

  /// Whether `score` falls inside this bucket.
  bool Contains(double score) const {
    if (score < lo) return false;
    return hi_closed ? score <= hi : score < hi;
  }

  friend bool operator==(const Bucket& a, const Bucket& b) {
    return a.lo == b.lo && a.hi == b.hi && a.hi_closed == b.hi_closed;
  }
};

/// Builds a partition of [0, 1] from interior breakpoints (ascending,
/// strictly inside (0, 1)), attaching default labels.
std::vector<Bucket> PartitionFromBreakpoints(
    const std::vector<double>& breakpoints);

/// Default labels by bucket count: {"false","true"} is NOT produced here
/// (boolean properties use FixedBooleanBuckets); 2 -> low/high,
/// 3 -> low/medium/high, 5 -> very low..very high, else "q1".."qk".
std::vector<std::string> DefaultBucketLabels(std::size_t count);

/// The bucketing used for boolean properties: [0, 0] "false", (0, 1] "true".
std::vector<Bucket> FixedBooleanBuckets();

/// Index of the bucket containing `score`, or -1 if none (cannot happen for
/// partitions produced by PartitionFromBreakpoints when score is in [0,1]).
int FindBucket(const std::vector<Bucket>& buckets, double score);

}  // namespace podium::bucketing

#endif  // PODIUM_BUCKETING_BUCKET_H_
