#include <algorithm>
#include <cmath>

#include "podium/bucketing/bucketizer.h"
#include "podium/bucketing/internal.h"
#include "podium/util/math_util.h"

namespace podium::bucketing {

Result<std::vector<Bucket>> KernelDensityBucketizer::Split(
    std::vector<double> values, int max_buckets) const {
  PODIUM_RETURN_IF_ERROR(internal::ValidateSplitInput(values, max_buckets));
  if (internal::Degenerate(values) || max_buckets == 1) {
    return internal::BuildPartition({});
  }

  // Silverman's rule-of-thumb bandwidth; floored so that very concentrated
  // data still produces a smooth curve on the grid.
  const double n = static_cast<double>(values.size());
  const double sigma = util::StdDev(values);
  double bandwidth = 1.06 * sigma * std::pow(n, -0.2);
  bandwidth = std::max(bandwidth, 1.5 / static_cast<double>(grid_size_));

  // Evaluate the KDE on a uniform grid over [0, 1]. To keep this O(grid +
  // n·window) rather than O(grid·n), bin the data first and convolve with
  // a truncated Gaussian window (4 bandwidths).
  const std::size_t grid = static_cast<std::size_t>(grid_size_);
  std::vector<double> histogram(grid, 0.0);
  for (double v : values) {
    auto bin = static_cast<std::size_t>(v * static_cast<double>(grid - 1));
    histogram[std::min(bin, grid - 1)] += 1.0;
  }
  const double cell = 1.0 / static_cast<double>(grid - 1);
  const int window = std::max(
      1, static_cast<int>(std::ceil(4.0 * bandwidth / cell)));
  std::vector<double> kernel(static_cast<std::size_t>(window) + 1);
  for (int d = 0; d <= window; ++d) {
    const double x = static_cast<double>(d) * cell / bandwidth;
    kernel[static_cast<std::size_t>(d)] = std::exp(-0.5 * x * x);
  }
  std::vector<double> density(grid, 0.0);
  for (std::size_t g = 0; g < grid; ++g) {
    if (histogram[g] == 0.0) continue;
    const int lo = std::max(0, static_cast<int>(g) - window);
    const int hi = std::min(static_cast<int>(grid) - 1,
                            static_cast<int>(g) + window);
    for (int t = lo; t <= hi; ++t) {
      const int d = std::abs(t - static_cast<int>(g));
      density[static_cast<std::size_t>(t)] +=
          histogram[g] * kernel[static_cast<std::size_t>(d)];
    }
  }

  // Interior local minima of the density are candidate breakpoints. A
  // minimum's depth is how far it sits below the lower of its two
  // neighbouring peaks; deeper valleys are stronger split points.
  struct Valley {
    double position;
    double depth;
  };
  std::vector<Valley> valleys;
  std::size_t last_peak = 0;
  double last_peak_value = density[0];
  std::size_t pending_min = 0;
  bool have_pending_min = false;
  double pending_min_value = 0.0;
  for (std::size_t g = 1; g < grid; ++g) {
    if (density[g] > density[g - 1]) {
      // Rising edge: close any pending valley against this upcoming peak.
      if (have_pending_min) {
        // Find the peak value ahead (end of the rise).
        std::size_t peak = g;
        while (peak + 1 < grid && density[peak + 1] >= density[peak]) ++peak;
        const double lower_peak = std::min(last_peak_value, density[peak]);
        if (lower_peak > pending_min_value) {
          valleys.push_back(
              Valley{static_cast<double>(pending_min) * cell,
                     lower_peak - pending_min_value});
        }
        last_peak = peak;
        last_peak_value = density[peak];
        have_pending_min = false;
      } else if (density[g] > last_peak_value) {
        last_peak = g;
        last_peak_value = density[g];
      }
    } else if (density[g] < density[g - 1]) {
      if (!have_pending_min || density[g] < pending_min_value) {
        pending_min = g;
        pending_min_value = density[g];
        have_pending_min = true;
      }
    }
  }
  (void)last_peak;

  // Keep the deepest max_buckets - 1 valleys.
  std::sort(valleys.begin(), valleys.end(),
            [](const Valley& a, const Valley& b) { return a.depth > b.depth; });
  if (valleys.size() > static_cast<std::size_t>(max_buckets - 1)) {
    valleys.resize(static_cast<std::size_t>(max_buckets - 1));
  }
  std::vector<double> breakpoints;
  breakpoints.reserve(valleys.size());
  for (const Valley& v : valleys) breakpoints.push_back(v.position);
  return internal::BuildPartition(std::move(breakpoints));
}

}  // namespace podium::bucketing
