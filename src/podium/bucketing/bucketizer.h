#ifndef PODIUM_BUCKETING_BUCKETIZER_H_
#define PODIUM_BUCKETING_BUCKETIZER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "podium/bucketing/bucket.h"
#include "podium/util/result.h"

namespace podium::bucketing {

/// Splits the observed scores of one property into at most `max_buckets`
/// non-overlapping intervals covering [0, 1] (the β(p) of Def. 3.4).
///
/// Section 3.2 lists several 1-d interval-splitting methods, all more
/// effective than general clustering because the data is ordered; each is
/// provided as an implementation of this interface.
class Bucketizer {
 public:
  virtual ~Bucketizer() = default;

  virtual std::string Name() const = 0;

  /// `values` are the observed scores of one property (each in [0, 1];
  /// order irrelevant, duplicates meaningful). Returns a partition of
  /// [0, 1] with 1..max_buckets buckets. For the data-driven methods,
  /// degenerate inputs (empty, or all values identical) yield a single
  /// bucket; equal-width splits unconditionally.
  virtual Result<std::vector<Bucket>> Split(std::vector<double> values,
                                            int max_buckets) const = 0;
};

/// Fixed-width partition of [0, 1] into `max_buckets` equal intervals,
/// independent of the data.
class EqualWidthBucketizer : public Bucketizer {
 public:
  std::string Name() const override { return "equal-width"; }
  Result<std::vector<Bucket>> Split(std::vector<double> values,
                                    int max_buckets) const override;
};

/// Equal-frequency partition: breakpoints at the i/k quantiles of the data.
/// Duplicate quantiles collapse, so fewer than max_buckets buckets can
/// result on skewed data.
class QuantileBucketizer : public Bucketizer {
 public:
  std::string Name() const override { return "quantile"; }
  Result<std::vector<Bucket>> Split(std::vector<double> values,
                                    int max_buckets) const override;
};

/// Lloyd's k-means on the 1-d data (k-means++ seeding, fixed iteration
/// cap); breakpoints placed midway between adjacent cluster means.
class KMeans1DBucketizer : public Bucketizer {
 public:
  explicit KMeans1DBucketizer(int max_iterations = 32,
                              std::uint64_t seed = 17)
      : max_iterations_(max_iterations), seed_(seed) {}

  std::string Name() const override { return "kmeans-1d"; }
  Result<std::vector<Bucket>> Split(std::vector<double> values,
                                    int max_buckets) const override;

 private:
  int max_iterations_;
  std::uint64_t seed_;
};

/// Exact Fisher–Jenks natural-breaks optimization: the partition of the
/// sorted data into k classes minimizing within-class sum of squared
/// deviations, via O(k·m²) dynamic programming over (optionally compressed)
/// weighted value points.
class JenksBucketizer : public Bucketizer {
 public:
  /// Inputs with more distinct values than `max_points` are compressed to
  /// that many weighted quantile representatives before the DP.
  explicit JenksBucketizer(std::size_t max_points = 160)
      : max_points_(max_points) {}

  std::string Name() const override { return "jenks"; }
  Result<std::vector<Bucket>> Split(std::vector<double> values,
                                    int max_buckets) const override;

 private:
  std::size_t max_points_;
};

/// Kernel-density valley splitting: Gaussian KDE on a grid over [0, 1]
/// (Silverman bandwidth), breakpoints at the deepest density minima. The
/// data decides how many buckets (up to max_buckets) are warranted.
class KernelDensityBucketizer : public Bucketizer {
 public:
  explicit KernelDensityBucketizer(int grid_size = 256)
      : grid_size_(grid_size) {}

  std::string Name() const override { return "kde"; }
  Result<std::vector<Bucket>> Split(std::vector<double> values,
                                    int max_buckets) const override;

 private:
  int grid_size_;
};

/// Known methods: "equal-width", "quantile", "kmeans-1d", "jenks", "kde".
Result<std::unique_ptr<Bucketizer>> MakeBucketizer(std::string_view method);

}  // namespace podium::bucketing

#endif  // PODIUM_BUCKETING_BUCKETIZER_H_
