#include "podium/bucketing/bucketizer.h"

#include <algorithm>
#include <cmath>

#include "podium/bucketing/internal.h"
#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/math_util.h"

namespace podium::bucketing {

namespace {

/// Per-split accounting shared by every bucketizer: one counter increment
/// per Split() call plus a histogram of input sizes, so group derivation
/// cost can be traced back to the score distributions that drove it.
void RecordSplit(std::string_view method, std::size_t num_values) {
  if (!telemetry::Enabled()) return;
  auto& registry = telemetry::MetricsRegistry::Global();
  registry.counter(std::string("bucketizer.splits.") + std::string(method))
      .Add();
  registry
      .histogram("bucketizer.split_input_values",
                 {10.0, 100.0, 1000.0, 10000.0, 100000.0, 1000000.0})
      .Observe(static_cast<double>(num_values));
}

}  // namespace

namespace internal {

Status ValidateSplitInput(const std::vector<double>& values, int max_buckets) {
  if (max_buckets < 1) {
    return Status::InvalidArgument("max_buckets must be >= 1");
  }
  for (double v : values) {
    if (!(v >= 0.0 && v <= 1.0)) {  // also rejects NaN
      return Status::InvalidArgument("score outside [0, 1] in bucketizer");
    }
  }
  return Status::Ok();
}

/// Deduplicates breakpoints, drops ones outside (0, 1), and builds the
/// partition. An empty breakpoint list yields the single bucket [0, 1].
std::vector<Bucket> BuildPartition(std::vector<double> breakpoints) {
  std::sort(breakpoints.begin(), breakpoints.end());
  std::vector<double> clean;
  for (double b : breakpoints) {
    if (b <= 0.0 || b >= 1.0) continue;
    if (!clean.empty() && b - clean.back() < 1e-12) continue;
    clean.push_back(b);
  }
  return PartitionFromBreakpoints(clean);
}

/// True when all values are within 1e-12 of each other (or there are < 2).
bool Degenerate(const std::vector<double>& values) {
  if (values.size() < 2) return true;
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return *hi - *lo < 1e-12;
}

void CompressWeighted(const std::vector<double>& sorted_values,
                      std::size_t max_points, std::vector<double>& points,
                      std::vector<double>& weights) {
  points.clear();
  weights.clear();
  // First collapse exact duplicates.
  for (double v : sorted_values) {
    if (!points.empty() && v - points.back() < 1e-12) {
      weights.back() += 1.0;
    } else {
      points.push_back(v);
      weights.push_back(1.0);
    }
  }
  if (points.size() <= max_points) return;
  // Merge adjacent distinct values into max_points equal-width micro-bins
  // over the observed range, keeping weighted means as representatives.
  const double lo = points.front();
  const double hi = points.back();
  const double width = (hi - lo) / static_cast<double>(max_points);
  std::vector<double> merged_points;
  std::vector<double> merged_weights;
  std::size_t i = 0;
  for (std::size_t bin = 0; bin < max_points && i < points.size(); ++bin) {
    const double bound =
        bin + 1 == max_points ? hi : lo + width * static_cast<double>(bin + 1);
    double weight_sum = 0.0;
    double value_sum = 0.0;
    while (i < points.size() &&
           (points[i] <= bound || bin + 1 == max_points)) {
      weight_sum += weights[i];
      value_sum += points[i] * weights[i];
      ++i;
    }
    if (weight_sum > 0.0) {
      merged_points.push_back(value_sum / weight_sum);
      merged_weights.push_back(weight_sum);
    }
  }
  points = std::move(merged_points);
  weights = std::move(merged_weights);
}

}  // namespace internal

Result<std::vector<Bucket>> EqualWidthBucketizer::Split(
    std::vector<double> values, int max_buckets) const {
  PODIUM_RETURN_IF_ERROR(internal::ValidateSplitInput(values, max_buckets));
  RecordSplit("equal-width", values.size());
  telemetry::PhaseSpan span("bucketize.equal-width");
  std::vector<double> breakpoints;
  for (int i = 1; i < max_buckets; ++i) {
    breakpoints.push_back(static_cast<double>(i) /
                          static_cast<double>(max_buckets));
  }
  return internal::BuildPartition(std::move(breakpoints));
}

Result<std::vector<Bucket>> QuantileBucketizer::Split(
    std::vector<double> values, int max_buckets) const {
  PODIUM_RETURN_IF_ERROR(internal::ValidateSplitInput(values, max_buckets));
  RecordSplit("quantile", values.size());
  telemetry::PhaseSpan span("bucketize.quantile");
  if (internal::Degenerate(values)) {
    return internal::BuildPartition({});
  }
  std::sort(values.begin(), values.end());
  std::vector<double> breakpoints;
  for (int i = 1; i < max_buckets; ++i) {
    breakpoints.push_back(util::QuantileSorted(
        values, static_cast<double>(i) / static_cast<double>(max_buckets)));
  }
  return internal::BuildPartition(std::move(breakpoints));
}

Result<std::unique_ptr<Bucketizer>> MakeBucketizer(std::string_view method) {
  std::unique_ptr<Bucketizer> made;
  if (method == "equal-width") {
    made = std::make_unique<EqualWidthBucketizer>();
  } else if (method == "quantile") {
    made = std::make_unique<QuantileBucketizer>();
  } else if (method == "kmeans-1d") {
    made = std::make_unique<KMeans1DBucketizer>();
  } else if (method == "jenks") {
    made = std::make_unique<JenksBucketizer>();
  } else if (method == "kde") {
    made = std::make_unique<KernelDensityBucketizer>();
  } else {
    return Status::InvalidArgument("unknown bucketizer method: " +
                                   std::string(method));
  }
  return made;
}

}  // namespace podium::bucketing
