#include "podium/bucketing/bucket.h"

#include <cassert>

#include "podium/util/string_util.h"

namespace podium::bucketing {

std::vector<std::string> DefaultBucketLabels(std::size_t count) {
  switch (count) {
    case 1:
      return {"all"};
    case 2:
      return {"low", "high"};
    case 3:
      return {"low", "medium", "high"};
    case 4:
      return {"very low", "low", "high", "very high"};
    case 5:
      return {"very low", "low", "medium", "high", "very high"};
    default: {
      std::vector<std::string> labels;
      labels.reserve(count);
      for (std::size_t i = 1; i <= count; ++i) {
        labels.push_back(util::StringPrintf("q%zu", i));
      }
      return labels;
    }
  }
}

std::vector<Bucket> PartitionFromBreakpoints(
    const std::vector<double>& breakpoints) {
  std::vector<Bucket> buckets;
  const std::vector<std::string> labels =
      DefaultBucketLabels(breakpoints.size() + 1);
  double lo = 0.0;
  for (std::size_t i = 0; i < breakpoints.size(); ++i) {
    assert(breakpoints[i] > lo && breakpoints[i] < 1.0);
    buckets.push_back(Bucket{lo, breakpoints[i], false, labels[i]});
    lo = breakpoints[i];
  }
  buckets.push_back(Bucket{lo, 1.0, true, labels.back()});
  return buckets;
}

std::vector<Bucket> FixedBooleanBuckets() {
  // Boolean scores are exactly 0 or 1; the midpoint split keeps the
  // half-open partition invariant shared with score properties.
  return {Bucket{0.0, 0.5, false, "false"}, Bucket{0.5, 1.0, true, "true"}};
}

int FindBucket(const std::vector<Bucket>& buckets, double score) {
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].Contains(score)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace podium::bucketing
