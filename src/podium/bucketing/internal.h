#ifndef PODIUM_BUCKETING_INTERNAL_H_
#define PODIUM_BUCKETING_INTERNAL_H_

// Implementation details shared by the bucketizer implementations.
// Not part of the public API.

#include <vector>

#include "podium/bucketing/bucket.h"
#include "podium/util/status.h"

namespace podium::bucketing::internal {

/// Rejects max_buckets < 1 and scores outside [0, 1].
Status ValidateSplitInput(const std::vector<double>& values, int max_buckets);

/// Deduplicates breakpoints, drops ones outside (0, 1), and builds the
/// partition. An empty breakpoint list yields the single bucket [0, 1].
std::vector<Bucket> BuildPartition(std::vector<double> breakpoints);

/// True when all values are within 1e-12 of each other (or there are < 2).
bool Degenerate(const std::vector<double>& values);

/// Collapses `values` (sorted ascending) into at most `max_points` weighted
/// representatives: parallel arrays of point values and multiplicities.
void CompressWeighted(const std::vector<double>& sorted_values,
                      std::size_t max_points, std::vector<double>& points,
                      std::vector<double>& weights);

}  // namespace podium::bucketing::internal

#endif  // PODIUM_BUCKETING_INTERNAL_H_
