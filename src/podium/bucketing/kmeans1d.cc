#include <algorithm>
#include <cmath>
#include <limits>

#include "podium/bucketing/bucketizer.h"
#include "podium/bucketing/internal.h"
#include "podium/util/rng.h"

namespace podium::bucketing {

namespace {

/// k-means++ seeding on 1-d points.
std::vector<double> SeedCenters(const std::vector<double>& values, int k,
                                util::Rng& rng) {
  std::vector<double> centers;
  centers.push_back(values[rng.NextBounded(values.size())]);
  std::vector<double> dist2(values.size());
  while (static_cast<int>(centers.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double c : centers) {
        best = std::min(best, (values[i] - c) * (values[i] - c));
      }
      dist2[i] = best;
      total += best;
    }
    if (total <= 0.0) break;  // all points coincide with a center
    double r = rng.NextDouble() * total;
    std::size_t chosen = values.size() - 1;
    for (std::size_t i = 0; i < values.size(); ++i) {
      r -= dist2[i];
      if (r < 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(values[chosen]);
  }
  return centers;
}

}  // namespace

Result<std::vector<Bucket>> KMeans1DBucketizer::Split(
    std::vector<double> values, int max_buckets) const {
  PODIUM_RETURN_IF_ERROR(internal::ValidateSplitInput(values, max_buckets));
  if (internal::Degenerate(values) || max_buckets == 1) {
    return internal::BuildPartition({});
  }
  std::sort(values.begin(), values.end());

  util::Rng rng(seed_);
  std::vector<double> centers = SeedCenters(values, max_buckets, rng);
  std::sort(centers.begin(), centers.end());

  // Lloyd iterations. In 1-d with sorted values and sorted centers, each
  // cluster is a contiguous range whose boundary is the midpoint between
  // adjacent centers.
  std::vector<double> new_centers(centers.size());
  for (int iter = 0; iter < max_iterations_; ++iter) {
    std::size_t start = 0;
    bool changed = false;
    for (std::size_t c = 0; c < centers.size(); ++c) {
      const double boundary = c + 1 < centers.size()
                                  ? 0.5 * (centers[c] + centers[c + 1])
                                  : std::numeric_limits<double>::infinity();
      std::size_t end = start;
      double sum = 0.0;
      while (end < values.size() && values[end] <= boundary) {
        sum += values[end];
        ++end;
      }
      new_centers[c] =
          end > start ? sum / static_cast<double>(end - start) : centers[c];
      if (std::fabs(new_centers[c] - centers[c]) > 1e-12) changed = true;
      start = end;
    }
    centers = new_centers;
    std::sort(centers.begin(), centers.end());
    if (!changed) break;
  }

  // Collapse duplicate centers, then place breakpoints at midpoints.
  std::vector<double> distinct;
  for (double c : centers) {
    if (distinct.empty() || c - distinct.back() > 1e-9) distinct.push_back(c);
  }
  std::vector<double> breakpoints;
  for (std::size_t c = 0; c + 1 < distinct.size(); ++c) {
    breakpoints.push_back(0.5 * (distinct[c] + distinct[c + 1]));
  }
  return internal::BuildPartition(std::move(breakpoints));
}

}  // namespace podium::bucketing
