#include <algorithm>
#include <limits>

#include "podium/bucketing/bucketizer.h"
#include "podium/bucketing/internal.h"

namespace podium::bucketing {

Result<std::vector<Bucket>> JenksBucketizer::Split(std::vector<double> values,
                                                   int max_buckets) const {
  PODIUM_RETURN_IF_ERROR(internal::ValidateSplitInput(values, max_buckets));
  if (internal::Degenerate(values) || max_buckets == 1) {
    return internal::BuildPartition({});
  }
  std::sort(values.begin(), values.end());

  std::vector<double> points;
  std::vector<double> weights;
  internal::CompressWeighted(values, max_points_, points, weights);
  const std::size_t m = points.size();
  const auto k =
      static_cast<std::size_t>(std::min<std::size_t>(
          static_cast<std::size_t>(max_buckets), m));
  if (k <= 1) return internal::BuildPartition({});

  // Weighted prefix sums for O(1) within-class SSE queries:
  // sse(i..j) = sum(w v^2) - (sum(w v))^2 / sum(w).
  std::vector<double> prefix_w(m + 1, 0.0);
  std::vector<double> prefix_wv(m + 1, 0.0);
  std::vector<double> prefix_wv2(m + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    prefix_w[i + 1] = prefix_w[i] + weights[i];
    prefix_wv[i + 1] = prefix_wv[i] + weights[i] * points[i];
    prefix_wv2[i + 1] = prefix_wv2[i] + weights[i] * points[i] * points[i];
  }
  auto sse = [&](std::size_t i, std::size_t j) {  // classes points[i..j]
    const double w = prefix_w[j + 1] - prefix_w[i];
    const double wv = prefix_wv[j + 1] - prefix_wv[i];
    const double wv2 = prefix_wv2[j + 1] - prefix_wv2[i];
    return std::max(0.0, wv2 - wv * wv / w);
  };

  // cost[c][j]: minimal total SSE splitting points[0..j] into c+1 classes.
  // split[c][j]: first index of the last class in that optimum.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> cost(k, std::vector<double>(m, kInf));
  std::vector<std::vector<std::size_t>> split(
      k, std::vector<std::size_t>(m, 0));
  for (std::size_t j = 0; j < m; ++j) cost[0][j] = sse(0, j);
  for (std::size_t c = 1; c < k; ++c) {
    for (std::size_t j = c; j < m; ++j) {
      for (std::size_t s = c; s <= j; ++s) {
        const double candidate = cost[c - 1][s - 1] + sse(s, j);
        if (candidate < cost[c][j]) {
          cost[c][j] = candidate;
          split[c][j] = s;
        }
      }
    }
  }

  // Recover class boundaries; breakpoints at midpoints between the last
  // point of one class and the first point of the next.
  std::vector<double> breakpoints;
  std::size_t j = m - 1;
  for (std::size_t c = k - 1; c >= 1; --c) {
    const std::size_t s = split[c][j];
    breakpoints.push_back(0.5 * (points[s - 1] + points[s]));
    j = s - 1;
  }
  return internal::BuildPartition(std::move(breakpoints));
}

}  // namespace podium::bucketing
