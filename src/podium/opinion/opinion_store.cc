#include "podium/opinion/opinion_store.h"

#include <algorithm>
#include <unordered_map>

namespace podium::opinion {

DestinationId OpinionStore::AddDestination(Destination destination) {
  const auto id = static_cast<DestinationId>(destinations_.size());
  destinations_.push_back(std::move(destination));
  reviews_by_destination_.emplace_back();
  return id;
}

TopicId OpinionStore::InternTopic(std::string_view name) {
  for (TopicId t = 0; t < topic_names_.size(); ++t) {
    if (topic_names_[t] == name) return t;
  }
  topic_names_.emplace_back(name);
  return static_cast<TopicId>(topic_names_.size() - 1);
}

Status OpinionStore::AddReview(Review review) {
  if (review.destination >= destinations_.size()) {
    return Status::OutOfRange("review references unknown destination");
  }
  if (review.rating < 1 || review.rating > 5) {
    return Status::InvalidArgument("review rating must be in 1..5");
  }
  for (const TopicMention& mention : review.topics) {
    if (mention.topic >= topic_names_.size()) {
      return Status::OutOfRange("review references unknown topic");
    }
  }
  const DestinationId d = review.destination;
  reviews_by_destination_[d].push_back(std::move(review));
  ++review_count_;
  return Status::Ok();
}

std::vector<Review> OpinionStore::ProcuredReviews(
    DestinationId d, const std::vector<UserId>& selected) const {
  std::vector<Review> procured;
  for (const Review& review : reviews_by_destination_[d]) {
    if (std::find(selected.begin(), selected.end(), review.user) !=
        selected.end()) {
      procured.push_back(review);
    }
  }
  return procured;
}

std::vector<DestinationId> OpinionStore::PopularDestinations(
    std::size_t min_reviews) const {
  std::vector<DestinationId> popular;
  for (DestinationId d = 0; d < destinations_.size(); ++d) {
    if (reviews_by_destination_[d].size() >= min_reviews) {
      popular.push_back(d);
    }
  }
  std::stable_sort(popular.begin(), popular.end(),
                   [this](DestinationId a, DestinationId b) {
                     return reviews_by_destination_[a].size() >
                            reviews_by_destination_[b].size();
                   });
  return popular;
}

}  // namespace podium::opinion
