#ifndef PODIUM_OPINION_OPINION_STORE_H_
#define PODIUM_OPINION_OPINION_STORE_H_

#include <string>
#include <string_view>
#include <vector>

#include "podium/opinion/review.h"
#include "podium/util/result.h"

namespace podium::opinion {

/// Ground-truth opinions: destinations, the topic vocabulary, and all
/// reviews, indexed by destination for the opinion-diversity experiments.
class OpinionStore {
 public:
  OpinionStore() = default;

  OpinionStore(const OpinionStore&) = delete;
  OpinionStore& operator=(const OpinionStore&) = delete;
  OpinionStore(OpinionStore&&) = default;
  OpinionStore& operator=(OpinionStore&&) = default;

  DestinationId AddDestination(Destination destination);
  TopicId InternTopic(std::string_view name);

  /// Appends a review; ids must reference existing destinations/topics.
  Status AddReview(Review review);

  std::size_t destination_count() const { return destinations_.size(); }
  std::size_t review_count() const { return review_count_; }
  std::size_t topic_count() const { return topic_names_.size(); }

  const Destination& destination(DestinationId d) const {
    return destinations_[d];
  }
  const std::string& topic_name(TopicId t) const { return topic_names_[t]; }

  /// All reviews of one destination, in insertion order.
  const std::vector<Review>& reviews_of(DestinationId d) const {
    return reviews_by_destination_[d];
  }

  /// The subset of a destination's reviews written by `selected` users —
  /// the simulated procurement outcome.
  std::vector<Review> ProcuredReviews(DestinationId d,
                                      const std::vector<UserId>& selected)
      const;

  /// Destination ids with at least `min_reviews` reviews, ordered by
  /// decreasing review count (ties by id).
  std::vector<DestinationId> PopularDestinations(
      std::size_t min_reviews) const;

 private:
  std::vector<Destination> destinations_;
  std::vector<std::string> topic_names_;
  std::vector<std::vector<Review>> reviews_by_destination_;
  std::size_t review_count_ = 0;
};

}  // namespace podium::opinion

#endif  // PODIUM_OPINION_OPINION_STORE_H_
