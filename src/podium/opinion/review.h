#ifndef PODIUM_OPINION_REVIEW_H_
#define PODIUM_OPINION_REVIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "podium/profile/user_profile.h"

namespace podium::opinion {

/// Dense identifier of a reviewed destination (a restaurant in the paper's
/// datasets).
using DestinationId = std::uint32_t;
inline constexpr DestinationId kInvalidDestination = 0xFFFFFFFFu;

/// Review polarity towards one topic.
enum class Sentiment : std::uint8_t { kNegative = 0, kPositive = 1 };

/// A topic mentioned by a review, with the stance the review takes on it.
/// Topics are drawn from a global topic vocabulary (TopicId indexes it).
using TopicId = std::uint32_t;
struct TopicMention {
  TopicId topic = 0;
  Sentiment sentiment = Sentiment::kPositive;

  friend bool operator==(const TopicMention&, const TopicMention&) = default;
};

/// One ground-truth opinion: the ratings/topics a user expressed about a
/// destination. These simulate the opinions that procurement would collect
/// (Section 8: "we simulate opinion procurement using ground truth user
/// opinions").
struct Review {
  UserId user = kInvalidUser;
  DestinationId destination = kInvalidDestination;
  int rating = 0;                     // 1..5 stars
  std::vector<TopicMention> topics;   // facets the review touches
  int useful_votes = 0;               // Yelp-style usefulness feedback
};

/// Destination metadata.
struct Destination {
  std::string name;
  std::string city;
  std::vector<std::string> categories;  // leaf cuisine categories
};

}  // namespace podium::opinion

#endif  // PODIUM_OPINION_REVIEW_H_
