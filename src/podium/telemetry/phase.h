#ifndef PODIUM_TELEMETRY_PHASE_H_
#define PODIUM_TELEMETRY_PHASE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace podium::telemetry {

namespace internal {
struct PhaseNode;
}  // namespace internal

/// Snapshot of one node of the phase tree: total wall time and completion
/// count accumulated by every PhaseSpan with this name at this position.
struct PhaseStats {
  std::string name;
  double seconds = 0.0;
  std::uint64_t count = 0;
  std::vector<PhaseStats> children;
};

/// RAII wall-clock span. Spans nest per thread: a span opened while another
/// is active becomes (a) child of it in the process-wide phase tree, and
/// its time rolls up under the parent's. Each thread gets its own branch
/// under the shared root, so concurrent spans never contend on the hot
/// path — only node creation (first occurrence of a name at a position)
/// takes a lock. When telemetry is disabled construction is a single
/// relaxed atomic load and nothing is recorded.
class PhaseSpan {
 public:
  explicit PhaseSpan(std::string_view name);
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
  ~PhaseSpan();

  /// Seconds since construction; 0 when telemetry was disabled at
  /// construction time.
  double ElapsedSeconds() const;

 private:
  internal::PhaseNode* node_ = nullptr;  // null <=> disabled at construction
  std::chrono::steady_clock::time_point start_;
};

/// Copy of the process-wide phase tree. The root is the synthetic node
/// "process"; nodes that never completed a span are pruned.
PhaseStats PhaseTreeSnapshot();

/// Zeroes all accumulated times and counts. The tree structure (and any
/// active spans) survive; safe to call at any time.
void ResetPhaseTree();

/// Sum of `seconds` over every node named `name` anywhere in `tree`.
double SumPhaseSeconds(const PhaseStats& tree, std::string_view name);

/// First node named `name` in depth-first order, or nullptr.
const PhaseStats* FindPhase(const PhaseStats& tree, std::string_view name);

}  // namespace podium::telemetry

#endif  // PODIUM_TELEMETRY_PHASE_H_
