#include "podium/telemetry/export.h"

#include <utility>

#include "podium/json/writer.h"
#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/telemetry/trace.h"
#include "podium/util/string_util.h"

namespace podium::telemetry {

namespace {

json::Value PhaseToJson(const PhaseStats& node) {
  json::Object object;
  object.Set("name", json::Value(node.name));
  object.Set("seconds", json::Value(node.seconds));
  object.Set("count", json::Value(node.count));
  json::Array children;
  children.reserve(node.children.size());
  for (const PhaseStats& child : node.children) {
    children.push_back(PhaseToJson(child));
  }
  object.Set("children", json::Value(std::move(children)));
  return json::Value(std::move(object));
}

json::Value HistogramToJson(const HistogramSnapshot& histogram) {
  json::Object object;
  json::Array bounds;
  for (double bound : histogram.bounds) bounds.emplace_back(bound);
  object.Set("bounds", json::Value(std::move(bounds)));
  json::Array counts;
  for (std::uint64_t count : histogram.counts) {
    counts.emplace_back(static_cast<double>(count));
  }
  object.Set("counts", json::Value(std::move(counts)));
  object.Set("count", json::Value(static_cast<double>(histogram.count)));
  object.Set("sum", json::Value(histogram.sum));
  return json::Value(std::move(object));
}

json::Value TraceEventToJson(const GreedyRoundEvent& event) {
  json::Object object;
  object.Set("run", json::Value(static_cast<double>(event.run)));
  object.Set("round", json::Value(static_cast<double>(event.round)));
  object.Set("user", json::Value(static_cast<double>(event.user)));
  object.Set("gain", json::Value(event.gain));
  object.Set("gain_secondary", json::Value(event.gain_secondary));
  object.Set("heap_pops", json::Value(static_cast<double>(event.heap_pops)));
  object.Set("stale_reinserts",
             json::Value(static_cast<double>(event.stale_reinserts)));
  object.Set("retired_links",
             json::Value(static_cast<double>(event.retired_links)));
  object.Set("retired_groups",
             json::Value(static_cast<double>(event.retired_groups)));
  return json::Value(std::move(object));
}

void RenderPhase(const PhaseStats& node, int depth, double parent_seconds,
                 std::string& out) {
  out += util::StringPrintf("%*s%-*s %10.6fs  x%-6llu", depth * 2, "",
                            36 - depth * 2, node.name.c_str(), node.seconds,
                            static_cast<unsigned long long>(node.count));
  if (parent_seconds > 0.0) {
    out += util::StringPrintf("  %5.1f%%", 100.0 * node.seconds /
                                               parent_seconds);
  }
  out += "\n";
  for (const PhaseStats& child : node.children) {
    RenderPhase(child, depth + 1, node.seconds, out);
  }
}

}  // namespace

json::Value TelemetryToJson() {
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();

  json::Object root;
  json::Object schema;
  schema.Set("name", json::Value("podium.telemetry"));
  schema.Set("version", json::Value(kTelemetrySchemaVersion));
  root.Set("schema", json::Value(std::move(schema)));

  json::Object counters;
  for (const auto& [name, value] : metrics.counters) {
    counters.Set(name, json::Value(static_cast<double>(value)));
  }
  root.Set("counters", json::Value(std::move(counters)));

  json::Object gauges;
  for (const auto& [name, value] : metrics.gauges) {
    gauges.Set(name, json::Value(value));
  }
  root.Set("gauges", json::Value(std::move(gauges)));

  json::Object histograms;
  for (const auto& [name, histogram] : metrics.histograms) {
    histograms.Set(name, HistogramToJson(histogram));
  }
  root.Set("histograms", json::Value(std::move(histograms)));

  root.Set("phases", PhaseToJson(PhaseTreeSnapshot()));

  json::Array trace;
  for (const GreedyRoundEvent& event : GreedyTrace::Snapshot()) {
    trace.push_back(TraceEventToJson(event));
  }
  root.Set("greedy_trace", json::Value(std::move(trace)));
  return json::Value(std::move(root));
}

Status WriteTelemetryJson(const std::string& path) {
  json::WriteOptions options;
  options.indent = 2;
  return json::WriteFile(TelemetryToJson(), path, options);
}

std::string RenderTimingSummary() {
  std::string out = "phase tree (wall time, completions, % of parent):\n";
  const PhaseStats root = PhaseTreeSnapshot();
  for (const PhaseStats& child : root.children) {
    RenderPhase(child, 0, 0.0, out);
  }
  if (root.children.empty()) out += "  (no phases recorded)\n";

  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  bool any_counter = false;
  for (const auto& [name, value] : metrics.counters) {
    if (value == 0) continue;
    if (!any_counter) {
      out += "\ncounters:\n";
      any_counter = true;
    }
    out += util::StringPrintf("  %-36s %llu\n", name.c_str(),
                              static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : metrics.gauges) {
    out += util::StringPrintf("  %-36s %g  (gauge)\n", name.c_str(), value);
  }
  return out;
}

void ResetAllTelemetry() {
  MetricsRegistry::Global().Reset();
  ResetPhaseTree();
  GreedyTrace::Clear();
}

}  // namespace podium::telemetry
