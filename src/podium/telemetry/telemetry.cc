#include "podium/telemetry/telemetry.h"

#include <algorithm>

namespace podium::telemetry {

#if !defined(PODIUM_TELEMETRY_DISABLED)
namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}
#endif

namespace {

/// fetch_add for atomic<double> via CAS (the fetch_add overload for
/// floating point is C++20 but not universally lock-free; this always is
/// on platforms with a 64-bit CAS).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBounds();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    counts.push_back(bucket->load(std::memory_order_relaxed));
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> DefaultLatencyBounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: metric references handed out must stay valid
  // for the process lifetime, including static destructors.
  static MetricsRegistry* registry =
      new MetricsRegistry();  // podium-lint: allow(raw-new)
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.bounds = histogram->bounds();
    h.counts = histogram->BucketCounts();
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    snapshot.histograms.emplace_back(name, std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace podium::telemetry
