#include "podium/telemetry/phase.h"

#include <atomic>
#include <memory>

#include "podium/telemetry/telemetry.h"
#include "podium/util/mutex.h"
#include "podium/util/thread_annotations.h"

namespace podium::telemetry {

namespace internal {

/// Guards the tree structure (every PhaseNode::children vector); the
/// accumulators inside each node are atomics and stay lock-free.
util::Mutex g_tree_mutex{"telemetry.phase_tree"};

/// One position in the phase tree. Accumulation is atomic so concurrent
/// spans at the same position (same phase name on several threads) add up
/// losslessly; child creation is guarded by a global mutex (rare — once
/// per distinct name/position).
struct PhaseNode {
  std::string name;
  PhaseNode* parent = nullptr;
  std::atomic<std::uint64_t> nanos{0};
  std::atomic<std::uint64_t> count{0};
  std::vector<std::unique_ptr<PhaseNode>> children
      PODIUM_GUARDED_BY(g_tree_mutex);
};

namespace {

PhaseNode& Root() {
  // Intentionally leaked: spans may still be open during static
  // destruction and their nodes must outlive them.
  static PhaseNode* root = [] {
    auto* node = new PhaseNode();  // podium-lint: allow(raw-new)
    node->name = "process";
    return node;
  }();
  return *root;
}

/// The innermost active span's node on this thread; spans opened next
/// become its children.
thread_local PhaseNode* t_current = nullptr;

PhaseNode* ChildNamed(PhaseNode& parent, std::string_view name)
    PODIUM_EXCLUDES(g_tree_mutex) {
  util::MutexLock lock(g_tree_mutex);
  for (const auto& child : parent.children) {
    if (child->name == name) return child.get();
  }
  auto node = std::make_unique<PhaseNode>();  // freed only via the tree
  node->name = std::string(name);
  node->parent = &parent;
  parent.children.push_back(std::move(node));
  return parent.children.back().get();
}

void SnapshotInto(const PhaseNode& node, PhaseStats& out)
    PODIUM_REQUIRES(g_tree_mutex) {
  out.name = node.name;
  out.seconds =
      static_cast<double>(node.nanos.load(std::memory_order_relaxed)) * 1e-9;
  out.count = node.count.load(std::memory_order_relaxed);
  for (const auto& child : node.children) {
    PhaseStats stats;
    SnapshotInto(*child, stats);
    // Prune positions that never completed a span (created but reset, or
    // only holding still-active spans) unless a descendant has data.
    if (stats.count == 0 && stats.children.empty()) continue;
    out.children.push_back(std::move(stats));
  }
}

void ResetNode(PhaseNode& node) PODIUM_REQUIRES(g_tree_mutex) {
  node.nanos.store(0, std::memory_order_relaxed);
  node.count.store(0, std::memory_order_relaxed);
  for (const auto& child : node.children) ResetNode(*child);
}

}  // namespace
}  // namespace internal

PhaseSpan::PhaseSpan(std::string_view name) {
  if (!Enabled()) return;
  internal::PhaseNode* parent =
      internal::t_current != nullptr ? internal::t_current : &internal::Root();
  node_ = internal::ChildNamed(*parent, name);
  internal::t_current = node_;
  start_ = std::chrono::steady_clock::now();
}

PhaseSpan::~PhaseSpan() {
  if (node_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  node_->nanos.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()),
      std::memory_order_relaxed);
  node_->count.fetch_add(1, std::memory_order_relaxed);
  internal::t_current = node_->parent == &internal::Root() ? nullptr
                                                           : node_->parent;
}

double PhaseSpan::ElapsedSeconds() const {
  if (node_ == nullptr) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

PhaseStats PhaseTreeSnapshot() {
  util::MutexLock lock(internal::g_tree_mutex);
  PhaseStats root;
  internal::SnapshotInto(internal::Root(), root);
  return root;
}

void ResetPhaseTree() {
  util::MutexLock lock(internal::g_tree_mutex);
  internal::ResetNode(internal::Root());
}

double SumPhaseSeconds(const PhaseStats& tree, std::string_view name) {
  double total = tree.name == name ? tree.seconds : 0.0;
  for (const PhaseStats& child : tree.children) {
    total += SumPhaseSeconds(child, name);
  }
  return total;
}

const PhaseStats* FindPhase(const PhaseStats& tree, std::string_view name) {
  if (tree.name == name) return &tree;
  for (const PhaseStats& child : tree.children) {
    if (const PhaseStats* found = FindPhase(child, name)) return found;
  }
  return nullptr;
}

}  // namespace podium::telemetry
