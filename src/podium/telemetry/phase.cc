#include "podium/telemetry/phase.h"

#include <atomic>
#include <memory>
#include <mutex>

#include "podium/telemetry/telemetry.h"

namespace podium::telemetry {

namespace internal {

/// One position in the phase tree. Accumulation is atomic so concurrent
/// spans at the same position (same phase name on several threads) add up
/// losslessly; child creation is guarded by a global mutex (rare — once
/// per distinct name/position).
struct PhaseNode {
  std::string name;
  PhaseNode* parent = nullptr;
  std::atomic<std::uint64_t> nanos{0};
  std::atomic<std::uint64_t> count{0};
  std::vector<std::unique_ptr<PhaseNode>> children;
};

namespace {

std::mutex g_tree_mutex;

PhaseNode& Root() {
  static PhaseNode* root = [] {
    auto* node = new PhaseNode();
    node->name = "process";
    return node;
  }();
  return *root;
}

/// The innermost active span's node on this thread; spans opened next
/// become its children.
thread_local PhaseNode* t_current = nullptr;

PhaseNode* ChildNamed(PhaseNode& parent, std::string_view name) {
  std::lock_guard<std::mutex> lock(g_tree_mutex);
  for (const auto& child : parent.children) {
    if (child->name == name) return child.get();
  }
  auto node = std::make_unique<PhaseNode>();
  node->name = std::string(name);
  node->parent = &parent;
  parent.children.push_back(std::move(node));
  return parent.children.back().get();
}

void SnapshotInto(const PhaseNode& node, PhaseStats& out) {
  out.name = node.name;
  out.seconds =
      static_cast<double>(node.nanos.load(std::memory_order_relaxed)) * 1e-9;
  out.count = node.count.load(std::memory_order_relaxed);
  for (const auto& child : node.children) {
    PhaseStats stats;
    SnapshotInto(*child, stats);
    // Prune positions that never completed a span (created but reset, or
    // only holding still-active spans) unless a descendant has data.
    if (stats.count == 0 && stats.children.empty()) continue;
    out.children.push_back(std::move(stats));
  }
}

void ResetNode(PhaseNode& node) {
  node.nanos.store(0, std::memory_order_relaxed);
  node.count.store(0, std::memory_order_relaxed);
  for (const auto& child : node.children) ResetNode(*child);
}

}  // namespace
}  // namespace internal

PhaseSpan::PhaseSpan(std::string_view name) {
  if (!Enabled()) return;
  internal::PhaseNode* parent =
      internal::t_current != nullptr ? internal::t_current : &internal::Root();
  node_ = internal::ChildNamed(*parent, name);
  internal::t_current = node_;
  start_ = std::chrono::steady_clock::now();
}

PhaseSpan::~PhaseSpan() {
  if (node_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  node_->nanos.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()),
      std::memory_order_relaxed);
  node_->count.fetch_add(1, std::memory_order_relaxed);
  internal::t_current = node_->parent == &internal::Root() ? nullptr
                                                           : node_->parent;
}

double PhaseSpan::ElapsedSeconds() const {
  if (node_ == nullptr) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

PhaseStats PhaseTreeSnapshot() {
  std::lock_guard<std::mutex> lock(internal::g_tree_mutex);
  PhaseStats root;
  internal::SnapshotInto(internal::Root(), root);
  return root;
}

void ResetPhaseTree() {
  std::lock_guard<std::mutex> lock(internal::g_tree_mutex);
  internal::ResetNode(internal::Root());
}

double SumPhaseSeconds(const PhaseStats& tree, std::string_view name) {
  double total = tree.name == name ? tree.seconds : 0.0;
  for (const PhaseStats& child : tree.children) {
    total += SumPhaseSeconds(child, name);
  }
  return total;
}

const PhaseStats* FindPhase(const PhaseStats& tree, std::string_view name) {
  if (tree.name == name) return &tree;
  for (const PhaseStats& child : tree.children) {
    if (const PhaseStats* found = FindPhase(child, name)) return found;
  }
  return nullptr;
}

}  // namespace podium::telemetry
