#ifndef PODIUM_TELEMETRY_TRACE_H_
#define PODIUM_TELEMETRY_TRACE_H_

#include <cstdint>
#include <vector>

namespace podium::telemetry {

/// One round of Algorithm 1 as the GreedySelector executed it: which user
/// won the argmax, at what marginal gain, and what the selection cost in
/// data-structure work. Recorded only while telemetry is enabled.
struct GreedyRoundEvent {
  /// Distinguishes Select() invocations within one process (monotonically
  /// increasing across all GreedySelector runs).
  std::uint32_t run = 0;
  /// 0-based round within the run; equals the user's index in the returned
  /// Selection::users.
  std::uint32_t round = 0;
  /// The chosen user's id.
  std::uint32_t user = 0;
  /// Marginal gain of the chosen user at selection time. For scalar weights
  /// this is the tier-0 ("priority") gain; for EBS runs it is the number of
  /// alive groups still covered by the user (EBS gains are rank sets, not
  /// scalars).
  double gain = 0.0;
  /// Tier-1 ("standard") gain of the customized score; 0 for base runs.
  double gain_secondary = 0.0;
  /// GreedyMode::kLazyHeap only: heap entries popped to find the argmax.
  std::uint32_t heap_pops = 0;
  /// GreedyMode::kLazyHeap only: popped entries whose cached gain was stale
  /// and were re-pushed with the maintained value.
  std::uint32_t stale_reinserts = 0;
  /// user↔group links retired because this choice killed their group
  /// (remaining coverage hit zero).
  std::uint32_t retired_links = 0;
  /// Groups whose remaining coverage hit zero this round.
  std::uint32_t retired_groups = 0;
};

/// Process-wide sink for greedy selection traces.
class GreedyTrace {
 public:
  /// Reserves a fresh run id (callers stamp it into their events).
  static std::uint32_t NextRunId();

  static void Record(const GreedyRoundEvent& event);
  static void Record(const std::vector<GreedyRoundEvent>& events);

  static std::vector<GreedyRoundEvent> Snapshot();
  static void Clear();
};

}  // namespace podium::telemetry

#endif  // PODIUM_TELEMETRY_TRACE_H_
