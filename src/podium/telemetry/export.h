#ifndef PODIUM_TELEMETRY_EXPORT_H_
#define PODIUM_TELEMETRY_EXPORT_H_

#include <string>

#include "podium/json/value.h"
#include "podium/util/status.h"

namespace podium::telemetry {

/// Version of the exported JSON document. Bump on any incompatible change
/// (removed/renamed key, changed meaning); purely additive changes keep
/// the version. The schema is documented in DESIGN.md §"Telemetry &
/// profiling".
inline constexpr int kTelemetrySchemaVersion = 1;

/// Serializes the current telemetry state — counters, gauges, histograms,
/// the phase tree, and the greedy trace — as one JSON document:
///
/// {
///   "schema": {"name": "podium.telemetry", "version": 1},
///   "counters": {"greedy.rounds": 8, ...},
///   "gauges": {"groups.count": 23, ...},
///   "histograms": {"<name>": {"bounds": [...], "counts": [...],
///                             "count": N, "sum": S}},
///   "phases": {"name": "process", "seconds": S, "count": N,
///              "children": [...]},
///   "greedy_trace": [{"run": 0, "round": 0, "user": 3, "gain": 12.5,
///                     "gain_secondary": 0, "heap_pops": 1,
///                     "stale_reinserts": 0, "retired_links": 4,
///                     "retired_groups": 2}, ...]
/// }
json::Value TelemetryToJson();

/// Writes TelemetryToJson() to `path`, pretty-printed.
Status WriteTelemetryJson(const std::string& path);

/// Human-readable timing summary: the phase tree with per-node totals and
/// call counts, followed by the non-zero counters. For the CLI's --timing.
std::string RenderTimingSummary();

/// Clears every telemetry store: metrics to zero, phase tree times to
/// zero, greedy trace emptied. For tests and repeated benchmark runs.
void ResetAllTelemetry();

}  // namespace podium::telemetry

#endif  // PODIUM_TELEMETRY_EXPORT_H_
