#ifndef PODIUM_TELEMETRY_TELEMETRY_H_
#define PODIUM_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "podium/util/mutex.h"
#include "podium/util/thread_annotations.h"

namespace podium::telemetry {

/// Telemetry is opt-in: the library records nothing until SetEnabled(true)
/// (experiment binaries and the CLI enable it; plain library users pay one
/// relaxed atomic load per instrumented call). Defining
/// PODIUM_TELEMETRY_DISABLED at compile time turns every instrumentation
/// site into a constant-false branch the optimizer deletes outright.
#if defined(PODIUM_TELEMETRY_DISABLED)
inline constexpr bool Enabled() { return false; }
inline void SetEnabled(bool /*enabled*/) {}
#else
namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);
#endif

/// Monotonically increasing event count. Add() is lock-free (a relaxed
/// fetch_add); concurrent increments from any number of threads lose no
/// updates. Hot paths should hoist the Counter& out of the loop (the
/// registry lookup takes a mutex) or accumulate locally and flush once.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (population size, group count, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], the
/// last bucket is the +inf overflow. Bounds are fixed at first registration;
/// Observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> BucketCounts() const;
  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;  // ascending, strictly increasing
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for wall-time observations, in seconds.
std::vector<double> DefaultLatencyBounds();

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of every registered metric, names sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Process-wide registry of named metrics. Registration (the first lookup
/// of a name) takes a mutex; the returned references stay valid for the
/// process lifetime, so sites that care hoist them into statics or locals.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Lookups take mutex_, so none of these may be called while holding a
  /// lock that is ever acquired under it — in particular ResultCache
  /// records cache telemetry only after releasing its own mutex
  /// (result_cache.h declares that with PODIUM_EXCLUDES).
  Counter& counter(std::string_view name) PODIUM_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) PODIUM_EXCLUDES(mutex_);
  /// `bounds` is honored only by the call that first registers `name`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {})
      PODIUM_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const PODIUM_EXCLUDES(mutex_);

  /// Zeroes every metric's value; registrations (and references handed out
  /// earlier) stay valid.
  void Reset() PODIUM_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_{"telemetry.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      PODIUM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      PODIUM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      PODIUM_GUARDED_BY(mutex_);
};

}  // namespace podium::telemetry

#endif  // PODIUM_TELEMETRY_TELEMETRY_H_
