#include "podium/telemetry/trace.h"

#include <atomic>

#include "podium/util/mutex.h"
#include "podium/util/thread_annotations.h"

namespace podium::telemetry {

namespace {

util::Mutex g_trace_mutex{"telemetry.greedy_trace"};

std::vector<GreedyRoundEvent>& Events() PODIUM_REQUIRES(g_trace_mutex) {
  // Intentionally leaked so traces recorded during static destruction
  // still have somewhere to go.
  static auto* events =
      new std::vector<GreedyRoundEvent>();  // podium-lint: allow(raw-new)
  return *events;
}

std::atomic<std::uint32_t> g_next_run{0};

}  // namespace

std::uint32_t GreedyTrace::NextRunId() {
  return g_next_run.fetch_add(1, std::memory_order_relaxed);
}

void GreedyTrace::Record(const GreedyRoundEvent& event) {
  util::MutexLock lock(g_trace_mutex);
  Events().push_back(event);
}

void GreedyTrace::Record(const std::vector<GreedyRoundEvent>& events) {
  util::MutexLock lock(g_trace_mutex);
  Events().insert(Events().end(), events.begin(), events.end());
}

std::vector<GreedyRoundEvent> GreedyTrace::Snapshot() {
  util::MutexLock lock(g_trace_mutex);
  return Events();
}

void GreedyTrace::Clear() {
  util::MutexLock lock(g_trace_mutex);
  Events().clear();
}

}  // namespace podium::telemetry
