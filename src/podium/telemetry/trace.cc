#include "podium/telemetry/trace.h"

#include <atomic>
#include <mutex>

namespace podium::telemetry {

namespace {

std::mutex g_trace_mutex;

std::vector<GreedyRoundEvent>& Events() {
  static auto* events = new std::vector<GreedyRoundEvent>();
  return *events;
}

std::atomic<std::uint32_t> g_next_run{0};

}  // namespace

std::uint32_t GreedyTrace::NextRunId() {
  return g_next_run.fetch_add(1, std::memory_order_relaxed);
}

void GreedyTrace::Record(const GreedyRoundEvent& event) {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  Events().push_back(event);
}

void GreedyTrace::Record(const std::vector<GreedyRoundEvent>& events) {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  Events().insert(Events().end(), events.begin(), events.end());
}

std::vector<GreedyRoundEvent> GreedyTrace::Snapshot() {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  return Events();
}

void GreedyTrace::Clear() {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  Events().clear();
}

}  // namespace podium::telemetry
