#include "podium/check/invariants.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "podium/check/oracle.h"
#include "podium/core/exhaustive.h"
#include "podium/core/score.h"
#include "podium/util/string_util.h"

namespace podium::check {

InvariantReport CheckGreedyRun(const DiversificationInstance& instance,
                               const Selection& selection,
                               std::size_t budget) {
  InvariantReport report;
  const std::size_t num_users = instance.repository().user_count();
  const std::size_t num_groups = instance.groups().group_count();
  const std::vector<UserId>& users = selection.users;

  if (users.size() > std::min(budget, num_users)) {
    report.Add(util::StringPrintf(
        "selection has %zu users, more than min(budget %zu, population %zu)",
        users.size(), budget, num_users));
  }
  std::vector<std::uint8_t> seen(num_users, 0);
  for (UserId u : users) {
    if (u >= num_users) {
      report.Add(util::StringPrintf("selected user id %u out of range", u));
      return report;  // later checks would index out of bounds
    }
    if (seen[u]) {
      report.Add(util::StringPrintf("user %u selected twice", u));
    }
    seen[u] = 1;
  }

  // Submodularity: the gain sequence of the greedy prefix chain never
  // increases. Gains are recomputed by direct scoring, so this also
  // cross-checks the maintained-marginal bookkeeping.
  double previous_gain = 0.0;
  for (std::size_t round = 0; round < users.size(); ++round) {
    const std::span<const UserId> before(users.data(), round);
    const std::span<const UserId> after(users.data(), round + 1);
    const double gain = OracleScore(instance, after) -
                        OracleScore(instance, before);
    if (round > 0 && gain > previous_gain) {
      report.Add(util::StringPrintf(
          "marginal gain increased at round %zu: %.17g after %.17g",
          round, gain, previous_gain));
    }
    previous_gain = gain;
  }

  // Retirement replay over the nested oracle adjacency: decrement
  // `remaining` for every alive group of each selected user, retiring a
  // group the instant it reaches zero — the exact bookkeeping of
  // Algorithm 1's data-structure section.
  const NestedGroups nested = BuildNestedGroups(instance);
  std::vector<std::uint32_t> remaining = instance.coverage();
  std::vector<std::uint8_t> dead(num_groups, 0);
  for (UserId u : users) {
    for (GroupId g : nested.groups_of[u]) {
      if (dead[g]) continue;
      if (--remaining[g] == 0) dead[g] = 1;
    }
  }
  const std::vector<std::uint32_t> csr_counts =
      MembersSelectedPerGroup(instance, users);
  for (GroupId g = 0; g < num_groups; ++g) {
    const std::uint32_t expected =
        instance.coverage(g) -
        std::min(csr_counts[g], instance.coverage(g));
    if (remaining[g] != expected) {
      report.Add(util::StringPrintf(
          "group %u remaining counter %u inconsistent with cov %u minus "
          "%u selected members",
          g, remaining[g], instance.coverage(g), csr_counts[g]));
    }
    if ((remaining[g] == 0) != (dead[g] != 0)) {
      report.Add(util::StringPrintf(
          "group %u retired flag disagrees with remaining counter %u", g,
          remaining[g]));
    }
  }

  const double oracle_score = OracleScore(instance, users);
  if (selection.score != oracle_score) {
    report.Add(util::StringPrintf(
        "reported score %.17g != direct-scoring oracle %.17g",
        selection.score, oracle_score));
  }
  return report;
}

InvariantReport CheckApproximationRatio(
    const DiversificationInstance& instance, const Selection& selection,
    std::size_t budget, std::size_t max_users) {
  InvariantReport report;
  if (instance.repository().user_count() > max_users) return report;

  Result<Selection> optimal = ExhaustiveSelector().Select(instance, budget);
  if (!optimal.ok()) {
    report.Add("exhaustive oracle failed: " + optimal.status().message());
    return report;
  }
  // (1 - 1/e) of Prop. 4.4, with a hair of slack for the one inexact
  // operation (the ratio itself; scores are integer-exact).
  const double bound = (1.0 - 1.0 / std::exp(1.0)) * optimal->score - 1e-9;
  if (selection.score < bound) {
    report.Add(util::StringPrintf(
        "greedy score %.17g below (1-1/e) * optimal %.17g",
        selection.score, optimal->score));
  }
  return report;
}

}  // namespace podium::check
