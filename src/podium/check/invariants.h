#ifndef PODIUM_CHECK_INVARIANTS_H_
#define PODIUM_CHECK_INVARIANTS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "podium/core/instance.h"
#include "podium/core/selection.h"

namespace podium::check {

/// The outcome of an invariant sweep: empty means every invariant held.
struct InvariantReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  void Add(std::string violation) {
    violations.push_back(std::move(violation));
  }
};

/// Checks the structural invariants every greedy run must satisfy,
/// independent of which optimized path produced `selection`:
///
///  - selected users are distinct, in range, and at most min(budget, |𝒰|);
///  - per-round marginal gains are non-increasing (submodularity: the gain
///    sequence of Algorithm 1 never goes up), recomputed here by direct
///    scoring of selection prefixes;
///  - the retirement bookkeeping is consistent: replaying the selection
///    against a fresh `remaining` counter per group, a group is retired
///    exactly when remaining hits zero, and the final counters equal
///    cov(G) − min(|S ∩ G|, cov(G)) with |S ∩ G| recomputed through the
///    CSR adjacency (cross-checking the nested replay against CSR);
///  - the reported score equals the direct-scoring oracle's value.
///
/// Assumes scalar (Iden/LBS) weights, where all arithmetic is exact.
InvariantReport CheckGreedyRun(const DiversificationInstance& instance,
                               const Selection& selection,
                               std::size_t budget);

/// Asserts the (1 − 1/e) guarantee of Prop. 4.4 against the exhaustive
/// optimum. Only meaningful on tiny instances; callers should gate on
/// user_count() <= max_users (12 keeps the subset enumeration trivial).
InvariantReport CheckApproximationRatio(
    const DiversificationInstance& instance, const Selection& selection,
    std::size_t budget, std::size_t max_users = 12);

}  // namespace podium::check

#endif  // PODIUM_CHECK_INVARIANTS_H_
