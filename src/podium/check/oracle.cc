#include "podium/check/oracle.h"

#include <algorithm>
#include <utility>

#include "podium/util/string_util.h"

namespace podium::check {

namespace {

/// |subset ∩ G| by scanning the subset and testing membership via the
/// group definition (property score in bucket) — not via any index.
std::uint32_t DirectIntersection(const DiversificationInstance& instance,
                                 GroupId g, std::span<const UserId> subset) {
  const GroupDef& def = instance.groups().def(g);
  std::uint32_t count = 0;
  for (UserId u : subset) {
    const auto score = instance.repository().user(u).Get(def.property);
    if (score.has_value() && def.bucket.Contains(*score)) ++count;
  }
  return count;
}

}  // namespace

double OracleScore(const DiversificationInstance& instance,
                   std::span<const UserId> subset) {
  double score = 0.0;
  for (GroupId g = 0; g < instance.groups().group_count(); ++g) {
    const std::uint32_t count = DirectIntersection(instance, g, subset);
    score += instance.weight(g) *
             std::min(count, instance.coverage(g));
  }
  return score;
}

double OracleTierScore(const DiversificationInstance& instance,
                       std::span<const UserId> subset,
                       const std::vector<std::uint8_t>& tiers,
                       std::uint8_t tier) {
  double score = 0.0;
  for (GroupId g = 0; g < instance.groups().group_count(); ++g) {
    if ((tiers.empty() ? 0 : tiers[g]) != tier) continue;
    const std::uint32_t count = DirectIntersection(instance, g, subset);
    score += instance.weight(g) *
             std::min(count, instance.coverage(g));
  }
  return score;
}

NestedGroups BuildNestedGroups(const DiversificationInstance& instance) {
  const std::size_t num_users = instance.repository().user_count();
  const std::size_t num_groups = instance.groups().group_count();
  NestedGroups nested;
  nested.members.resize(num_groups);
  nested.groups_of.resize(num_users);
  for (GroupId g = 0; g < num_groups; ++g) {
    const GroupDef& def = instance.groups().def(g);
    for (UserId u = 0; u < num_users; ++u) {
      const auto score = instance.repository().user(u).Get(def.property);
      if (score.has_value() && def.bucket.Contains(*score)) {
        nested.members[g].push_back(u);
        nested.groups_of[u].push_back(g);
      }
    }
  }
  return nested;
}

Status CheckAdjacency(const DiversificationInstance& instance) {
  const GroupIndex& index = instance.groups();
  const NestedGroups nested = BuildNestedGroups(instance);
  for (GroupId g = 0; g < index.group_count(); ++g) {
    const std::span<const UserId> csr = index.members(g);
    if (!std::equal(csr.begin(), csr.end(), nested.members[g].begin(),
                    nested.members[g].end())) {
      return Status::Internal(util::StringPrintf(
          "CSR members of group %u diverge from the nested oracle "
          "(%zu vs %zu entries)",
          g, csr.size(), nested.members[g].size()));
    }
  }
  for (UserId u = 0; u < index.user_count(); ++u) {
    const std::span<const GroupId> csr = index.groups_of(u);
    if (!std::equal(csr.begin(), csr.end(), nested.groups_of[u].begin(),
                    nested.groups_of[u].end())) {
      return Status::Internal(util::StringPrintf(
          "CSR groups_of user %u diverge from the nested oracle "
          "(%zu vs %zu entries)",
          u, csr.size(), nested.groups_of[u].size()));
    }
  }
  return Status::Ok();
}

Result<Selection> OracleGreedy(const DiversificationInstance& instance,
                               std::size_t budget, std::vector<UserId> pool,
                               std::vector<std::uint8_t> tiers) {
  const std::size_t num_users = instance.repository().user_count();
  if (budget == 0) return Status::InvalidArgument("budget must be positive");
  if (pool.empty()) {
    pool.resize(num_users);
    for (UserId u = 0; u < num_users; ++u) pool[u] = u;
  } else {
    // Ascending ids so that "first candidate wins ties" below coincides
    // with the optimized selectors' ascending-id default tie-break.
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    if (!pool.empty() && pool.back() >= num_users) {
      return Status::OutOfRange("candidate pool user id out of range");
    }
  }
  std::vector<std::uint8_t> taken(num_users, 0);

  Selection selection;
  for (std::size_t round = 0; round < budget; ++round) {
    const double base0 = OracleTierScore(instance, selection.users, tiers, 0);
    const double base1 = OracleTierScore(instance, selection.users, tiers, 1);
    UserId chosen = kInvalidUser;
    double best0 = 0.0;
    double best1 = 0.0;
    for (UserId u : pool) {
      if (taken[u]) continue;
      std::vector<UserId> with_u(selection.users);
      with_u.push_back(u);
      const double gain0 =
          OracleTierScore(instance, with_u, tiers, 0) - base0;
      const double gain1 =
          OracleTierScore(instance, with_u, tiers, 1) - base1;
      // Larger (gain0, gain1) lexicographically wins; ties keep the
      // earlier (smaller-id) candidate.
      if (chosen == kInvalidUser || gain0 > best0 ||
          (gain0 == best0 && gain1 > best1)) {
        chosen = u;
        best0 = gain0;
        best1 = gain1;
      }
    }
    if (chosen == kInvalidUser) break;  // pool exhausted
    taken[chosen] = 1;
    selection.users.push_back(chosen);
  }
  selection.score = OracleScore(instance, selection.users);
  return selection;
}

}  // namespace podium::check
