#include "podium/check/fuzz.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>
#include <utility>

#include "podium/json/parser.h"
#include "podium/json/writer.h"
#include "podium/serve/handlers.h"
#include "podium/util/rng.h"
#include "podium/util/string_util.h"

namespace podium::check {

namespace {

void AddFailure(FuzzReport& report, std::uint64_t seed, int iteration,
                const std::string& message) {
  report.failures.push_back(util::StringPrintf(
      "[seed %llu iter %d] ", static_cast<unsigned long long>(seed),
      iteration) + message);
}

/// Applies 1..max_mutations random byte edits (flip, insert, delete).
std::string Mutate(util::Rng& rng, std::string input, int max_mutations) {
  const int mutations = 1 + static_cast<int>(rng.NextBounded(
                                static_cast<std::uint64_t>(max_mutations)));
  for (int i = 0; i < mutations && !input.empty(); ++i) {
    const std::size_t pos = rng.NextBounded(input.size());
    switch (rng.NextBounded(3)) {
      case 0:
        input[pos] = static_cast<char>(rng.NextBounded(256));
        break;
      case 1:
        input.insert(pos, 1, static_cast<char>(rng.NextBounded(256)));
        break;
      default:
        input.erase(pos, 1);
        break;
    }
  }
  return input;
}

/// Random JSON value tree bounded well inside UntrustedParseOptions'
/// depth/node limits, so valid documents must always parse.
json::Value RandomDocument(util::Rng& rng, int depth) {
  switch (rng.NextBounded(depth <= 0 ? 4 : 6)) {
    case 0:
      return json::Value(nullptr);
    case 1:
      return json::Value(rng.NextBernoulli(0.5));
    case 2:
      return json::Value(rng.NextDouble(-1e9, 1e9));
    case 3: {
      std::string s;
      const std::size_t length = rng.NextBounded(16);
      for (std::size_t i = 0; i < length; ++i) {
        s.push_back(static_cast<char>(32 + rng.NextBounded(95)));
      }
      return json::Value(std::move(s));
    }
    case 4: {
      json::Array array;
      const std::size_t length = rng.NextBounded(5);
      for (std::size_t i = 0; i < length; ++i) {
        array.push_back(RandomDocument(rng, depth - 1));
      }
      return json::Value(std::move(array));
    }
    default: {
      json::Object object;
      const std::size_t length = rng.NextBounded(5);
      for (std::size_t i = 0; i < length; ++i) {
        object.Set("k" + std::to_string(i), RandomDocument(rng, depth - 1));
      }
      return json::Value(std::move(object));
    }
  }
}

template <typename Message>
Result<Message> ParseBytesVia(
    const std::string& bytes, const serve::HttpLimits& limits,
    Result<Message> (*read)(serve::BufferedReader&,
                            const serve::HttpLimits&)) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IoError(std::string("socketpair: ") +
                           std::strerror(errno));
  }
  Status written = serve::WriteAll(fds[1], bytes);
  ::close(fds[1]);  // EOF after the payload, like a client hanging up
  if (!written.ok()) {
    ::close(fds[0]);
    return written;
  }
  serve::BufferedReader reader(fds[0]);
  Result<Message> message = read(reader, limits);
  ::close(fds[0]);
  return message;
}

/// Builds a syntactically valid request with randomized fields.
serve::HttpRequest RandomRequest(util::Rng& rng) {
  serve::HttpRequest request;
  request.method = rng.NextBernoulli(0.5) ? "POST" : "GET";
  request.target = "/v1/select";
  const std::size_t extra = rng.NextBounded(3);
  for (std::size_t i = 0; i < extra; ++i) {
    request.headers.emplace_back("X-Fuzz-" + std::to_string(i),
                                 "value-" + std::to_string(rng.NextBounded(10)));
  }
  if (request.method == "POST") {
    const std::size_t length = rng.NextBounded(64);
    for (std::size_t i = 0; i < length; ++i) {
      request.body.push_back(static_cast<char>(32 + rng.NextBounded(95)));
    }
  }
  return request;
}

}  // namespace

Result<serve::HttpRequest> ParseRequestBytes(const std::string& bytes,
                                             const serve::HttpLimits& limits) {
  return ParseBytesVia<serve::HttpRequest>(bytes, limits,
                                           &serve::ReadHttpRequest);
}

Result<serve::HttpResponse> ParseResponseBytes(
    const std::string& bytes, const serve::HttpLimits& limits) {
  return ParseBytesVia<serve::HttpResponse>(bytes, limits,
                                            &serve::ReadHttpResponse);
}

FuzzReport FuzzJson(std::uint64_t seed, int iterations) {
  FuzzReport report;
  util::Rng rng(seed);
  const json::ParseOptions limits = serve::UntrustedParseOptions();
  for (int iter = 0; iter < iterations; ++iter) {
    ++report.iterations;
    const json::Value document = RandomDocument(rng, 4);
    const std::string text = json::Write(document);

    // A valid document inside the limits must parse back to itself.
    Result<json::Value> parsed = json::Parse(text, limits);
    if (!parsed.ok()) {
      AddFailure(report, seed, iter,
                 "valid document rejected: " + parsed.status().message());
      continue;
    }
    if (!(parsed.value() == document)) {
      AddFailure(report, seed, iter, "round-trip mismatch for: " + text);
    }

    // Mutations must parse cleanly or fail with ParseError; whatever
    // parses must survive a re-serialize/re-parse cycle.
    const std::string mutated = Mutate(rng, text, 6);
    Result<json::Value> fuzzed = json::Parse(mutated, limits);
    if (fuzzed.ok()) {
      const std::string rewritten = json::Write(fuzzed.value());
      Result<json::Value> reparsed = json::Parse(rewritten, limits);
      if (!reparsed.ok() || !(reparsed.value() == fuzzed.value())) {
        AddFailure(report, seed, iter,
                   "accepted mutation does not round-trip: " + mutated);
      }
    } else if (fuzzed.status().code() != StatusCode::kParseError) {
      AddFailure(report, seed, iter,
                 "mutation failed with non-ParseError status: " +
                     fuzzed.status().message());
    }
  }
  return report;
}

FuzzReport FuzzHttpRequests(std::uint64_t seed, int iterations) {
  FuzzReport report;
  util::Rng rng(seed);
  const serve::HttpLimits limits;

  // Content-Length shapes the parser must reject (request-smuggling
  // class) and shapes it must accept, interleaved with random mutations.
  const char* kRejected[] = {"+5", "-5", "5 5", "5\t5", "5,5", "0x10",
                             "5.0", "", "99999999999999999999999999"};

  for (int iter = 0; iter < iterations; ++iter) {
    ++report.iterations;
    const serve::HttpRequest request = RandomRequest(rng);
    const std::string wire = serve::SerializeRequest(request);

    Result<serve::HttpRequest> parsed = ParseRequestBytes(wire, limits);
    if (!parsed.ok()) {
      AddFailure(report, seed, iter,
                 "valid request rejected: " + parsed.status().message());
    } else if (parsed->method != request.method ||
               parsed->target != request.target ||
               parsed->body != request.body) {
      AddFailure(report, seed, iter, "request round-trip mismatch");
    }

    // Adversarial Content-Length: build the head by hand so the
    // serializer cannot normalize it away.
    const char* bad = kRejected[rng.NextBounded(std::size(kRejected))];
    const std::string bad_wire = "POST /v1/select HTTP/1.1\r\nContent-Length: " +
                                 std::string(bad) + "\r\n\r\nhello";
    Result<serve::HttpRequest> rejected = ParseRequestBytes(bad_wire, limits);
    if (rejected.ok() ||
        rejected.status().code() != StatusCode::kParseError) {
      AddFailure(report, seed, iter,
                 std::string("Content-Length '") + bad + "' not rejected");
    }

    const std::string conflicting =
        "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n"
        "\r\nhelloX";
    Result<serve::HttpRequest> smuggled =
        ParseRequestBytes(conflicting, limits);
    if (smuggled.ok() ||
        smuggled.status().code() != StatusCode::kParseError) {
      AddFailure(report, seed, iter,
                 "conflicting Content-Length headers not rejected");
    }

    // Byte-level mutations of a valid request: any Status is acceptable,
    // crashing or reading out of bounds is not (ASan's department).
    (void)ParseRequestBytes(Mutate(rng, wire, 8), limits);

    // Same for the response parser, seeded with a valid response.
    serve::HttpResponse response;
    response.status = 200 + static_cast<int>(rng.NextBounded(300));
    response.reason = "Fuzz";
    response.body = request.body;
    const std::string response_wire = serve::SerializeResponse(response);
    Result<serve::HttpResponse> response_parsed =
        ParseResponseBytes(response_wire, limits);
    if (!response_parsed.ok() ||
        response_parsed->status != response.status ||
        response_parsed->body != response.body) {
      AddFailure(report, seed, iter, "response round-trip mismatch");
    }
    (void)ParseResponseBytes(Mutate(rng, response_wire, 8), limits);
  }
  return report;
}

}  // namespace podium::check
