#ifndef PODIUM_CHECK_ORACLE_H_
#define PODIUM_CHECK_ORACLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "podium/core/instance.h"
#include "podium/core/selection.h"
#include "podium/util/result.h"

namespace podium::check {

/// Reference oracles for differential testing: deliberately dumb, direct
/// transcriptions of the paper's definitions with none of the optimized
/// paths' data structures (no maintained marginals, no lazy heap, no CSR,
/// no threads). Each is small enough to audit by eye; the optimized code
/// is correct exactly when it agrees with these byte for byte.
///
/// All oracles assume scalar (Iden/LBS) weights, where every quantity is a
/// sum of small integers and double arithmetic is exact — so "agrees"
/// means operator==, not within-epsilon.

/// score_𝒢(U) straight from Def. 3.3: for every group, count members in
/// `subset` by scanning the subset per group member — no index, no CSR.
double OracleScore(const DiversificationInstance& instance,
                   std::span<const UserId> subset);

/// As OracleScore but restricted to groups whose tier equals `tier`
/// (tiers empty means every group has tier 0).
double OracleTierScore(const DiversificationInstance& instance,
                       std::span<const UserId> subset,
                       const std::vector<std::uint8_t>& tiers,
                       std::uint8_t tier);

/// The pre-CSR nested adjacency: one vector per group / per user, rebuilt
/// from the repository's profiles and the instance's group definitions —
/// NOT from the CSR arrays — so it is an independent witness of what the
/// flattened index must contain.
struct NestedGroups {
  std::vector<std::vector<UserId>> members;    // per group, ascending
  std::vector<std::vector<GroupId>> groups_of; // per user, ascending
};
NestedGroups BuildNestedGroups(const DiversificationInstance& instance);

/// Compares both CSR directions of `instance.groups()` against the nested
/// oracle index; any mismatch is a divergence.
Status CheckAdjacency(const DiversificationInstance& instance);

/// Greedy User Selection straight from Algorithm 1, O(B · |𝒰| · cost of
/// scoring): each round recomputes every candidate's marginal gain as
/// OracleScore(S ∪ {u}) − OracleScore(S) and takes the argmax, ties by
/// ascending user id — the optimized selectors' default tie-break.
/// `pool` empty means the full population; `tiers` empty means all groups
/// in tier 0 (tier 0 gains dominate tier 1 lexicographically; tier >= 2
/// is ignored, matching GreedyOptions::group_tiers).
Result<Selection> OracleGreedy(const DiversificationInstance& instance,
                               std::size_t budget,
                               std::vector<UserId> pool = {},
                               std::vector<std::uint8_t> tiers = {});

}  // namespace podium::check

#endif  // PODIUM_CHECK_ORACLE_H_
