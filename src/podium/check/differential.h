#ifndef PODIUM_CHECK_DIFFERENTIAL_H_
#define PODIUM_CHECK_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace podium::check {

/// Configuration of the randomized differential driver. Round r generates
/// its instance from seed `seed + r`, so any failing round is reproduced
/// exactly by rerunning with `--seed=<printed seed> --rounds=1`.
struct DiffOptions {
  std::uint64_t seed = 1;
  int rounds = 25;

  /// Re-run every optimized selector at these global thread-pool sizes
  /// (and rebuild the group index under each) asserting byte-identical
  /// output; empty disables the sweep.
  std::vector<std::size_t> thread_counts = {1, 2, 8};

  /// Run the thread sweep once per kernel variant (forced scalar and the
  /// CPU's native dispatch — see core/kernels.h), asserting the SIMD and
  /// scalar inner loops select byte-identically. On hardware without
  /// AVX2 the two passes coincide. False pins the ambient variant.
  bool sweep_kernel_variants = true;

  /// Drive the serve-layer SelectionService (with and without the result
  /// cache) and compare its responses against the oracle selection.
  bool with_serve = true;

  /// For each K here, build a sharded snapshot over the round's dataset
  /// (both partition strategies, at `shard_thread_counts` pool sizes, both
  /// greedy modes) and run the two-round distributed selection. K=1 must
  /// be byte-identical to the single-snapshot oracle; K>1 must score the
  /// merged set exactly (vs OracleScore) and satisfy the proven
  /// (1−1/e)²/min(K,B) bound against the oracle. Empty disables.
  std::vector<std::size_t> shard_counts = {};

  /// Global thread-pool sizes the shard sweep runs under; selections must
  /// be byte-invariant across them.
  std::vector<std::size_t> shard_thread_counts = {1, 8};
};

/// The outcome of a differential run. Every divergence message names the
/// round seed that produced it.
struct DiffReport {
  int rounds_run = 0;
  std::vector<std::string> divergences;

  bool ok() const { return divergences.empty(); }
};

/// Runs `options.rounds` differential rounds. Each round generates a
/// small seeded instance via podium::datagen, then asserts that the naïve
/// Algorithm-1 oracle, the plain-scan greedy, the lazy-heap greedy, every
/// configured thread count, and (optionally) the serve path all produce
/// byte-identical selections — plus the greedy invariants of
/// invariants.h, and the (1 − 1/e) bound against the exhaustive optimum
/// on instances small enough to enumerate.
DiffReport RunDifferential(const DiffOptions& options);

}  // namespace podium::check

#endif  // PODIUM_CHECK_DIFFERENTIAL_H_
