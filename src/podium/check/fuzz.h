#ifndef PODIUM_CHECK_FUZZ_H_
#define PODIUM_CHECK_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "podium/serve/http.h"
#include "podium/util/result.h"

namespace podium::check {

/// The outcome of a fuzz sweep: iterations executed and any contract
/// violations observed (crashes and sanitizer aborts terminate the
/// process, which is the point of running this under ASan/UBSan in CI).
struct FuzzReport {
  int iterations = 0;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

/// Structure-aware fuzz of json::Parse through the production entry point
/// (serve's UntrustedParseOptions limits): valid documents must parse and
/// round-trip; random mutations and structured noise must either parse or
/// fail with ParseError — never crash, hang, or corrupt.
FuzzReport FuzzJson(std::uint64_t seed, int iterations);

/// Structure-aware fuzz of the HTTP/1.1 request parser through
/// serve::ReadHttpRequest over a real socketpair (the exact production
/// read path). Valid serialized requests must round-trip; adversarial
/// Content-Length shapes (signs, embedded whitespace, conflicting
/// duplicates, overflow) must be rejected with ParseError; random byte
/// mutations must never crash.
FuzzReport FuzzHttpRequests(std::uint64_t seed, int iterations);

/// Feeds `bytes` through serve::ReadHttpRequest exactly as a connection
/// would deliver them (socketpair + BufferedReader). Exposed for tests
/// and for replaying fuzz findings.
Result<serve::HttpRequest> ParseRequestBytes(const std::string& bytes,
                                             const serve::HttpLimits& limits =
                                                 serve::HttpLimits{});

/// The response-side counterpart, for the status-line hardening tests.
Result<serve::HttpResponse> ParseResponseBytes(
    const std::string& bytes,
    const serve::HttpLimits& limits = serve::HttpLimits{});

}  // namespace podium::check

#endif  // PODIUM_CHECK_FUZZ_H_
