#include "podium/check/differential.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "podium/check/invariants.h"
#include "podium/check/oracle.h"
#include "podium/core/customization.h"
#include "podium/core/greedy.h"
#include "podium/core/kernels.h"
#include "podium/datagen/generator.h"
#include "podium/json/parser.h"
#include "podium/serve/request.h"
#include "podium/serve/service.h"
#include "podium/shard/sharded_selector.h"
#include "podium/util/rng.h"
#include "podium/util/string_util.h"
#include "podium/util/thread_pool.h"

namespace podium::check {

namespace {

/// Collects divergences for one round, prefixing every message with the
/// round seed so a failure is reproducible from the printed line alone.
struct RoundLog {
  std::uint64_t seed;
  DiffReport* report;

  void Diverge(const std::string& message) {
    report->divergences.push_back(
        util::StringPrintf("[seed %llu] ",
                           static_cast<unsigned long long>(seed)) +
        message);
  }
};

std::string UsersToString(const std::vector<UserId>& users) {
  std::string out = "[";
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(users[i]);
  }
  return out + "]";
}

/// Byte-identical selections: same users in the same order, same score
/// bit pattern (Iden/LBS arithmetic is exact, so == is the right test).
bool SameSelection(const Selection& a, const Selection& b) {
  return a.users == b.users && a.score == b.score;
}

datagen::DatasetConfig MakeConfig(util::Rng& rng, std::uint64_t seed,
                                  bool tiny) {
  datagen::DatasetConfig config;
  config.num_users =
      tiny ? 8 + rng.NextBounded(5) : 20 + rng.NextBounded(41);
  config.num_restaurants = 40 + rng.NextBounded(80);
  config.leaf_categories = 6 + rng.NextBounded(10);
  config.num_cities = 3 + rng.NextBounded(5);
  config.num_age_groups = 3 + rng.NextBounded(3);
  config.num_personas = 2 + rng.NextBounded(4);
  config.num_topics = 6;
  config.min_reviews_per_user = 2;
  config.max_reviews_per_user = 10;
  config.holdout_destinations = 2;
  config.min_holdout_reviews = 3;
  config.derive_enthusiasm = rng.NextBernoulli(0.5);
  config.seed = seed;
  return config;
}

/// Extracts the selected user ids from a serialized serve response body.
Result<std::vector<UserId>> UsersFromBody(const std::string& body) {
  Result<json::Value> document = json::Parse(body);
  if (!document.ok()) return document.status();
  if (!document->is_object()) {
    return Status::ParseError("response body is not an object");
  }
  const json::Value* users = document->AsObject().Find("users");
  if (users == nullptr || !users->is_array()) {
    return Status::ParseError("response body has no users array");
  }
  std::vector<UserId> out;
  out.reserve(users->AsArray().size());
  for (const json::Value& entry : users->AsArray()) {
    const json::Value* id =
        entry.is_object() ? entry.AsObject().Find("id") : nullptr;
    if (id == nullptr || !id->is_number()) {
      return Status::ParseError("user entry has no numeric id");
    }
    out.push_back(static_cast<UserId>(id->AsNumber()));
  }
  return out;
}

/// The tier vector SelectCustomized derives from feedback with
/// standard_is_rest (priority groups tier 0, everything else tier 1) —
/// recomputed independently here for the oracle.
std::vector<std::uint8_t> TiersForPriority(
    std::size_t num_groups, const std::vector<GroupId>& priority) {
  std::vector<std::uint8_t> tiers(num_groups, 1);
  for (GroupId g : priority) tiers[g] = 0;
  return tiers;
}

Result<Selection> RunGreedy(const DiversificationInstance& instance,
                            std::size_t budget, GreedyMode mode) {
  GreedyOptions options;
  options.mode = mode;
  return GreedySelector(options).Select(instance, budget);
}

/// One round's fixed instance parameters, drawn up front so the same
/// choices replay at every thread count.
struct RoundPlan {
  datagen::DatasetConfig config;
  InstanceOptions instance;
  std::size_t budget = 0;
  bool tiny = false;
};

void CompareWithOracle(RoundLog& log, const char* what,
                       const Selection& oracle, const Selection& actual) {
  if (SameSelection(oracle, actual)) return;
  log.Diverge(util::StringPrintf(
      "%s diverges from oracle: %s score %.17g vs %s score %.17g", what,
      UsersToString(actual.users).c_str(), actual.score,
      UsersToString(oracle.users).c_str(), oracle.score));
}

/// Runs the serve path over `plan` and compares every response variant
/// against the already-verified direct selections.
void CheckServePath(RoundLog& log, const datagen::Dataset& dataset,
                    const RoundPlan& plan, const Selection& oracle,
                    const DiversificationInstance& instance,
                    const Result<CustomSelection>& custom,
                    const CustomizationFeedback& feedback) {
  serve::SnapshotOptions snapshot_options;
  snapshot_options.instance = plan.instance;
  Result<std::shared_ptr<const serve::Snapshot>> snapshot =
      serve::Snapshot::Build(dataset.repository.Clone(), snapshot_options,
                             /*generation=*/log.seed);
  if (!snapshot.ok()) {
    log.Diverge("Snapshot::Build failed: " + snapshot.status().message());
    return;
  }

  serve::ServiceOptions cached_options;
  cached_options.cache_entries = 64;
  cached_options.default_deadline_ms = 0;  // admission timing is not under test
  serve::SelectionService cached(snapshot.value(), cached_options);
  serve::ServiceOptions uncached_options = cached_options;
  uncached_options.cache_entries = 0;
  serve::SelectionService uncached(snapshot.value(), uncached_options);

  for (const GreedyMode mode :
       {GreedyMode::kPlainScan, GreedyMode::kLazyHeap}) {
    serve::SelectionRequest request;
    request.budget = plan.budget;
    request.mode = mode;
    Result<serve::ServiceReply> first = cached.Select(request);
    Result<serve::ServiceReply> again = cached.Select(request);
    Result<serve::ServiceReply> direct = uncached.Select(request);
    if (!first.ok() || !again.ok() || !direct.ok()) {
      log.Diverge("serve Select failed: " +
                  (!first.ok() ? first.status()
                               : !again.ok() ? again.status()
                                             : direct.status())
                      .message());
      return;
    }
    if (first->cache_hit || !again->cache_hit) {
      log.Diverge("serve cache hit pattern wrong (want miss then hit)");
    }
    if (again->body != first->body) {
      log.Diverge("cached serve body differs from the uncached original");
    }
    if (direct->body != first->body) {
      log.Diverge("cache-disabled serve body differs from cached service");
    }
    Result<std::vector<UserId>> served = UsersFromBody(first->body);
    if (!served.ok()) {
      log.Diverge("serve body unparseable: " + served.status().message());
    } else if (served.value() != oracle.users) {
      log.Diverge(util::StringPrintf(
          "serve (%s) selected %s, oracle %s",
          std::string(serve::SelectorName(mode)).c_str(),
          UsersToString(served.value()).c_str(),
          UsersToString(oracle.users).c_str()));
    }
  }

  // Single-flight: N identical requests against a cold key, issued
  // concurrently, must run exactly one selection. The leader parks inside
  // its admission slot until every follower has joined the flight, so the
  // coalescing is forced rather than timing-dependent; the followers then
  // share the leader's bytes.
  {
    constexpr std::size_t kCallers = 4;
    serve::ServiceOptions coalesce_options = cached_options;
    std::atomic<std::size_t> admissions{0};
    std::atomic<std::size_t> joined{0};
    coalesce_options.post_admission_hook = [&admissions, &joined] {
      ++admissions;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (joined.load() < kCallers - 1 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    serve::SelectionService coalesced(snapshot.value(), coalesce_options);
    coalesced.single_flight().set_join_hook([&joined] { ++joined; });

    serve::SelectionRequest request;
    request.budget = plan.budget;
    std::vector<std::optional<Result<serve::ServiceReply>>> replies(kCallers);
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t i = 0; i < kCallers; ++i) {
      callers.emplace_back([&coalesced, &replies, &request, i] {
        replies[i] = coalesced.Select(request);
      });
    }
    for (std::thread& caller : callers) caller.join();

    if (admissions.load() != 1) {
      log.Diverge(util::StringPrintf(
          "single-flight ran %zu selections for %zu identical requests "
          "(want 1)",
          admissions.load(), kCallers));
    }
    std::size_t shared = 0;
    for (std::size_t i = 0; i < kCallers; ++i) {
      if (!replies[i].has_value() || !replies[i]->ok()) {
        log.Diverge(
            "single-flight Select failed: " +
            (replies[i].has_value() ? replies[i]->status().message()
                                    : std::string("reply never arrived")));
        continue;
      }
      const serve::ServiceReply& reply = replies[i]->value();
      if (reply.coalesced) ++shared;
      Result<std::vector<UserId>> served = UsersFromBody(reply.body);
      if (!served.ok()) {
        log.Diverge("single-flight body unparseable: " +
                    served.status().message());
      } else if (served.value() != oracle.users) {
        log.Diverge(util::StringPrintf(
            "single-flight caller %zu selected %s, oracle %s", i,
            UsersToString(served.value()).c_str(),
            UsersToString(oracle.users).c_str()));
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (replies[j].has_value() && replies[j]->ok() &&
            replies[j]->value().body != reply.body) {
          log.Diverge(util::StringPrintf(
              "single-flight bodies diverge between callers %zu and %zu", j,
              i));
        }
      }
    }
    if (shared != kCallers - 1) {
      log.Diverge(util::StringPrintf(
          "single-flight shared %zu of %zu replies (want %zu)", shared,
          kCallers, kCallers - 1));
    }
  }

  // Customized request through the wire, against SelectCustomized.
  if (custom.ok()) {
    serve::SelectionRequest request;
    request.budget = plan.budget;
    for (GroupId g : feedback.priority) {
      request.priority.push_back(instance.groups().label(g));
    }
    for (GroupId g : feedback.must_not) {
      request.must_not.push_back(instance.groups().label(g));
    }
    Result<serve::ServiceReply> reply = uncached.Select(request);
    if (!reply.ok()) {
      log.Diverge("serve customized Select failed: " +
                  reply.status().message());
      return;
    }
    Result<std::vector<UserId>> served = UsersFromBody(reply->body);
    if (!served.ok()) {
      log.Diverge("serve customized body unparseable: " +
                  served.status().message());
    } else if (served.value() != custom->selection.users) {
      log.Diverge(util::StringPrintf(
          "serve customized selected %s, SelectCustomized %s",
          UsersToString(served.value()).c_str(),
          UsersToString(custom->selection.users).c_str()));
    }
  }
}

/// One sharded selection's contract checks (DESIGN.md §13): structural
/// sanity of the merged set and the candidate pools, the merged score
/// rescored exactly by the unsharded oracle scorer, byte-identity to the
/// single-snapshot oracle at K=1, and the proven (1−1/e)²/min(K,B) bound
/// at K>1.
void CheckShardedSelection(RoundLog& log, const std::string& what,
                           const shard::ShardedSnapshot& sharded,
                           const shard::ShardedSelection& sel,
                           const RoundPlan& plan,
                           const DiversificationInstance& instance,
                           const Selection& oracle, double bound) {
  const Selection& merged = sel.merged;
  const std::size_t want = std::min(plan.budget, sharded.user_count());
  if (merged.users.size() != want) {
    log.Diverge(util::StringPrintf("%s selected %zu users, want %zu",
                                   what.c_str(), merged.users.size(), want));
    return;
  }
  std::vector<UserId> sorted = merged.users;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    log.Diverge(what + " selected a duplicate user: " +
                UsersToString(merged.users));
    return;
  }
  if (!sorted.empty() && sorted.back() >= sharded.user_count()) {
    log.Diverge(what + " selected an out-of-range user: " +
                UsersToString(merged.users));
    return;
  }
  if (sel.pool_sizes.size() != sharded.shard_count()) {
    log.Diverge(util::StringPrintf("%s reported %zu pools for %zu shards",
                                   what.c_str(), sel.pool_sizes.size(),
                                   sharded.shard_count()));
  }
  std::size_t pool_total = 0;
  for (const std::size_t pool : sel.pool_sizes) pool_total += pool;
  if (pool_total != sel.candidate_count) {
    log.Diverge(util::StringPrintf(
        "%s pool sizes sum to %zu but %zu candidates entered the merge",
        what.c_str(), pool_total, sel.candidate_count));
  }
  // The merged score must be the exact global score of the merged set —
  // Iden/LBS arithmetic is integer-exact, so == not within-epsilon.
  const double rescored = OracleScore(instance, merged.users);
  if (rescored != merged.score) {
    log.Diverge(util::StringPrintf(
        "%s reported score %.17g but the oracle rescores %s as %.17g",
        what.c_str(), merged.score, UsersToString(merged.users).c_str(),
        rescored));
  }
  if (sharded.shard_count() == 1) {
    CompareWithOracle(log, what.c_str(), oracle, merged);
  } else if (merged.score < bound * oracle.score) {
    log.Diverge(util::StringPrintf(
        "%s score %.17g below the two-round bound %.17g (= %.4f x oracle "
        "%.17g)",
        what.c_str(), merged.score, bound * oracle.score, bound,
        oracle.score));
  }
}

/// Sweeps the sharded engine over `options.shard_counts` × both partition
/// strategies × `options.shard_thread_counts` × both greedy modes, then
/// (for K>1) drives the sharded serve path and compares its responses to
/// the direct selector.
void CheckShardedPath(RoundLog& log, const datagen::Dataset& dataset,
                      const RoundPlan& plan,
                      const DiversificationInstance& instance,
                      const Selection& oracle, const DiffOptions& options) {
  const double greedy_factor = 1.0 - std::exp(-1.0);
  for (const std::size_t num_shards : options.shard_counts) {
    if (num_shards == 0) continue;
    const double bound =
        greedy_factor * greedy_factor /
        static_cast<double>(
            std::min<std::size_t>(num_shards, std::max<std::size_t>(
                                                  plan.budget, 1)));
    for (const shard::PartitionStrategy strategy :
         {shard::PartitionStrategy::kHashUsers,
          shard::PartitionStrategy::kGroupAffine}) {
      shard::ShardOptions shard_options;
      shard_options.num_shards = num_shards;
      shard_options.strategy = strategy;
      const std::string tag = util::StringPrintf(
          "sharded K=%zu/%s", num_shards,
          std::string(shard::PartitionStrategyName(strategy)).c_str());
      // Partitioning, shard builds, and both selection rounds are all
      // deterministic in the input alone, so every (threads, mode) cell
      // must reproduce one reference selection byte for byte.
      std::optional<Selection> reference;
      for (const std::size_t threads : options.shard_thread_counts) {
        util::ThreadPool::SetGlobalThreadCount(threads);
        Result<std::shared_ptr<const shard::ShardedSnapshot>> snapshot =
            shard::ShardedSnapshot::Build(dataset.repository, plan.instance,
                                          shard_options, log.seed);
        if (!snapshot.ok()) {
          log.Diverge(tag + ": ShardedSnapshot::Build failed: " +
                      snapshot.status().message());
          break;
        }
        const shard::ShardedSnapshot& sharded = *snapshot.value();
        if (sharded.user_count() != dataset.repository.user_count()) {
          log.Diverge(util::StringPrintf(
              "%s: shards hold %zu users, repository has %zu", tag.c_str(),
              sharded.user_count(), dataset.repository.user_count()));
        }
        if (sharded.group_count() != instance.groups().group_count()) {
          log.Diverge(util::StringPrintf(
              "%s: scheme has %zu groups, unsharded index has %zu",
              tag.c_str(), sharded.group_count(),
              instance.groups().group_count()));
        }
        for (const GreedyMode mode :
             {GreedyMode::kPlainScan, GreedyMode::kLazyHeap}) {
          Result<shard::ShardedSelection> sel =
              shard::ShardedSelector(mode).Select(sharded, plan.budget);
          const std::string what = util::StringPrintf(
              "%s %s @%zu threads", tag.c_str(),
              std::string(serve::SelectorName(mode)).c_str(), threads);
          if (!sel.ok()) {
            log.Diverge(what + " failed: " + sel.status().message());
            continue;
          }
          CheckShardedSelection(log, what, sharded, sel.value(), plan,
                                instance, oracle, bound);
          if (!reference.has_value()) {
            reference = sel->merged;
          } else if (!SameSelection(*reference, sel->merged)) {
            log.Diverge(util::StringPrintf(
                "%s selected %s score %.17g; the first cell of this sweep "
                "selected %s score %.17g",
                what.c_str(), UsersToString(sel->merged.users).c_str(),
                sel->merged.score, UsersToString(reference->users).c_str(),
                reference->score));
          }
        }
      }

      // The sharded serve path (serve::Snapshot only routes to it at
      // K>1): served users must match the direct selector, cached and
      // uncached bodies must agree, and unsupported features must map to
      // Unimplemented rather than wrong answers.
      if (!options.with_serve || num_shards <= 1 || !reference.has_value()) {
        continue;
      }
      serve::SnapshotOptions snapshot_options;
      snapshot_options.instance = plan.instance;
      snapshot_options.shard = shard_options;
      Result<std::shared_ptr<const serve::Snapshot>> snapshot =
          serve::Snapshot::Build(dataset.repository.Clone(),
                                 snapshot_options, /*generation=*/log.seed);
      if (!snapshot.ok()) {
        log.Diverge(tag + ": sharded serve Snapshot::Build failed: " +
                    snapshot.status().message());
        continue;
      }
      serve::ServiceOptions service_options;
      service_options.cache_entries = 64;
      service_options.default_deadline_ms = 0;
      serve::SelectionService service(snapshot.value(), service_options);
      serve::SelectionRequest request;
      request.budget = plan.budget;
      Result<serve::ServiceReply> first = service.Select(request);
      Result<serve::ServiceReply> again = service.Select(request);
      if (!first.ok() || !again.ok()) {
        log.Diverge(tag + ": sharded serve Select failed: " +
                    (!first.ok() ? first.status() : again.status()).message());
        continue;
      }
      if (first->cache_hit || !again->cache_hit ||
          again->body != first->body) {
        log.Diverge(tag + ": sharded serve cache replay is not byte-"
                          "identical to the original response");
      }
      Result<std::vector<UserId>> served = UsersFromBody(first->body);
      if (!served.ok()) {
        log.Diverge(tag + ": sharded serve body unparseable: " +
                    served.status().message());
      } else if (served.value() != reference->users) {
        log.Diverge(util::StringPrintf(
            "%s: serve selected %s, direct selector %s", tag.c_str(),
            UsersToString(served.value()).c_str(),
            UsersToString(reference->users).c_str()));
      }
      serve::SelectionRequest explain_request;
      explain_request.budget = plan.budget;
      explain_request.explain = true;
      Result<serve::ServiceReply> explained = service.Select(explain_request);
      if (explained.ok() ||
          explained.status().code() != StatusCode::kUnimplemented) {
        log.Diverge(tag + ": sharded serve explain request should be "
                          "Unimplemented");
      }
    }
  }
}

void RunRound(RoundLog& log, const DiffOptions& options, int round) {
  util::Rng rng(log.seed);
  RoundPlan plan;
  plan.tiny = round % 4 == 3;  // every 4th round small enough for exhaustive
  plan.config = MakeConfig(rng, log.seed, plan.tiny);
  plan.instance.weight_kind =
      rng.NextBernoulli(0.5) ? WeightKind::kLbs : WeightKind::kIden;
  plan.instance.coverage_kind =
      rng.NextBernoulli(0.5) ? CoverageKind::kProp : CoverageKind::kSingle;
  plan.instance.grouping.max_buckets = 2 + static_cast<int>(rng.NextBounded(3));
  plan.budget = 1 + rng.NextBounded(6);
  plan.instance.budget = plan.budget;

  Result<datagen::Dataset> dataset = datagen::GenerateDataset(plan.config);
  if (!dataset.ok()) {
    log.Diverge("datagen failed: " + dataset.status().message());
    return;
  }
  Result<DiversificationInstance> instance =
      DiversificationInstance::Build(dataset->repository, plan.instance);
  if (!instance.ok()) {
    log.Diverge("instance build failed: " + instance.status().message());
    return;
  }
  if (Status adjacency = CheckAdjacency(instance.value()); !adjacency.ok()) {
    log.Diverge(adjacency.message());
    return;
  }

  Result<Selection> oracle = OracleGreedy(instance.value(), plan.budget);
  Result<Selection> plain =
      RunGreedy(instance.value(), plan.budget, GreedyMode::kPlainScan);
  Result<Selection> heap =
      RunGreedy(instance.value(), plan.budget, GreedyMode::kLazyHeap);
  if (!oracle.ok() || !plain.ok() || !heap.ok()) {
    log.Diverge("selector failed: " +
                (!oracle.ok() ? oracle.status()
                              : !plain.ok() ? plain.status() : heap.status())
                    .message());
    return;
  }
  CompareWithOracle(log, "plain-scan greedy", oracle.value(), plain.value());
  CompareWithOracle(log, "lazy-heap greedy", oracle.value(), heap.value());

  for (const std::string& violation :
       CheckGreedyRun(instance.value(), plain.value(), plan.budget)
           .violations) {
    log.Diverge("invariant: " + violation);
  }
  if (plan.tiny) {
    for (const std::string& violation :
         CheckApproximationRatio(instance.value(), plain.value(), plan.budget)
             .violations) {
      log.Diverge("approximation: " + violation);
    }
  }

  // Customized path: a random priority group and (sometimes) a must_not
  // filter; plain vs heap must agree, and both must match the oracle run
  // over the refined pool under the derived tiers.
  CustomizationFeedback feedback;
  const std::size_t num_groups = instance->groups().group_count();
  Result<CustomSelection> custom =
      Status::FailedPrecondition("customization not attempted");
  if (num_groups > 0) {
    feedback.priority.push_back(
        static_cast<GroupId>(rng.NextBounded(num_groups)));
    if (rng.NextBernoulli(0.5)) {
      feedback.must_not.push_back(
          static_cast<GroupId>(rng.NextBounded(num_groups)));
    }
    custom = SelectCustomized(instance.value(), feedback, plan.budget,
                              GreedyMode::kPlainScan);
    Result<CustomSelection> custom_heap = SelectCustomized(
        instance.value(), feedback, plan.budget, GreedyMode::kLazyHeap);
    if (custom.ok() != custom_heap.ok()) {
      log.Diverge("customized plain vs heap disagree on status");
    } else if (custom.ok() &&
               !SameSelection(custom->selection, custom_heap->selection)) {
      log.Diverge(util::StringPrintf(
          "customized heap selected %s, plain %s",
          UsersToString(custom_heap->selection.users).c_str(),
          UsersToString(custom->selection.users).c_str()));
    }
    if (custom.ok()) {
      Result<std::vector<UserId>> refined =
          RefineUsers(instance.value(), feedback);
      if (refined.ok()) {
        Result<Selection> custom_oracle = OracleGreedy(
            instance.value(), plan.budget, refined.value(),
            TiersForPriority(num_groups, feedback.priority));
        if (custom_oracle.ok() &&
            custom_oracle->users != custom->selection.users) {
          log.Diverge(util::StringPrintf(
              "customized greedy selected %s, oracle %s",
              UsersToString(custom->selection.users).c_str(),
              UsersToString(custom_oracle->users).c_str()));
        }
      }
    }
  }

  // Thread × kernel-variant sweep: rebuild the index and rerun every
  // selector at each pool size, under forced-scalar and native kernel
  // dispatch; the determinism contract (DESIGN.md §7, §12) promises
  // byte-identical output at any thread count under either variant.
  const std::vector<kernels::Variant> variants =
      options.sweep_kernel_variants
          ? std::vector<kernels::Variant>{kernels::Variant::kScalar,
                                          kernels::Variant::kAvx2}
          : std::vector<kernels::Variant>{kernels::ActiveVariant()};
  for (const kernels::Variant requested : variants) {
    if (options.sweep_kernel_variants) kernels::ForceVariant(requested);
    // Forcing kAvx2 on a CPU without it demotes to scalar; report what ran.
    const std::string vname(kernels::VariantName(kernels::ActiveVariant()));
    for (const std::size_t threads : options.thread_counts) {
      util::ThreadPool::SetGlobalThreadCount(threads);
      Result<DiversificationInstance> rebuilt =
          DiversificationInstance::Build(dataset->repository, plan.instance);
      if (!rebuilt.ok()) {
        log.Diverge(util::StringPrintf(
            "instance rebuild failed at %zu threads (%s kernels)", threads,
            vname.c_str()));
        continue;
      }
      if (Status adjacency = CheckAdjacency(rebuilt.value());
          !adjacency.ok()) {
        log.Diverge(util::StringPrintf("at %zu threads (%s kernels): ",
                                       threads, vname.c_str()) +
                    adjacency.message());
      }
      Result<Selection> plain_t =
          RunGreedy(rebuilt.value(), plan.budget, GreedyMode::kPlainScan);
      Result<Selection> heap_t =
          RunGreedy(rebuilt.value(), plan.budget, GreedyMode::kLazyHeap);
      if (!plain_t.ok() || !heap_t.ok()) {
        log.Diverge(util::StringPrintf(
            "selector failed at %zu threads (%s kernels)", threads,
            vname.c_str()));
        continue;
      }
      if (!SameSelection(plain_t.value(), oracle.value())) {
        log.Diverge(util::StringPrintf(
            "plain-scan at %zu threads (%s kernels) selected %s", threads,
            vname.c_str(), UsersToString(plain_t->users).c_str()));
      }
      if (!SameSelection(heap_t.value(), oracle.value())) {
        log.Diverge(util::StringPrintf(
            "lazy heap at %zu threads (%s kernels) selected %s", threads,
            vname.c_str(), UsersToString(heap_t->users).c_str()));
      }
    }
  }
  kernels::ForceVariant(std::nullopt);

  if (options.with_serve) {
    CheckServePath(log, dataset.value(), plan, oracle.value(),
                   instance.value(), custom, feedback);
  }

  if (!options.shard_counts.empty()) {
    CheckShardedPath(log, dataset.value(), plan, instance.value(),
                     oracle.value(), options);
  }
}

}  // namespace

DiffReport RunDifferential(const DiffOptions& options) {
  DiffReport report;
  const std::size_t prior_threads = util::ThreadPool::GlobalThreadCount();
  for (int round = 0; round < options.rounds; ++round) {
    RoundLog log{options.seed + static_cast<std::uint64_t>(round), &report};
    RunRound(log, options, round);
    ++report.rounds_run;
    util::ThreadPool::SetGlobalThreadCount(prior_threads);
  }
  return report;
}

}  // namespace podium::check
