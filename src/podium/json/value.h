#ifndef PODIUM_JSON_VALUE_H_
#define PODIUM_JSON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "podium/util/result.h"

namespace podium::json {

class Value;

/// Insertion-ordered string -> Value mapping.
///
/// Profiles serialize property names in a stable order; std::map would
/// re-sort keys and a hash map would scramble them, so the object keeps a
/// vector of entries plus a lookup index.
class Object {
 public:
  using Entry = std::pair<std::string, Value>;

  Object();
  Object(const Object& other);
  Object(Object&&) noexcept;
  Object& operator=(const Object& other);
  Object& operator=(Object&&) noexcept;
  ~Object();

  /// Inserts or overwrites `key`.
  void Set(std::string key, Value value);

  /// Returns the value for `key`, or nullptr if absent.
  const Value* Find(std::string_view key) const;

  bool Contains(std::string_view key) const { return Find(key) != nullptr; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

using Array = std::vector<Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

std::string_view TypeName(Type type);

/// A JSON document node: null, bool, number (double), string, array or
/// object. Small and value-semantic; arrays/objects are heap-backed.
class Value {
 public:
  /// Null by default.
  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(runtime/explicit)
  Value(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Value(double n) : type_(Type::kNumber), number_(n) {}           // NOLINT
  Value(int n) : Value(static_cast<double>(n)) {}                 // NOLINT
  Value(std::int64_t n) : Value(static_cast<double>(n)) {}        // NOLINT
  Value(std::size_t n) : Value(static_cast<double>(n)) {}         // NOLINT
  Value(std::string s);                                           // NOLINT
  Value(const char* s) : Value(std::string(s)) {}                 // NOLINT
  Value(std::string_view s) : Value(std::string(s)) {}            // NOLINT
  Value(Array a);                                                 // NOLINT
  Value(Object o);                                                // NOLINT

  Value(const Value& other);
  Value(Value&& other) noexcept;
  Value& operator=(const Value& other);
  Value& operator=(Value&& other) noexcept;
  ~Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Unchecked accessors; the caller must verify the type first.
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return *string_; }
  const Array& AsArray() const { return *array_; }
  Array& MutableArray() { return *array_; }
  const Object& AsObject() const { return *object_; }
  Object& MutableObject() { return *object_; }

  /// Checked accessors used when consuming untrusted documents.
  [[nodiscard]] Result<bool> GetBool() const;
  [[nodiscard]] Result<double> GetNumber() const;
  [[nodiscard]] Result<std::string> GetString() const;

  /// Deep structural equality (numbers compared exactly).
  friend bool operator==(const Value& a, const Value& b);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::shared_ptr<const std::string> string_;  // copy-on-write sharing
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

}  // namespace podium::json

#endif  // PODIUM_JSON_VALUE_H_
