#include "podium/json/value.h"

#include <algorithm>

namespace podium::json {

Object::Object() = default;
Object::Object(const Object& other) = default;
Object::Object(Object&&) noexcept = default;
Object& Object::operator=(const Object& other) = default;
Object& Object::operator=(Object&&) noexcept = default;
Object::~Object() = default;

void Object::Set(std::string key, Value value) {
  for (auto& [existing_key, existing_value] : entries_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(key), std::move(value));
}

const Value* Object::Find(std::string_view key) const {
  for (const auto& [existing_key, existing_value] : entries_) {
    if (existing_key == key) return &existing_value;
  }
  return nullptr;
}

std::string_view TypeName(Type type) {
  switch (type) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "bool";
    case Type::kNumber:
      return "number";
    case Type::kString:
      return "string";
    case Type::kArray:
      return "array";
    case Type::kObject:
      return "object";
  }
  return "unknown";
}

Value::Value(std::string s)
    : type_(Type::kString),
      string_(std::make_shared<const std::string>(std::move(s))) {}

Value::Value(Array a)
    : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}

Value::Value(Object o)
    : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

Value::Value(const Value& other)
    : type_(other.type_),
      bool_(other.bool_),
      number_(other.number_),
      string_(other.string_) {  // strings are immutable, safe to share
  if (other.array_) array_ = std::make_shared<Array>(*other.array_);
  if (other.object_) object_ = std::make_shared<Object>(*other.object_);
}

Value::Value(Value&& other) noexcept = default;

Value& Value::operator=(const Value& other) {
  if (this != &other) {
    Value copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Value& Value::operator=(Value&& other) noexcept = default;

Result<bool> Value::GetBool() const {
  if (!is_bool()) {
    return Status::ParseError("expected bool, found " +
                              std::string(TypeName(type_)));
  }
  return bool_;
}

Result<double> Value::GetNumber() const {
  if (!is_number()) {
    return Status::ParseError("expected number, found " +
                              std::string(TypeName(type_)));
  }
  return number_;
}

Result<std::string> Value::GetString() const {
  if (!is_string()) {
    return Status::ParseError("expected string, found " +
                              std::string(TypeName(type_)));
  }
  return *string_;
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return a.bool_ == b.bool_;
    case Type::kNumber:
      return a.number_ == b.number_;
    case Type::kString:
      return *a.string_ == *b.string_;
    case Type::kArray:
      return *a.array_ == *b.array_;
    case Type::kObject: {
      const auto& ea = a.object_->entries();
      const auto& eb = b.object_->entries();
      if (ea.size() != eb.size()) return false;
      // Key order is not significant for equality.
      for (const auto& [key, value] : ea) {
        const Value* other = b.object_->Find(key);
        if (other == nullptr || !(*other == value)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace podium::json
