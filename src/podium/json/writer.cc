#include "podium/json/writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace podium::json {

namespace {

void AppendEscaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through unescaped.
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(double value, std::string& out) {
  if (std::isnan(value) || std::isinf(value)) {
    // JSON has no NaN/Inf; emit null, the conventional lossy fallback.
    out += "null";
    return;
  }
  // Integers within double-exact range print without a fraction.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
    return;
  }
  // %.17g always round-trips; try %.15g first for compactness.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  if (std::strtod(buf, nullptr) != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out += buf;
}

class Writer {
 public:
  explicit Writer(const WriteOptions& options) : options_(options) {}

  std::string Run(const Value& value) {
    Append(value, 0);
    return std::move(out_);
  }

 private:
  void Newline(int depth) {
    if (options_.indent <= 0) return;
    out_.push_back('\n');
    out_.append(static_cast<std::size_t>(options_.indent * depth), ' ');
  }

  void Append(const Value& value, int depth) {
    switch (value.type()) {
      case Type::kNull:
        out_ += "null";
        break;
      case Type::kBool:
        out_ += value.AsBool() ? "true" : "false";
        break;
      case Type::kNumber:
        AppendNumber(value.AsNumber(), out_);
        break;
      case Type::kString:
        AppendEscaped(value.AsString(), out_);
        break;
      case Type::kArray: {
        const Array& array = value.AsArray();
        if (array.empty()) {
          out_ += "[]";
          break;
        }
        out_.push_back('[');
        for (std::size_t i = 0; i < array.size(); ++i) {
          if (i > 0) out_.push_back(',');
          Newline(depth + 1);
          Append(array[i], depth + 1);
        }
        Newline(depth);
        out_.push_back(']');
        break;
      }
      case Type::kObject: {
        const Object& object = value.AsObject();
        if (object.empty()) {
          out_ += "{}";
          break;
        }
        out_.push_back('{');
        bool first = true;
        for (const auto& [key, entry] : object.entries()) {
          if (!first) out_.push_back(',');
          first = false;
          Newline(depth + 1);
          AppendEscaped(key, out_);
          out_.push_back(':');
          if (options_.indent > 0) out_.push_back(' ');
          Append(entry, depth + 1);
        }
        Newline(depth);
        out_.push_back('}');
        break;
      }
    }
  }

  const WriteOptions& options_;
  std::string out_;
};

}  // namespace

std::string Write(const Value& value, const WriteOptions& options) {
  Writer writer(options);
  return writer.Run(value);
}

Status WriteFile(const Value& value, const std::string& path,
                 const WriteOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  const std::string text = Write(value, options);
  out << text << '\n';
  out.flush();
  if (!out) return Status::IoError("error writing file: " + path);
  return Status::Ok();
}

}  // namespace podium::json
