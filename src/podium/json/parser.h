#ifndef PODIUM_JSON_PARSER_H_
#define PODIUM_JSON_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "podium/json/value.h"
#include "podium/util/result.h"

namespace podium::json {

/// Parser limits; defaults are generous for profile repositories. Servers
/// parsing untrusted input should tighten all three (see serve/handlers.cc
/// for the limits the HTTP front end uses). Violations are ParseError
/// statuses carrying the line:column position where the limit was crossed.
struct ParseOptions {
  /// Maximum nesting depth of arrays/objects before the parser bails out.
  int max_depth = 128;

  /// Maximum size of the whole document in bytes; 0 means unlimited.
  std::size_t max_document_bytes = 0;

  /// Maximum number of values (nulls, bools, numbers, strings, arrays,
  /// objects — object keys not counted) in the document; 0 means
  /// unlimited. Bounds the parsed tree's memory on hostile inputs that
  /// stay shallow but wide.
  std::size_t max_total_nodes = 0;
};

/// Parses a complete JSON document from `text`. Trailing non-whitespace is
/// an error. Errors carry a line:column position.
[[nodiscard]] Result<Value> Parse(std::string_view text, const ParseOptions& options = {});

/// Parses the JSON document in the file at `path`.
[[nodiscard]] Result<Value> ParseFile(const std::string& path,
                        const ParseOptions& options = {});

}  // namespace podium::json

#endif  // PODIUM_JSON_PARSER_H_
