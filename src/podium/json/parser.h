#ifndef PODIUM_JSON_PARSER_H_
#define PODIUM_JSON_PARSER_H_

#include <string>
#include <string_view>

#include "podium/json/value.h"
#include "podium/util/result.h"

namespace podium::json {

/// Parser limits; defaults are generous for profile repositories.
struct ParseOptions {
  /// Maximum nesting depth of arrays/objects before the parser bails out.
  int max_depth = 128;
};

/// Parses a complete JSON document from `text`. Trailing non-whitespace is
/// an error. Errors carry a line:column position.
Result<Value> Parse(std::string_view text, const ParseOptions& options = {});

/// Parses the JSON document in the file at `path`.
Result<Value> ParseFile(const std::string& path,
                        const ParseOptions& options = {});

}  // namespace podium::json

#endif  // PODIUM_JSON_PARSER_H_
