#ifndef PODIUM_JSON_WRITER_H_
#define PODIUM_JSON_WRITER_H_

#include <string>

#include "podium/json/value.h"
#include "podium/util/status.h"

namespace podium::json {

struct WriteOptions {
  /// Pretty-print with this many spaces per indent level; 0 emits a compact
  /// single-line document.
  int indent = 0;
};

/// Serializes `value` as JSON text. Numbers round-trip through shortest
/// representation that preserves the double exactly.
std::string Write(const Value& value, const WriteOptions& options = {});

/// Writes `value` to the file at `path`, replacing any existing contents.
[[nodiscard]] Status WriteFile(const Value& value, const std::string& path,
                 const WriteOptions& options = {});

}  // namespace podium::json

#endif  // PODIUM_JSON_WRITER_H_
