#include "podium/json/parser.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "podium/util/string_util.h"

namespace podium::json {

namespace {

/// Recursive-descent JSON parser over a string_view. Tracks line/column for
/// error messages and enforces a nesting depth limit.
class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Result<Value> ParseDocument() {
    if (options_.max_document_bytes > 0 &&
        text_.size() > options_.max_document_bytes) {
      return Error(util::StringPrintf(
          "document size %zu exceeds limit of %zu bytes", text_.size(),
          options_.max_document_bytes));
    }
    SkipWhitespace();
    Result<Value> value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(util::StringPrintf(
        "%s at line %d column %d", message.c_str(), line_, Column()));
  }

  int Column() const { return static_cast<int>(pos_ - line_start_) + 1; }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
      } else {
        break;
      }
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    for (std::size_t i = 0; i < literal.size(); ++i) Advance();
    return true;
  }

  Result<Value> ParseValue(int depth) {
    // The root value sits at depth 0, so a document nested more than
    // max_depth levels deep is rejected exactly at the limit.
    if (depth >= options_.max_depth) return Error("nesting depth exceeded");
    if (options_.max_total_nodes > 0 &&
        ++node_count_ > options_.max_total_nodes) {
      return Error(util::StringPrintf("node count exceeds limit of %zu",
                                      options_.max_total_nodes));
    }
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Value(std::move(s).value());
      }
      case 't':
        if (ConsumeLiteral("true")) return Value(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value(nullptr);
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject(int depth) {
    Advance();  // '{'
    Object object;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      Advance();
      return Value(std::move(object));
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':' after key");
      Advance();
      SkipWhitespace();
      Result<Value> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      object.Set(std::move(key).value(), std::move(value).value());
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      char c = Advance();
      if (c == '}') break;
      if (c != ',') return Error("expected ',' or '}' in object");
    }
    return Value(std::move(object));
  }

  Result<Value> ParseArray(int depth) {
    Advance();  // '['
    Array array;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      Advance();
      return Value(std::move(array));
    }
    for (;;) {
      SkipWhitespace();
      Result<Value> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      array.push_back(std::move(value).value());
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      char c = Advance();
      if (c == ']') break;
      if (c != ',') return Error("expected ',' or ']' in array");
    }
    return Value(std::move(array));
  }

  Result<std::string> ParseString() {
    Advance();  // '"'
    std::string out;
    for (;;) {
      if (AtEnd()) return Error("unterminated string");
      char c = Advance();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      char esc = Advance();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          Result<unsigned> cp = ParseHex4();
          if (!cp.ok()) return cp.status();
          unsigned code_point = cp.value();
          // Combine surrogate pairs into a single code point.
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              Advance();
              Advance();
              Result<unsigned> low = ParseHex4();
              if (!low.ok()) return low.status();
              if (low.value() < 0xDC00 || low.value() > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              code_point = 0x10000 + ((code_point - 0xD800) << 10) +
                           (low.value() - 0xDC00);
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code_point, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return out;
  }

  Result<unsigned> ParseHex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return Error("truncated \\u escape");
      char c = Advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') Advance();
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Error("invalid number");
    }
    // Integer part: either a single 0 or a nonzero-led digit run.
    if (Peek() == '0') {
      Advance();
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') Advance();
    }
    if (!AtEnd() && Peek() == '.') {
      Advance();
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("expected digits after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') Advance();
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("expected digits in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') Advance();
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (errno == ERANGE) return Error("number out of range");
    if (end != token.c_str() + token.size()) return Error("invalid number");
    return Value(value);
  }

  std::string_view text_;
  const ParseOptions& options_;
  std::size_t node_count_ = 0;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::size_t line_start_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text, const ParseOptions& options) {
  Parser parser(text, options);
  return parser.ParseDocument();
}

Result<Value> ParseFile(const std::string& path, const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("error reading file: " + path);
  return Parse(buffer.str(), options);
}

}  // namespace podium::json
