#include "podium/serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "podium/obs/log.h"
#include "podium/obs/trace.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/string_util.h"

namespace podium::serve {

namespace {

/// Compact span rendering for sampled access-log lines:
/// "select:3.21ms,select/run:3.08ms" (child names prefixed by parent).
std::string RenderSpansCompact(const std::vector<obs::TraceSpan>& spans) {
  std::string out;
  std::vector<std::string> qualified(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::TraceSpan& span = spans[i];
    qualified[i] =
        span.parent >= 0 &&
                static_cast<std::size_t>(span.parent) < qualified.size()
            ? qualified[static_cast<std::size_t>(span.parent)] + "/" +
                  span.name
            : span.name;
    if (!out.empty()) out += ",";
    out += qualified[i];
    out += util::StringPrintf(":%.3fms", span.duration_seconds * 1e3);
  }
  return out;
}

double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse bind address '" +
                                   options_.bind_address + "'");
  }
  // The sockaddr cast is the POSIX socket-API calling convention.
  // podium-lint: allow(intrinsics-scope)
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    const Status error(StatusCode::kIoError,
                       std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return error;
  }
  if (::listen(fd, 128) != 0) {
    const Status error(StatusCode::kIoError,
                       std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return error;
  }
  socklen_t length = sizeof(address);
  // podium-lint: allow(intrinsics-scope)
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    const Status error(StatusCode::kIoError,
                       std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return error;
  }
  port_ = ntohs(address.sin_port);
  listen_fd_ = fd;

  stopping_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void HttpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_relaxed)) {
    // A second caller still waits for the first shutdown to finish.
  }
  if (listen_fd_ >= 0) {
    // Unblock accept(); closing also stops new connections.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    util::MutexLock lock(mutex_);
    // Unblock workers parked in recv on live connections.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  work_ready_.NotifyAll();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    util::MutexLock lock(mutex_);
    for (int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  stopped_.NotifyAll();
}

void HttpServer::Wait() {
  util::MutexLock lock(mutex_);
  while (!stopping_.load(std::memory_order_relaxed)) stopped_.Wait(lock);
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket gone
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (telemetry::Enabled()) {
      telemetry::MetricsRegistry::Global()
          .counter("serve.http.connections")
          .Add();
    }
    {
      util::MutexLock lock(mutex_);
      pending_.push_back(fd);
    }
    work_ready_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_.load(std::memory_order_relaxed) && pending_.empty()) {
        work_ready_.Wait(lock);
      }
      if (stopping_.load(std::memory_order_relaxed)) return;
      fd = pending_.front();
      pending_.pop_front();
      active_fds_.insert(fd);
    }
    HandleConnection(fd);
    {
      util::MutexLock lock(mutex_);
      active_fds_.erase(fd);
    }
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  BufferedReader reader(fd);
  for (;;) {
    Result<HttpRequest> request = ReadHttpRequest(reader, options_.limits);
    if (!request.ok()) {
      // NotFound = clean close between requests; anything else gets a 400
      // best-effort before hanging up.
      if (request.status().code() != StatusCode::kNotFound &&
          !stopping_.load(std::memory_order_relaxed)) {
        HttpResponse bad;
        bad.status = 400;
        bad.reason = "Bad Request";
        bad.body = request.status().ToString() + "\n";
        bad.headers.emplace_back("Content-Type", "text/plain");
        bad.headers.emplace_back("Connection", "close");
        (void)WriteAll(fd, SerializeResponse(bad));
      }
      return;
    }
    if (stopping_.load(std::memory_order_relaxed)) return;

    HttpResponse response = DispatchTraced(request.value());
    const std::string* connection = request->FindHeader("Connection");
    const bool close_requested =
        connection != nullptr && (*connection == "close" ||
                                  *connection == "Close");
    if (close_requested) {
      response.headers.emplace_back("Connection", "close");
    }
    if (!WriteAll(fd, SerializeResponse(response)).ok()) return;
    if (close_requested) return;
  }
}

HttpResponse HttpServer::DispatchTraced(const HttpRequest& request) {
  // Adopt a well-formed client trace id (so a caller can stitch our spans
  // into its own trace); mint one otherwise.
  obs::TraceId trace_id;
  if (const std::string* header = request.FindHeader("X-Podium-Trace-Id");
      header != nullptr) {
    trace_id = obs::TraceId::FromHex(*header).value_or(obs::TraceId{});
  }
  if (trace_id.IsZero()) trace_id = obs::TraceId::Generate();

  const double start_unix = UnixSecondsNow();
  obs::TraceContext trace(trace_id);
  HttpResponse response;
  {
    obs::TraceScope scope(&trace);
    response = handler_(request);
  }
  const double total_seconds = trace.ElapsedSeconds();
  const std::string trace_hex = trace_id.ToHex();
  response.headers.emplace_back("X-Podium-Trace-Id", trace_hex);

  obs::FinishedTrace finished;
  finished.trace_id = trace_hex;
  finished.method = request.method;
  finished.path = std::string(TargetPath(request.target));
  finished.http_status = response.status;
  finished.start_unix_seconds = start_unix;
  finished.total_seconds = total_seconds;
  finished.spans = trace.spans();

  const std::uint64_t n =
      request_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool sample_spans =
      options_.trace_log_every > 0 && n % options_.trace_log_every == 0;
  {
    obs::LogEntry line = obs::LogInfo("request");
    line.Str("method", finished.method)
        .Str("path", finished.path)
        .Num("status", finished.http_status)
        .Num("duration_ms", total_seconds * 1e3)
        .Num("bytes", static_cast<double>(response.body.size()))
        .TraceId(trace_hex);
    if (sample_spans && !finished.spans.empty()) {
      line.Str("spans", RenderSpansCompact(finished.spans));
    }
  }
  obs::TraceRing::Global().Record(std::move(finished));
  return response;
}

}  // namespace podium::serve
