#include "podium/serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "podium/obs/log.h"
#include "podium/obs/trace.h"
#include "podium/serve/io_util.h"
#include "podium/util/string_util.h"

namespace podium::serve {

namespace {

/// Compact span rendering for sampled access-log lines:
/// "select:3.21ms,select/run:3.08ms" (child names prefixed by parent).
std::string RenderSpansCompact(const std::vector<obs::TraceSpan>& spans) {
  std::string out;
  std::vector<std::string> qualified(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::TraceSpan& span = spans[i];
    qualified[i] =
        span.parent >= 0 &&
                static_cast<std::size_t>(span.parent) < qualified.size()
            ? qualified[static_cast<std::size_t>(span.parent)] + "/" +
                  span.name
            : span.name;
    if (!out.empty()) out += ",";
    out += qualified[i];
    out += util::StringPrintf(":%.3fms", span.duration_seconds * 1e3);
  }
  return out;
}

double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  // ScopedFd owns the socket across the error returns below; only the
  // success path hands it to listen_fd_.
  io::ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse bind address '" +
                                   options_.bind_address + "'");
  }
  // The sockaddr cast is the POSIX socket-API calling convention.
  // podium-lint: allow(intrinsics-scope)
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd.get(), 128) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t length = sizeof(address);
  // podium-lint: allow(intrinsics-scope)
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(address.sin_port);
  listen_fd_ = fd.Release();

  EventLoopOptions loop_options;
  loop_options.worker_threads = options_.worker_threads;
  loop_options.limits = options_.limits;
  loop_options.accept_backoff_ms = options_.accept_backoff_ms;
  loop_options.accept_fn = options_.accept_fn;
  loop_ = std::make_unique<EventLoop>(
      listen_fd_, loop_options,
      [this](const HttpRequest& request, double queue_seconds) {
        return DispatchTraced(request, queue_seconds);
      });
  if (Status started = loop_->Start(); !started.ok()) {
    loop_.reset();
    ::close(listen_fd_);
    listen_fd_ = -1;
    return started;
  }
  {
    util::MutexLock lock(mutex_);
    state_ = State::kRunning;
  }
  return Status::Ok();
}

void HttpServer::Stop() {
  {
    util::MutexLock lock(mutex_);
    switch (state_) {
      case State::kIdle:
      case State::kStopped:
        return;
      case State::kStopping:
        // Another thread is mid-shutdown: wait until it finishes rather
        // than racing it into the joins.
        while (state_ != State::kStopped) stopped_.Wait(lock);
        return;
      case State::kRunning:
        state_ = State::kStopping;
        break;
    }
  }
  loop_->Stop();
  loop_.reset();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    util::MutexLock lock(mutex_);
    state_ = State::kStopped;
  }
  stopped_.NotifyAll();
}

void HttpServer::Wait() {
  util::MutexLock lock(mutex_);
  while (state_ == State::kRunning || state_ == State::kStopping) {
    stopped_.Wait(lock);
  }
}

HttpResponse HttpServer::DispatchTraced(const HttpRequest& request,
                                        double queue_seconds) {
  // Adopt a well-formed client trace id (so a caller can stitch our spans
  // into its own trace); mint one otherwise.
  obs::TraceId trace_id;
  if (const std::string* header = request.FindHeader("X-Podium-Trace-Id");
      header != nullptr) {
    trace_id = obs::TraceId::FromHex(*header).value_or(obs::TraceId{});
  }
  if (trace_id.IsZero()) trace_id = obs::TraceId::Generate();

  const double start_unix = UnixSecondsNow();
  obs::TraceContext trace(trace_id);
  // The wait for a worker happened before this trace existed; project it
  // as a span at offset 0 so trace views show queueing next to handling.
  if (queue_seconds > 0.0) {
    trace.AddCompletedSpan("http.queue", 0.0, queue_seconds);
  }
  HttpResponse response;
  {
    obs::TraceScope scope(&trace);
    response = handler_(request);
  }
  const double total_seconds = trace.ElapsedSeconds();
  const std::string trace_hex = trace_id.ToHex();
  response.headers.emplace_back("X-Podium-Trace-Id", trace_hex);

  obs::FinishedTrace finished;
  finished.trace_id = trace_hex;
  finished.method = request.method;
  finished.path = std::string(TargetPath(request.target));
  finished.http_status = response.status;
  finished.start_unix_seconds = start_unix;
  finished.total_seconds = total_seconds;
  finished.spans = trace.spans();

  const std::uint64_t n =
      request_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool sample_spans =
      options_.trace_log_every > 0 && n % options_.trace_log_every == 0;
  {
    obs::LogEntry line = obs::LogInfo("request");
    line.Str("method", finished.method)
        .Str("path", finished.path)
        .Num("status", finished.http_status)
        .Num("duration_ms", total_seconds * 1e3)
        .Num("queue_ms", queue_seconds * 1e3)
        .Num("bytes", static_cast<double>(response.body.size()))
        .TraceId(trace_hex);
    if (sample_spans && !finished.spans.empty()) {
      line.Str("spans", RenderSpansCompact(finished.spans));
    }
  }
  obs::TraceRing::Global().Record(std::move(finished));
  return response;
}

}  // namespace podium::serve
