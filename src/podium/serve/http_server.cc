#include "podium/serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "podium/telemetry/telemetry.h"

namespace podium::serve {

HttpServer::HttpServer(HttpServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    const Status error(StatusCode::kIoError,
                       std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return error;
  }
  if (::listen(fd, 128) != 0) {
    const Status error(StatusCode::kIoError,
                       std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return error;
  }
  socklen_t length = sizeof(address);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    const Status error(StatusCode::kIoError,
                       std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return error;
  }
  port_ = ntohs(address.sin_port);
  listen_fd_ = fd;

  stopping_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void HttpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_relaxed)) {
    // A second caller still waits for the first shutdown to finish.
  }
  if (listen_fd_ >= 0) {
    // Unblock accept(); closing also stops new connections.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    util::MutexLock lock(mutex_);
    // Unblock workers parked in recv on live connections.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  work_ready_.NotifyAll();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    util::MutexLock lock(mutex_);
    for (int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  stopped_.NotifyAll();
}

void HttpServer::Wait() {
  util::MutexLock lock(mutex_);
  while (!stopping_.load(std::memory_order_relaxed)) stopped_.Wait(lock);
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket gone
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (telemetry::Enabled()) {
      telemetry::MetricsRegistry::Global()
          .counter("serve.http.connections")
          .Add();
    }
    {
      util::MutexLock lock(mutex_);
      pending_.push_back(fd);
    }
    work_ready_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_.load(std::memory_order_relaxed) && pending_.empty()) {
        work_ready_.Wait(lock);
      }
      if (stopping_.load(std::memory_order_relaxed)) return;
      fd = pending_.front();
      pending_.pop_front();
      active_fds_.insert(fd);
    }
    HandleConnection(fd);
    {
      util::MutexLock lock(mutex_);
      active_fds_.erase(fd);
    }
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  BufferedReader reader(fd);
  for (;;) {
    Result<HttpRequest> request = ReadHttpRequest(reader, options_.limits);
    if (!request.ok()) {
      // NotFound = clean close between requests; anything else gets a 400
      // best-effort before hanging up.
      if (request.status().code() != StatusCode::kNotFound &&
          !stopping_.load(std::memory_order_relaxed)) {
        HttpResponse bad;
        bad.status = 400;
        bad.reason = "Bad Request";
        bad.body = request.status().ToString() + "\n";
        bad.headers.emplace_back("Content-Type", "text/plain");
        bad.headers.emplace_back("Connection", "close");
        (void)WriteAll(fd, SerializeResponse(bad));
      }
      return;
    }
    if (stopping_.load(std::memory_order_relaxed)) return;

    HttpResponse response = handler_(request.value());
    const std::string* connection = request->FindHeader("Connection");
    const bool close_requested =
        connection != nullptr && (*connection == "close" ||
                                  *connection == "Close");
    if (close_requested) {
      response.headers.emplace_back("Connection", "close");
    }
    if (!WriteAll(fd, SerializeResponse(response)).ok()) return;
    if (close_requested) return;
  }
}

}  // namespace podium::serve
