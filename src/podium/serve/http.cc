#include "podium/serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>

#include "podium/serve/io_util.h"
#include "podium/util/string_util.h"

namespace podium::serve {

namespace {

char LowerAscii(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (LowerAscii(a[i]) != LowerAscii(b[i])) return false;
  }
  return true;
}

const std::string* FindHeaderIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

struct ParsedHead {
  std::string first_line;
  std::vector<std::pair<std::string, std::string>> headers;
};

Result<ParsedHead> ParseHead(const std::string& block) {
  ParsedHead head;
  std::size_t pos = 0;
  bool first = true;
  while (pos < block.size()) {
    const std::size_t eol = block.find("\r\n", pos);
    if (eol == std::string::npos) break;
    const std::string_view line(block.data() + pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    if (first) {
      head.first_line = std::string(line);
      first = false;
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("malformed HTTP header line");
    }
    head.headers.emplace_back(
        std::string(util::StripWhitespace(line.substr(0, colon))),
        std::string(util::StripWhitespace(line.substr(colon + 1))));
  }
  if (first) return Status::ParseError("empty HTTP message head");
  return head;
}

// Strict Content-Length (request-smuggling hardening): the value must be
// pure ASCII digits — no sign, no embedded whitespace, no comma list —
// and duplicate headers must agree byte for byte; a conflicting duplicate
// is how smuggled payloads slip past intermediaries.
Result<std::size_t> ContentLength(
    const std::vector<std::pair<std::string, std::string>>& headers) {
  const std::string* value = nullptr;
  for (const auto& [key, candidate] : headers) {
    if (!EqualsIgnoreCase(key, "Content-Length")) continue;
    if (value != nullptr && *value != candidate) {
      return Status::ParseError("conflicting Content-Length headers");
    }
    value = &candidate;
  }
  if (value == nullptr) return static_cast<std::size_t>(0);
  if (value->empty()) return Status::ParseError("empty Content-Length");
  std::size_t parsed = 0;
  for (const char c : *value) {
    if (c < '0' || c > '9') {
      return Status::ParseError("invalid Content-Length '" + *value + "'");
    }
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (parsed > (std::numeric_limits<std::size_t>::max() - digit) / 10) {
      return Status::ParseError("Content-Length overflows");
    }
    parsed = parsed * 10 + digit;
  }
  return parsed;
}

/// Builds a request (sans body) out of a parsed head: request-line
/// validation plus the Transfer-Encoding rejection shared by the blocking
/// and the incremental parse paths.
Result<HttpRequest> RequestFromHead(ParsedHead head) {
  HttpRequest request;
  const std::vector<std::string> parts = util::Split(head.first_line, ' ');
  if (parts.size() != 3) {
    return Status::ParseError("malformed HTTP request line");
  }
  request.method = parts[0];
  request.target = parts[1];
  request.version = parts[2];
  request.headers = std::move(head.headers);
  if (FindHeaderIn(request.headers, "Transfer-Encoding") != nullptr) {
    return Status::Unimplemented("chunked transfer encoding not supported");
  }
  return request;
}

/// True when any Connection header in `headers` carries `token` —
/// case-insensitively, with comma-list values split and trimmed.
bool HasConnectionToken(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view token) {
  for (const auto& [key, value] : headers) {
    if (!EqualsIgnoreCase(key, "Connection")) continue;
    std::size_t pos = 0;
    while (pos <= value.size()) {
      std::size_t comma = value.find(',', pos);
      if (comma == std::string::npos) comma = value.size();
      const std::string_view item = util::StripWhitespace(
          std::string_view(value).substr(pos, comma - pos));
      if (EqualsIgnoreCase(item, token)) return true;
      pos = comma + 1;
    }
  }
  return false;
}

}  // namespace

bool RequestsConnectionClose(const HttpRequest& request) {
  if (HasConnectionToken(request.headers, "close")) return true;
  if (EqualsIgnoreCase(request.version, "HTTP/1.0")) {
    // HTTP/1.0 defaults to close; an explicit keep-alive token opts out.
    return !HasConnectionToken(request.headers, "keep-alive");
  }
  return false;
}

Result<std::optional<HttpRequest>> TryParseHttpRequest(
    std::string& buffer, const HttpLimits& limits) {
  const std::size_t terminator = buffer.find("\r\n\r\n");
  if (terminator == std::string::npos) {
    if (buffer.size() > limits.max_header_bytes) {
      return Status::ParseError("HTTP header block exceeds limit");
    }
    return std::optional<HttpRequest>();
  }
  const std::size_t head_bytes = terminator + 4;
  Result<ParsedHead> head = ParseHead(buffer.substr(0, head_bytes));
  if (!head.ok()) return head.status();
  Result<HttpRequest> request = RequestFromHead(std::move(head).value());
  if (!request.ok()) return request.status();
  Result<std::size_t> length = ContentLength(request->headers);
  if (!length.ok()) return length.status();
  if (length.value() > limits.max_body_bytes) {
    return Status::ParseError("HTTP body exceeds limit");
  }
  if (buffer.size() < head_bytes + length.value()) {
    return std::optional<HttpRequest>();
  }
  request->body = buffer.substr(head_bytes, length.value());
  buffer.erase(0, head_bytes + length.value());
  return std::optional<HttpRequest>(std::move(request).value());
}

Result<std::string> BufferedReader::ReadHeaderBlock(std::size_t max_bytes) {
  for (;;) {
    const std::size_t terminator = buffer_.find("\r\n\r\n");
    if (terminator != std::string::npos) {
      std::string block = buffer_.substr(0, terminator + 4);
      buffer_.erase(0, terminator + 4);
      return block;
    }
    if (buffer_.size() > max_bytes) {
      return Status::ParseError("HTTP header block exceeds limit");
    }
    PODIUM_RETURN_IF_ERROR(Fill(buffer_.empty()));
  }
}

Result<std::string> BufferedReader::ReadBody(std::size_t length,
                                             std::size_t max_bytes) {
  if (length > max_bytes) {
    return Status::ParseError("HTTP body exceeds limit");
  }
  while (buffer_.size() < length) {
    PODIUM_RETURN_IF_ERROR(Fill(/*eof_is_not_found=*/false));
  }
  std::string body = buffer_.substr(0, length);
  buffer_.erase(0, length);
  return body;
}

Status BufferedReader::Fill(bool eof_is_not_found) {
  char chunk[8192];
  const ssize_t n = io::RetryRecv(fd_, chunk, sizeof(chunk));
  if (n > 0) {
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return Status::Ok();
  }
  if (n == 0) {
    if (eof_is_not_found) return Status::NotFound("connection closed");
    return Status::IoError("connection closed mid-message");
  }
  return Status::IoError(std::string("recv: ") + std::strerror(errno));
}

std::string_view TargetPath(std::string_view target) {
  const std::size_t question = target.find('?');
  return question == std::string_view::npos ? target
                                            : target.substr(0, question);
}

std::string_view TargetQuery(std::string_view target) {
  const std::size_t question = target.find('?');
  return question == std::string_view::npos ? std::string_view()
                                            : target.substr(question + 1);
}

std::optional<std::string_view> QueryParam(std::string_view query,
                                           std::string_view key) {
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return eq == std::string_view::npos ? std::string_view()
                                          : pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return std::nullopt;
}

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindHeaderIn(headers, name);
}

const std::string* HttpResponse::FindHeader(std::string_view name) const {
  return FindHeaderIn(headers, name);
}

Result<HttpRequest> ReadHttpRequest(BufferedReader& reader,
                                    const HttpLimits& limits) {
  Result<std::string> block = reader.ReadHeaderBlock(limits.max_header_bytes);
  if (!block.ok()) return block.status();
  Result<ParsedHead> head = ParseHead(block.value());
  if (!head.ok()) return head.status();
  Result<HttpRequest> request = RequestFromHead(std::move(head).value());
  if (!request.ok()) return request.status();
  Result<std::size_t> length = ContentLength(request->headers);
  if (!length.ok()) return length.status();
  if (length.value() > 0) {
    Result<std::string> body =
        reader.ReadBody(length.value(), limits.max_body_bytes);
    if (!body.ok()) return body.status();
    request->body = std::move(body).value();
  }
  return request;
}

Result<HttpResponse> ReadHttpResponse(BufferedReader& reader,
                                      const HttpLimits& limits) {
  Result<std::string> block = reader.ReadHeaderBlock(limits.max_header_bytes);
  if (!block.ok()) return block.status();
  Result<ParsedHead> head = ParseHead(block.value());
  if (!head.ok()) return head.status();

  HttpResponse response;
  // "HTTP/1.1 200 OK" — the status code must be exactly three digits
  // terminated by end-of-line or a space; atoi-style salvage of prefixes
  // like "20x" or "2000" silently fabricated codes here before.
  const std::size_t space = head->first_line.find(' ');
  if (space == std::string::npos ||
      head->first_line.compare(0, 5, "HTTP/") != 0) {
    return Status::ParseError("malformed HTTP status line");
  }
  const std::string rest = head->first_line.substr(space + 1);
  if (rest.size() < 3 || (rest.size() > 3 && rest[3] != ' ')) {
    return Status::ParseError("malformed HTTP status code");
  }
  int code = 0;
  for (int i = 0; i < 3; ++i) {
    if (rest[i] < '0' || rest[i] > '9') {
      return Status::ParseError("malformed HTTP status code");
    }
    code = code * 10 + (rest[i] - '0');
  }
  if (code < 100 || code > 599) {
    return Status::ParseError("HTTP status code out of range");
  }
  response.status = code;
  response.reason = rest.size() > 4 ? rest.substr(4) : "";
  response.headers = std::move(head->headers);
  Result<std::size_t> length = ContentLength(response.headers);
  if (!length.ok()) return length.status();
  if (length.value() > 0) {
    Result<std::string> body =
        reader.ReadBody(length.value(), limits.max_body_bytes);
    if (!body.ok()) return body.status();
    response.body = std::move(body).value();
  }
  return response;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = util::StringPrintf("HTTP/1.1 %d %s\r\n", response.status,
                                       response.reason.c_str());
  bool have_length = false;
  bool have_connection = false;
  for (const auto& [key, value] : response.headers) {
    if (EqualsIgnoreCase(key, "Content-Length")) have_length = true;
    if (EqualsIgnoreCase(key, "Connection")) have_connection = true;
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!have_length) {
    out += util::StringPrintf("Content-Length: %zu\r\n", response.body.size());
  }
  if (!have_connection) out += "Connection: keep-alive\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string SerializeRequest(const HttpRequest& request) {
  std::string out =
      request.method + " " + request.target + " " + request.version + "\r\n";
  bool have_length = false;
  for (const auto& [key, value] : request.headers) {
    if (EqualsIgnoreCase(key, "Content-Length")) have_length = true;
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!have_length && (!request.body.empty() || request.method == "POST")) {
    out += util::StringPrintf("Content-Length: %zu\r\n", request.body.size());
  }
  out += "\r\n";
  out += request.body;
  return out;
}

Status WriteAll(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        io::RetrySend(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect(const std::string& host, int port) {
  Close();
  io::ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(port));
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &address.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host address '" + host +
                                   "' (IPv4 dotted quad or localhost)");
  }
  // The sockaddr cast is the POSIX socket-API calling convention.
  // podium-lint: allow(intrinsics-scope)
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    return Status::IoError(std::string("connect: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd.Release();
  reader_ = std::make_unique<BufferedReader>(fd_);
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    reader_.reset();
  }
}

Result<HttpResponse> HttpClient::RoundTrip(const HttpRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  PODIUM_RETURN_IF_ERROR(WriteAll(fd_, SerializeRequest(request)));
  return ReadHttpResponse(*reader_, limits_);
}

}  // namespace podium::serve
