#ifndef PODIUM_SERVE_SINGLE_FLIGHT_H_
#define PODIUM_SERVE_SINGLE_FLIGHT_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "podium/util/mutex.h"
#include "podium/util/result.h"
#include "podium/util/thread_annotations.h"

namespace podium::serve {

/// Request coalescing for identical concurrent work: while one caller (the
/// leader) is computing the value for a key, every other caller arriving
/// with the same key (a follower) parks until the leader finishes and then
/// shares its result — including errors, so a failing selection is not
/// retried N times in the same stampede. Once the leader finishes, the key
/// is forgotten: a later caller computes fresh (staleness is the cache's
/// concern, not ours).
///
/// The service puts this in front of the selection path so a cold-cache
/// stampede of identical requests costs one RunSelection instead of N.
class SingleFlight {
 public:
  struct Outcome {
    Status status = Status::Ok();
    std::string value;          // valid when status.ok()
    bool shared = false;        // true for followers
  };

  /// Runs `compute` if no flight for `key` is in progress (leader),
  /// otherwise blocks until the in-progress flight finishes and returns
  /// its result (follower, outcome.shared = true).
  ///
  /// `compute` runs without any SingleFlight lock held; it may block.
  Outcome Do(const std::string& key,
             const std::function<Result<std::string>()>& compute)
      PODIUM_EXCLUDES(mutex_);

  /// Test-only: runs on a follower after it joined a flight (its join is
  /// already visible on the serve.singleflight.shared counter) and before
  /// it parks, so tests can rendezvous N followers deterministically.
  void set_join_hook(std::function<void()> hook) PODIUM_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    join_hook_ = std::move(hook);
  }

 private:
  struct Flight {
    bool done = false;
    Status status = Status::Ok();
    std::string value;
  };

  util::Mutex mutex_{"serve.single_flight"};
  util::CondVar flight_done_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_
      PODIUM_GUARDED_BY(mutex_);
  std::function<void()> join_hook_ PODIUM_GUARDED_BY(mutex_);
};

}  // namespace podium::serve

#endif  // PODIUM_SERVE_SINGLE_FLIGHT_H_
