#ifndef PODIUM_SERVE_IO_UTIL_H_
#define PODIUM_SERVE_IO_UTIL_H_

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

/// Checked syscall wrappers for the serving path.
///
/// Every direct `read`/`write`/`recv`/`send`/`accept4` call site in
/// `serve/` goes through one of these — the `eintr-retry` lint rule
/// (DESIGN.md §10) enforces it. Centralising the call sites buys two
/// things: EINTR handling happens in exactly one place instead of being
/// re-derived (and occasionally forgotten) per loop, and callers only see
/// the errno values they actually need to branch on. None of these
/// wrappers allocate, log, or block beyond the syscall itself; they are
/// safe on the event-loop hot path.
namespace podium::serve::io {

/// recv() restarted on EINTR. Returns bytes read, 0 on orderly shutdown,
/// or -1 with errno set (never EINTR).
inline ssize_t RetryRecv(int fd, void* buffer, std::size_t length) {
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, length, 0);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// send() restarted on EINTR, with MSG_NOSIGNAL so a dead peer surfaces
/// as EPIPE instead of killing the process. Returns bytes written or -1
/// with errno set (never EINTR). A short write is not an error: callers
/// that need the whole buffer out loop (see WriteAll / FlushOutput).
inline ssize_t RetrySend(int fd, const void* buffer, std::size_t length) {
  for (;;) {
    const ssize_t n = ::send(fd, buffer, length, MSG_NOSIGNAL);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// accept4(SOCK_NONBLOCK | SOCK_CLOEXEC) restarted on EINTR and on
/// ECONNABORTED (the peer hung up while queued; the next connection may
/// be fine). Returns the accepted fd or -1 with errno set — EAGAIN /
/// EWOULDBLOCK when the backlog is drained, or a real accept failure
/// (e.g. EMFILE) the caller must handle.
inline int RetryAccept4(int listen_fd) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return fd;
    if (errno != EINTR && errno != ECONNABORTED) return -1;
  }
}

/// Best-effort bump of an eventfd counter, restarted on EINTR. Failure is
/// deliberately swallowed: wake-ups are advisory (the waiter also
/// re-checks its condition), and the only realistic error on a valid
/// eventfd is EAGAIN when the counter is already saturated — which means
/// the waiter is certain to wake anyway.
inline void SignalEventFd(int fd) {
  const std::uint64_t one = 1;
  for (;;) {
    if (::write(fd, &one, sizeof(one)) >= 0 || errno != EINTR) return;
  }
}

/// Best-effort drain of an eventfd counter (resets it to zero), restarted
/// on EINTR. EAGAIN — another thread already drained it — is fine.
inline void DrainEventFd(int fd) {
  std::uint64_t drained = 0;
  for (;;) {
    if (::read(fd, &drained, sizeof(drained)) >= 0 || errno != EINTR) return;
  }
}

/// Owns a file descriptor until Release()d; closes it on every other
/// exit. Start()/Connect()-style functions with several error returns
/// between socket() and success use this instead of repeating close() on
/// each path — the pattern that historically leaks the fd when a new
/// early return is added.
class ScopedFd {
 public:
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }

  /// Transfers ownership to the caller; the destructor becomes a no-op.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

}  // namespace podium::serve::io

#endif  // PODIUM_SERVE_IO_UTIL_H_
