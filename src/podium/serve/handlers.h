#ifndef PODIUM_SERVE_HANDLERS_H_
#define PODIUM_SERVE_HANDLERS_H_

#include <functional>

#include "podium/json/parser.h"
#include "podium/serve/http_server.h"
#include "podium/serve/service.h"
#include "podium/util/status.h"

namespace podium::serve {

/// The JSON parse limits the HTTP front end applies to untrusted request
/// bodies (tight versions of json::ParseOptions' permissive defaults).
json::ParseOptions UntrustedParseOptions();

/// HTTP status for a library Status (ParseError/InvalidArgument → 400,
/// NotFound → 404, ResourceExhausted → 429, DeadlineExceeded → 504,
/// Unimplemented → 501, everything else → 500).
int HttpStatusFor(const Status& status);

/// Builds the service's request router (targets are matched on their path
/// component, so query strings are allowed everywhere):
///
///   POST /v1/select  — run a selection (JSON body; see request.h)
///   GET  /healthz    — liveness + snapshot generation/size/age
///   GET  /metrics    — full telemetry JSON export;
///                      ?format=prometheus renders the metrics registry in
///                      Prometheus text exposition format instead
///   GET  /v1/traces  — most recent finished request traces from
///                      obs::TraceRing::Global(); ?limit=N caps the count
///   POST /v1/reload  — atomically swap in a fresh snapshot via `reload`
///                      (404 when no reload callback is configured)
///
/// Timings and cache status travel as X-Podium-* headers so the JSON body
/// of a cached reply is byte-identical to the uncached one.
///
/// The router also feeds the server-side HTTP metrics: a latency
/// histogram per endpoint (serve.http.request_seconds{path=...}, unknown
/// paths pooled under "other" to bound cardinality) and a response
/// counter per status code (serve.http.responses{code=...}).
HttpServer::Handler MakeServiceHandler(
    SelectionService& service,
    std::function<Status()> reload = nullptr);

}  // namespace podium::serve

#endif  // PODIUM_SERVE_HANDLERS_H_
