#include "podium/serve/service.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "podium/core/explanation.h"
#include "podium/obs/trace.h"
#include "podium/shard/sharded_selector.h"
#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/stopwatch.h"

namespace podium::serve {

namespace {

struct ServeMetrics {
  telemetry::Counter& requests;
  telemetry::Counter& errors;
  telemetry::Counter& rejected;
  telemetry::Counter& deadline_exceeded;
  telemetry::Histogram& latency;
  telemetry::Histogram& queue_wait;
  telemetry::Histogram& run_time;
  telemetry::Histogram& cache_lookup;

  static ServeMetrics& Get() {
    auto& registry = telemetry::MetricsRegistry::Global();
    static ServeMetrics metrics{
        registry.counter("serve.requests"),
        registry.counter("serve.errors"),
        registry.counter("serve.rejected"),
        registry.counter("serve.deadline_exceeded"),
        registry.histogram("serve.latency_seconds",
                           telemetry::DefaultLatencyBounds()),
        registry.histogram("serve.queue_seconds",
                           telemetry::DefaultLatencyBounds()),
        registry.histogram("serve.run_seconds",
                           telemetry::DefaultLatencyBounds()),
        registry.histogram("serve.cache.lookup_seconds",
                           telemetry::DefaultLatencyBounds())};
    return metrics;
  }
};

Result<std::vector<GroupId>> ResolveLabels(
    const Snapshot& snapshot, const std::vector<std::string>& labels) {
  std::vector<GroupId> groups;
  groups.reserve(labels.size());
  for (const std::string& label : labels) {
    Result<GroupId> group = snapshot.ResolveLabel(label);
    if (!group.ok()) return group.status();
    groups.push_back(group.value());
  }
  return groups;
}

json::Value BuildExplanations(const DiversificationInstance& instance,
                              const std::vector<UserId>& users) {
  json::Array out;
  out.reserve(users.size());
  for (UserId u : users) {
    const UserExplanation explanation = ExplainUser(instance, u);
    json::Object user;
    user.Set("name", json::Value(explanation.name));
    json::Array groups;
    groups.reserve(explanation.groups.size());
    for (const GroupExplanation& g : explanation.groups) {
      json::Object group;
      group.Set("label", json::Value(g.label));
      group.Set("weight", json::Value(g.weight));
      group.Set("cov",
                json::Value(static_cast<double>(g.required_coverage)));
      groups.emplace_back(std::move(group));
    }
    user.Set("groups", json::Value(std::move(groups)));
    out.emplace_back(std::move(user));
  }
  return json::Value(std::move(out));
}

}  // namespace

SelectionService::SelectionService(std::shared_ptr<const Snapshot> snapshot,
                                   ServiceOptions options)
    : options_(std::move(options)), holder_(std::move(snapshot)),
      cache_(options_.cache_entries) {}

void SelectionService::SwapSnapshot(std::shared_ptr<const Snapshot> snapshot) {
  holder_.Swap(std::move(snapshot));
}

Status SelectionService::Admit(std::int64_t deadline_ms,
                               double* queue_seconds) {
  const auto start = std::chrono::steady_clock::now();
  util::MutexLock lock(mutex_);
  if (running_ < options_.max_concurrency) {
    ++running_;
    *queue_seconds = 0.0;
    return Status::Ok();
  }
  if (waiting_ >= options_.max_queue_depth) {
    if (telemetry::Enabled()) ServeMetrics::Get().rejected.Add();
    return Status::ResourceExhausted("admission queue full");
  }
  ++waiting_;
  bool admitted = true;
  if (deadline_ms > 0) {
    const auto deadline = start + std::chrono::milliseconds(deadline_ms);
    while (running_ >= options_.max_concurrency) {
      if (!slot_free_.WaitUntil(lock, deadline)) {
        // Timed out: one final check, a slot may have freed on the way in.
        admitted = running_ < options_.max_concurrency;
        break;
      }
    }
  } else {
    while (running_ >= options_.max_concurrency) slot_free_.Wait(lock);
  }
  --waiting_;
  *queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!admitted) {
    if (telemetry::Enabled()) ServeMetrics::Get().deadline_exceeded.Add();
    return Status::DeadlineExceeded(
        "deadline expired before an execution slot freed up");
  }
  ++running_;
  return Status::Ok();
}

void SelectionService::Release() {
  {
    util::MutexLock lock(mutex_);
    --running_;
  }
  slot_free_.NotifyOne();
}

Result<ServiceReply> SelectionService::Select(const SelectionRequest& request) {
  const bool telemetry_on = telemetry::Enabled();
  if (telemetry_on) ServeMetrics::Get().requests.Add();
  util::Stopwatch total;
  obs::Span select_span("select");

  const std::shared_ptr<const Snapshot> snapshot = holder_.Current();
  if (snapshot == nullptr) {
    if (telemetry_on) ServeMetrics::Get().errors.Add();
    return Status::FailedPrecondition("no snapshot loaded");
  }

  ServiceReply reply;
  reply.snapshot_generation = snapshot->generation();

  const std::string key = CanonicalRequestKey(snapshot->generation(), request);
  {
    obs::Span lookup_span("cache.lookup");
    util::Stopwatch lookup;
    std::optional<std::string> cached = cache_.Get(key);
    if (telemetry_on) {
      ServeMetrics::Get().cache_lookup.Observe(lookup.ElapsedSeconds());
    }
    if (cached.has_value()) {
      reply.body = std::move(*cached);
      reply.cache_hit = true;
      if (telemetry_on) {
        ServeMetrics::Get().latency.Observe(total.ElapsedSeconds());
      }
      return reply;
    }
  }

  // Deadline: the request may tighten the server default freely but only
  // loosen it up to 10x (a hostile client cannot pin a queue slot forever).
  std::int64_t deadline_ms = options_.default_deadline_ms;
  if (request.deadline_ms > 0) {
    deadline_ms = options_.default_deadline_ms > 0
                      ? std::min(request.deadline_ms,
                                 10 * options_.default_deadline_ms)
                      : request.deadline_ms;
  }

  // Single-flight the miss: if an identical request (same canonical key,
  // so same generation + parameters) is already past the cache and
  // running, park here and share its result — errors included — instead
  // of stampeding N copies of the same selection through the admission
  // queue. Followers do not hold execution slots while parked.
  SingleFlight::Outcome flight = single_flight_.Do(key, [&]()
                                                       -> Result<std::string> {
    Status admitted = [&] {
      obs::Span admission_span("admission");
      return Admit(deadline_ms, &reply.queue_seconds);
    }();
    if (!admitted.ok()) return admitted;
    // Exception-safe release: selector code returns Status, but anything
    // escaping (e.g. bad_alloc through ParallelFor) must not leak the slot.
    struct SlotGuard {
      SelectionService* service;
      ~SlotGuard() { service->Release(); }
    } slot_guard{this};
    if (options_.post_admission_hook) options_.post_admission_hook();

    util::Stopwatch run;
    Result<std::string> body = [&] {
      obs::Span run_span("run");
      return RunSelection(*snapshot, request);
    }();
    reply.run_seconds = run.ElapsedSeconds();

    if (telemetry_on) {
      ServeMetrics& metrics = ServeMetrics::Get();
      metrics.queue_wait.Observe(reply.queue_seconds);
      metrics.run_time.Observe(reply.run_seconds);
    }
    if (body.ok()) cache_.Put(key, body.value());
    return body;
  });

  reply.coalesced = flight.shared;
  if (telemetry_on) {
    ServeMetrics& metrics = ServeMetrics::Get();
    metrics.latency.Observe(total.ElapsedSeconds());
    if (!flight.status.ok()) metrics.errors.Add();
  }
  if (!flight.status.ok()) return flight.status;
  reply.body = std::move(flight.value);
  return reply;
}

Result<std::shared_ptr<const DiversificationInstance>>
SelectionService::PooledInstance(const Snapshot& snapshot,
                                 WeightKind weight_kind,
                                 CoverageKind coverage_kind,
                                 std::size_t budget) {
  // Budget does not change the built instance under Single coverage with
  // non-EBS weights (same rule MatchesDefaultInstance applies), so those
  // keys collapse onto one entry.
  const std::size_t key_budget =
      coverage_kind == CoverageKind::kSingle && weight_kind != WeightKind::kEbs
          ? 0
          : budget;
  const std::uint64_t generation = snapshot.generation();
  {
    util::MutexLock lock(instance_mutex_);
    for (PooledEntry& entry : instance_pool_) {
      if (entry.generation == generation &&
          entry.weight_kind == weight_kind &&
          entry.coverage_kind == coverage_kind &&
          entry.budget == key_budget) {
        entry.last_used = ++instance_pool_clock_;
        if (telemetry::Enabled()) {
          telemetry::MetricsRegistry::Global()
              .counter("serve.batch.instance_reuse")
              .Add();
        }
        return entry.instance;
      }
    }
  }

  // Build outside the lock: a slow build must not stall requests pooling
  // *different* instances. Two racing builders of the same key build
  // twice and the loser's insert below finds the winner's entry — wasted
  // work, never a wrong result (single-flight upstream already collapses
  // identical requests, so the race needs distinct requests sharing
  // instance parameters in the same instant).
  Result<DiversificationInstance> built =
      snapshot.MakeInstance(weight_kind, coverage_kind, budget);
  if (!built.ok()) return built.status();
  auto instance = std::make_shared<const DiversificationInstance>(
      std::move(built).value());

  util::MutexLock lock(instance_mutex_);
  for (PooledEntry& entry : instance_pool_) {
    if (entry.generation == generation && entry.weight_kind == weight_kind &&
        entry.coverage_kind == coverage_kind && entry.budget == key_budget) {
      entry.last_used = ++instance_pool_clock_;
      return entry.instance;  // lost the race; drop our duplicate
    }
  }
  // A snapshot swap obsoletes every pooled instance at once: entries from
  // other generations are dead weight, so clear rather than LRU-evict.
  constexpr std::size_t kMaxPooledInstances = 8;
  bool stale = false;
  for (const PooledEntry& entry : instance_pool_) {
    if (entry.generation != generation) stale = true;
  }
  if (stale) instance_pool_.clear();
  if (instance_pool_.size() >= kMaxPooledInstances) {
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < instance_pool_.size(); ++i) {
      if (instance_pool_[i].last_used < instance_pool_[oldest].last_used) {
        oldest = i;
      }
    }
    instance_pool_[oldest] = instance_pool_.back();
    instance_pool_.pop_back();
  }
  PooledEntry entry;
  entry.generation = generation;
  entry.weight_kind = weight_kind;
  entry.coverage_kind = coverage_kind;
  entry.budget = key_budget;
  entry.last_used = ++instance_pool_clock_;
  entry.instance = instance;
  instance_pool_.push_back(std::move(entry));
  return instance;
}

Result<std::string> SelectionService::RunSelection(
    const Snapshot& snapshot, const SelectionRequest& request) {
  telemetry::PhaseSpan span("serve.select");

  SelectionOutcome outcome;
  outcome.snapshot_generation = snapshot.generation();
  outcome.request = request;
  outcome.mode = request.mode;
  outcome.budget =
      request.budget > 0 ? request.budget : snapshot.options().instance.budget;
  outcome.weight_kind = request.weight_kind.value_or(
      snapshot.options().instance.weight_kind);
  outcome.coverage_kind = request.coverage_kind.value_or(
      snapshot.options().instance.coverage_kind);

  if (snapshot.is_sharded()) {
    return RunShardedSelection(snapshot, request, outcome);
  }

  // Reuse the shared prebuilt instance whenever the request's parameters
  // resolve to it; otherwise fetch (or build) the per-parameter instance
  // from the pool so a batch of requests with the same overrides pays for
  // one build. Either way only weights/coverage are re-evaluated over the
  // shared CSR group index (never the grouping itself).
  std::shared_ptr<const DiversificationInstance> pooled;
  const DiversificationInstance* instance = &snapshot.default_instance();
  if (!snapshot.MatchesDefaultInstance(outcome.weight_kind,
                                       outcome.coverage_kind,
                                       outcome.budget)) {
    Result<std::shared_ptr<const DiversificationInstance>> built =
        PooledInstance(snapshot, outcome.weight_kind, outcome.coverage_kind,
                       outcome.budget);
    if (!built.ok()) return built.status();
    pooled = std::move(built).value();
    instance = pooled.get();
  }

  if (request.customized()) {
    CustomizationFeedback feedback;
    PODIUM_ASSIGN_OR_RETURN(feedback.must_have,
                            ResolveLabels(snapshot, request.must_have));
    PODIUM_ASSIGN_OR_RETURN(feedback.must_not,
                            ResolveLabels(snapshot, request.must_not));
    PODIUM_ASSIGN_OR_RETURN(feedback.priority,
                            ResolveLabels(snapshot, request.priority));
    Result<CustomSelection> custom = SelectCustomized(
        *instance, feedback, outcome.budget, request.mode);
    if (!custom.ok()) return custom.status();
    outcome.users = std::move(custom->selection.users);
    outcome.score = custom->selection.score;
    outcome.custom_score = custom->score;
    outcome.refined_pool_size = custom->refined_pool_size;
  } else {
    GreedyOptions greedy_options;
    greedy_options.mode = request.mode;
    Result<Selection> selection =
        GreedySelector(greedy_options).Select(*instance, outcome.budget);
    if (!selection.ok()) return selection.status();
    outcome.users = std::move(selection->users);
    outcome.score = selection->score;
  }

  outcome.names.reserve(outcome.users.size());
  for (UserId u : outcome.users) {
    outcome.names.push_back(snapshot.repository().user(u).name());
  }
  if (request.explain) {
    outcome.explanations = BuildExplanations(*instance, outcome.users);
  }
  return SerializeOutcome(outcome);
}

Result<std::string> SelectionService::RunShardedSelection(
    const Snapshot& snapshot, const SelectionRequest& request,
    SelectionOutcome& outcome) {
  const shard::ShardedSnapshot& sharded = *snapshot.sharded();
  // The sharded engine bakes the snapshot's global weights/coverage into
  // every shard, so per-request scoring overrides would need K instance
  // rebuilds — serve them from an unsharded deployment instead. A budget
  // override is fine whenever it does not change the instance (Single
  // coverage; EBS is rejected at build).
  if (request.customized() || request.explain) {
    return Status::Unimplemented(
        "customization and explanations are not supported with --shards>1");
  }
  if (outcome.weight_kind != sharded.weight_kind() ||
      outcome.coverage_kind != sharded.coverage_kind()) {
    return Status::Unimplemented(
        "per-request weight/coverage overrides are not supported with "
        "--shards>1 (the global scoring is baked into every shard)");
  }
  if (outcome.budget != sharded.default_budget() &&
      outcome.coverage_kind != CoverageKind::kSingle) {
    return Status::Unimplemented(
        "budget overrides under Prop coverage are not supported with "
        "--shards>1 (cov(G) depends on B, which is baked into every shard)");
  }

  shard::ShardedSelector selector(request.mode);
  Result<shard::ShardedSelection> selection =
      selector.Select(sharded, outcome.budget);
  if (!selection.ok()) return selection.status();
  outcome.users = std::move(selection->merged.users);
  outcome.score = selection->merged.score;

  outcome.names.reserve(outcome.users.size());
  for (UserId u : outcome.users) {
    Result<std::string> name = sharded.UserName(u);
    if (!name.ok()) return name.status();
    outcome.names.push_back(std::move(name).value());
  }
  return SerializeOutcome(outcome);
}

}  // namespace podium::serve
