#ifndef PODIUM_SERVE_RESULT_CACHE_H_
#define PODIUM_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "podium/util/mutex.h"
#include "podium/util/thread_annotations.h"

namespace podium::serve {

/// LRU cache of serialized response bodies keyed by CanonicalRequestKey.
/// Keys embed the snapshot generation, so a snapshot swap invalidates
/// entries implicitly: stale generations stop being looked up and age out
/// of the LRU list. Thread-safe; every hit/miss is recorded on the
/// "serve.cache.hits" / "serve.cache.misses" telemetry counters (when
/// telemetry is enabled).
class ResultCache {
 public:
  /// `capacity` = maximum number of entries; 0 disables caching (every
  /// Get misses, Put is a no-op).
  explicit ResultCache(std::size_t capacity);

  /// The cached body for `key`, refreshing its recency, or nullopt.
  std::optional<std::string> Get(const std::string& key)
      PODIUM_EXCLUDES(mutex_);

  /// Inserts (or refreshes) `key`, evicting least-recently-used entries
  /// beyond capacity.
  void Put(const std::string& key, std::string body) PODIUM_EXCLUDES(mutex_);

  std::size_t size() const PODIUM_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, std::string>;  // key, body

  /// Records a hit/miss on the telemetry registry. The registry has its
  /// own mutex, and the repo's lock hierarchy forbids nesting it under
  /// mutex_ (PR 4 removed exactly that nesting) — PODIUM_EXCLUDES makes
  /// the rule a compile error instead of a review comment.
  void RecordLookup(bool hit) const PODIUM_EXCLUDES(mutex_);

  const std::size_t capacity_;
  mutable util::Mutex mutex_{"serve.result_cache"};
  std::list<Entry> lru_ PODIUM_GUARDED_BY(mutex_);  // front = MRU
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      PODIUM_GUARDED_BY(mutex_);
};

}  // namespace podium::serve

#endif  // PODIUM_SERVE_RESULT_CACHE_H_
