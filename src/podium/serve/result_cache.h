#ifndef PODIUM_SERVE_RESULT_CACHE_H_
#define PODIUM_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace podium::serve {

/// LRU cache of serialized response bodies keyed by CanonicalRequestKey.
/// Keys embed the snapshot generation, so a snapshot swap invalidates
/// entries implicitly: stale generations stop being looked up and age out
/// of the LRU list. Thread-safe; every hit/miss is recorded on the
/// "serve.cache.hits" / "serve.cache.misses" telemetry counters (when
/// telemetry is enabled).
class ResultCache {
 public:
  /// `capacity` = maximum number of entries; 0 disables caching (every
  /// Get misses, Put is a no-op).
  explicit ResultCache(std::size_t capacity);

  /// The cached body for `key`, refreshing its recency, or nullopt.
  std::optional<std::string> Get(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting least-recently-used entries
  /// beyond capacity.
  void Put(const std::string& key, std::string body);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, std::string>;  // key, body

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace podium::serve

#endif  // PODIUM_SERVE_RESULT_CACHE_H_
