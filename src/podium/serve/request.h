#ifndef PODIUM_SERVE_REQUEST_H_
#define PODIUM_SERVE_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "podium/core/customization.h"
#include "podium/core/greedy.h"
#include "podium/groups/coverage.h"
#include "podium/groups/weight.h"
#include "podium/json/value.h"
#include "podium/serve/snapshot.h"
#include "podium/util/result.h"

namespace podium::serve {

/// One client's selection request: the per-client customization layer of
/// Section 7 (weights, coverage, budget, and the 𝒢₊/𝒢₋/𝒢_d feedback of
/// Def. 6.1 expressed as group labels) over the shared snapshot.
///
/// JSON shape (every field optional; absent fields take snapshot/server
/// defaults):
///
///   {"budget": 8, "selector": "greedy" | "greedy-heap",
///    "weights": "Iden" | "LBS" | "EBS", "coverage": "Single" | "Prop",
///    "must_have": ["livesIn Tokyo"], "must_not": [], "priority": [],
///    "explain": true, "deadline_ms": 2000}
struct SelectionRequest {
  /// 0 means "use the snapshot's default budget".
  std::size_t budget = 0;
  GreedyMode mode = GreedyMode::kPlainScan;
  std::optional<WeightKind> weight_kind;
  std::optional<CoverageKind> coverage_kind;
  std::vector<std::string> must_have;
  std::vector<std::string> must_not;
  std::vector<std::string> priority;
  /// Include per-user group explanations in the response.
  bool explain = false;
  /// Per-request deadline override in milliseconds; 0 means the server
  /// default. The deadline covers admission queueing (see DESIGN.md §8).
  std::int64_t deadline_ms = 0;

  bool customized() const {
    return !must_have.empty() || !must_not.empty() || !priority.empty();
  }
};

/// The selector-choice wire names ("greedy", "greedy-heap").
std::string_view SelectorName(GreedyMode mode);
[[nodiscard]] Result<GreedyMode> ParseSelectorName(std::string_view name);

/// Parses a request document, rejecting unknown keys (typos in client
/// requests fail loudly rather than silently taking defaults).
[[nodiscard]] Result<SelectionRequest> SelectionRequestFromJson(const json::Value& document);

/// Canonical cache key: the snapshot generation plus a compact canonical
/// serialization of every result-affecting field (deadline_ms excluded —
/// it changes admission, never the payload). Two requests map to the same
/// key iff their responses are byte-identical under one snapshot.
std::string CanonicalRequestKey(std::uint64_t generation,
                                const SelectionRequest& request);

/// The outcome of a selection: the chosen users with scores and optional
/// explanations, plus the effective configuration the request resolved to
/// (so clients can verify the round trip exactly).
struct SelectionOutcome {
  std::uint64_t snapshot_generation = 0;
  /// The effective (post-default) configuration.
  std::size_t budget = 0;
  GreedyMode mode = GreedyMode::kPlainScan;
  WeightKind weight_kind = WeightKind::kLbs;
  CoverageKind coverage_kind = CoverageKind::kSingle;
  SelectionRequest request;  // echo of label lists / explain

  std::vector<UserId> users;
  std::vector<std::string> names;
  double score = 0.0;
  /// Engaged when the request carried customization feedback.
  std::optional<DualScore> custom_score;
  std::size_t refined_pool_size = 0;

  /// Per-user explanation blocks when request.explain; shaped like the
  /// CLI's --json output (label, weight, cov per group).
  json::Value explanations;  // array or null
};

/// Serializes an outcome as the deterministic response body: fixed key
/// order, no timing fields (timings travel in HTTP headers so cached
/// responses stay byte-identical).
std::string SerializeOutcome(const SelectionOutcome& outcome);

}  // namespace podium::serve

#endif  // PODIUM_SERVE_REQUEST_H_
