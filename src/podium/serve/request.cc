#include "podium/serve/request.h"

#include <cmath>
#include <utility>

#include "podium/json/writer.h"
#include "podium/util/string_util.h"

namespace podium::serve {

namespace {

Result<std::vector<std::string>> StringList(const json::Value& value,
                                            const char* key) {
  if (!value.is_array()) {
    return Status::ParseError(std::string("'") + key +
                              "' must be an array of strings");
  }
  std::vector<std::string> out;
  out.reserve(value.AsArray().size());
  for (const json::Value& entry : value.AsArray()) {
    Result<std::string> text = entry.GetString();
    if (!text.ok()) return text.status();
    out.push_back(std::move(text).value());
  }
  return out;
}

Result<std::size_t> NonNegativeInt(const json::Value& value, const char* key,
                                   std::size_t min) {
  Result<double> number = value.GetNumber();
  if (!number.ok()) return number.status();
  const double n = number.value();
  if (!(n >= static_cast<double>(min)) || n != std::floor(n) || n > 1e15) {
    return Status::ParseError(util::StringPrintf(
        "'%s' must be an integer >= %zu", key, min));
  }
  return static_cast<std::size_t>(n);
}

json::Value LabelArray(const std::vector<std::string>& labels) {
  json::Array out;
  out.reserve(labels.size());
  for (const std::string& label : labels) out.emplace_back(label);
  return json::Value(std::move(out));
}

}  // namespace

std::string_view SelectorName(GreedyMode mode) {
  return mode == GreedyMode::kLazyHeap ? "greedy-heap" : "greedy";
}

Result<GreedyMode> ParseSelectorName(std::string_view name) {
  if (name == "greedy") return GreedyMode::kPlainScan;
  if (name == "greedy-heap") return GreedyMode::kLazyHeap;
  return Status::ParseError("unknown selector '" + std::string(name) +
                            "' (expected \"greedy\" or \"greedy-heap\")");
}

Result<SelectionRequest> SelectionRequestFromJson(
    const json::Value& document) {
  if (!document.is_object()) {
    return Status::ParseError("selection request must be a JSON object");
  }
  SelectionRequest request;
  for (const auto& [key, value] : document.AsObject().entries()) {
    if (key == "budget") {
      PODIUM_ASSIGN_OR_RETURN(request.budget,
                              NonNegativeInt(value, "budget", 1));
    } else if (key == "selector") {
      Result<std::string> name = value.GetString();
      if (!name.ok()) return name.status();
      PODIUM_ASSIGN_OR_RETURN(request.mode, ParseSelectorName(name.value()));
    } else if (key == "weights") {
      Result<std::string> name = value.GetString();
      if (!name.ok()) return name.status();
      Result<WeightKind> kind = ParseWeightKind(name.value());
      if (!kind.ok()) return kind.status();
      request.weight_kind = kind.value();
    } else if (key == "coverage") {
      Result<std::string> name = value.GetString();
      if (!name.ok()) return name.status();
      Result<CoverageKind> kind = ParseCoverageKind(name.value());
      if (!kind.ok()) return kind.status();
      request.coverage_kind = kind.value();
    } else if (key == "must_have") {
      PODIUM_ASSIGN_OR_RETURN(request.must_have,
                              StringList(value, "must_have"));
    } else if (key == "must_not") {
      PODIUM_ASSIGN_OR_RETURN(request.must_not, StringList(value, "must_not"));
    } else if (key == "priority") {
      PODIUM_ASSIGN_OR_RETURN(request.priority, StringList(value, "priority"));
    } else if (key == "explain") {
      Result<bool> flag = value.GetBool();
      if (!flag.ok()) return flag.status();
      request.explain = flag.value();
    } else if (key == "deadline_ms") {
      PODIUM_ASSIGN_OR_RETURN(
          const std::size_t deadline,
          NonNegativeInt(value, "deadline_ms", 0));
      request.deadline_ms = static_cast<std::int64_t>(deadline);
    } else {
      return Status::ParseError("unknown request field '" + key + "'");
    }
  }
  return request;
}

std::string CanonicalRequestKey(std::uint64_t generation,
                                const SelectionRequest& request) {
  json::Object key;
  key.Set("gen", json::Value(static_cast<double>(generation)));
  key.Set("budget", json::Value(request.budget));
  key.Set("selector", json::Value(SelectorName(request.mode)));
  key.Set("weights",
          json::Value(request.weight_kind.has_value()
                          ? std::string(WeightKindName(*request.weight_kind))
                          : std::string()));
  key.Set("coverage",
          json::Value(request.coverage_kind.has_value()
                          ? std::string(
                                CoverageKindName(*request.coverage_kind))
                          : std::string()));
  key.Set("must_have", LabelArray(request.must_have));
  key.Set("must_not", LabelArray(request.must_not));
  key.Set("priority", LabelArray(request.priority));
  key.Set("explain", json::Value(request.explain));
  return json::Write(json::Value(std::move(key)));
}

std::string SerializeOutcome(const SelectionOutcome& outcome) {
  json::Object root;
  root.Set("snapshot_generation",
           json::Value(static_cast<double>(outcome.snapshot_generation)));
  root.Set("budget", json::Value(outcome.budget));
  root.Set("selector", json::Value(SelectorName(outcome.mode)));
  root.Set("weights", json::Value(WeightKindName(outcome.weight_kind)));
  root.Set("coverage", json::Value(CoverageKindName(outcome.coverage_kind)));
  root.Set("must_have", LabelArray(outcome.request.must_have));
  root.Set("must_not", LabelArray(outcome.request.must_not));
  root.Set("priority", LabelArray(outcome.request.priority));
  root.Set("score", json::Value(outcome.score));
  if (outcome.custom_score.has_value()) {
    json::Object custom;
    custom.Set("priority_score", json::Value(outcome.custom_score->priority));
    custom.Set("standard_score", json::Value(outcome.custom_score->standard));
    custom.Set("refined_pool",
               json::Value(outcome.refined_pool_size));
    root.Set("custom", json::Value(std::move(custom)));
  }
  json::Array users;
  users.reserve(outcome.users.size());
  for (std::size_t i = 0; i < outcome.users.size(); ++i) {
    json::Object user;
    user.Set("id", json::Value(static_cast<double>(outcome.users[i])));
    user.Set("name", json::Value(outcome.names[i]));
    users.emplace_back(std::move(user));
  }
  root.Set("users", json::Value(std::move(users)));
  if (outcome.request.explain && outcome.explanations.is_array()) {
    root.Set("explanations", outcome.explanations);
  }
  return json::Write(json::Value(std::move(root)));
}

}  // namespace podium::serve
