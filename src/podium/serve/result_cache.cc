#include "podium/serve/result_cache.h"

#include "podium/telemetry/telemetry.h"

namespace podium::serve {

void ResultCache::RecordLookup(bool hit) const {
  if (!telemetry::Enabled()) return;
  auto& registry = telemetry::MetricsRegistry::Global();
  // Hoisted statics: the registry lookup takes a mutex, the Add does not.
  static telemetry::Counter& hits = registry.counter("serve.cache.hits");
  static telemetry::Counter& misses = registry.counter("serve.cache.misses");
  (hit ? hits : misses).Add();
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<std::string> ResultCache::Get(const std::string& key) {
  if (capacity_ == 0) {
    RecordLookup(false);
    return std::nullopt;
  }
  // Telemetry is recorded after mutex_ is released: the registry lookup
  // inside RecordLookup takes its own mutex, and nesting it under ours
  // pins a lock order no other telemetry caller is obliged to follow.
  std::optional<std::string> body;
  {
    util::MutexLock lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      body = it->second->second;
    }
  }
  RecordLookup(body.has_value());
  return body;
}

void ResultCache::Put(const std::string& key, std::string body) {
  if (capacity_ == 0) return;
  util::MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(body);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(body));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::size_t ResultCache::size() const {
  util::MutexLock lock(mutex_);
  return lru_.size();
}

}  // namespace podium::serve
