#include "podium/serve/single_flight.h"

#include <utility>

#include "podium/telemetry/telemetry.h"

namespace podium::serve {

SingleFlight::Outcome SingleFlight::Do(
    const std::string& key,
    const std::function<Result<std::string>()>& compute) {
  std::shared_ptr<Flight> flight;
  std::function<void()> hook;
  bool follower = false;
  {
    util::MutexLock lock(mutex_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      // Follower: share the in-progress flight. Count the join before
      // parking so a test (or an operator watching /metrics) can observe
      // the stampede while the leader is still running.
      follower = true;
      flight = it->second;
      hook = join_hook_;
      if (telemetry::Enabled()) {
        telemetry::MetricsRegistry::Global()
            .counter("serve.singleflight.shared")
            .Add();
      }
    } else {
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      if (telemetry::Enabled()) {
        telemetry::MetricsRegistry::Global()
            .counter("serve.singleflight.leader")
            .Add();
      }
    }
  }

  Outcome outcome;
  if (follower) {
    if (hook) hook();
    util::MutexLock lock(mutex_);
    while (!flight->done) flight_done_.Wait(lock);
    outcome.status = flight->status;
    outcome.value = flight->value;
    outcome.shared = true;
    return outcome;
  }

  Result<std::string> result = compute();

  {
    util::MutexLock lock(mutex_);
    flight->done = true;
    if (result.ok()) {
      flight->value = std::move(result).value();
    } else {
      flight->status = result.status();
    }
    outcome.status = flight->status;
    outcome.value = flight->value;  // copy: followers still need theirs
    // Forget the key: the next request for it starts a fresh flight (the
    // result cache, not SingleFlight, is where completed work lives).
    flights_.erase(key);
  }
  flight_done_.NotifyAll();
  return outcome;
}

}  // namespace podium::serve
