#ifndef PODIUM_SERVE_SERVICE_H_
#define PODIUM_SERVE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "podium/serve/request.h"
#include "podium/serve/result_cache.h"
#include "podium/serve/single_flight.h"
#include "podium/serve/snapshot.h"
#include "podium/util/mutex.h"
#include "podium/util/result.h"
#include "podium/util/thread_annotations.h"

namespace podium::serve {

struct ServiceOptions {
  /// Selections running at once. Each selection may itself fan out on the
  /// global ThreadPool, which serializes one parallel loop at a time, so
  /// the sweet spot is small; excess requests wait in the admission queue.
  std::size_t max_concurrency = 4;

  /// Requests allowed to wait for a slot beyond the running ones; arrivals
  /// past this are rejected immediately (ResourceExhausted → HTTP 429).
  std::size_t max_queue_depth = 64;

  /// Default per-request deadline; a request whose slot has not freed up
  /// within the deadline fails with DeadlineExceeded (→ HTTP 504). 0
  /// disables deadlines. Requests may tighten (or, bounded by 10x this,
  /// loosen) it via "deadline_ms".
  std::int64_t default_deadline_ms = 5000;

  /// ResultCache entries; 0 disables caching.
  std::size_t cache_entries = 1024;

  /// Test-only: runs inside the admission slot before the selection,
  /// letting tests hold a slot open deterministically.
  std::function<void()> post_admission_hook;
};

/// A served reply: the deterministic response body plus per-request
/// metadata that must NOT enter the body (cached replies are byte
/// identical to uncached ones; timings travel as HTTP headers).
struct ServiceReply {
  std::string body;
  bool cache_hit = false;
  /// True when this request joined another identical in-flight request and
  /// shared its result instead of running its own selection.
  bool coalesced = false;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  std::uint64_t snapshot_generation = 0;
};

/// The concurrent selection engine behind the HTTP front end: resolves a
/// SelectionRequest against the current Snapshot, consults the
/// ResultCache, admits the request through a bounded queue with a
/// deadline, runs the selection (greedy or customized) and serializes the
/// outcome. Thread-safe; one instance serves every connection.
class SelectionService {
 public:
  SelectionService(std::shared_ptr<const Snapshot> snapshot,
                   ServiceOptions options);

  /// Serves one request. Errors map to HTTP statuses in handlers.cc.
  [[nodiscard]] Result<ServiceReply> Select(const SelectionRequest& request);

  /// Atomically installs a new snapshot; in-flight requests finish on the
  /// snapshot they started with, later requests (and cache keys) use the
  /// new generation.
  void SwapSnapshot(std::shared_ptr<const Snapshot> snapshot);

  std::shared_ptr<const Snapshot> snapshot() const { return holder_.Current(); }
  const ServiceOptions& options() const { return options_; }
  ResultCache& cache() { return cache_; }
  /// Exposed so tests can install a join hook (SingleFlight::set_join_hook).
  SingleFlight& single_flight() { return single_flight_; }

 private:
  /// Runs the selection itself (no queueing, no cache) and serializes it.
  [[nodiscard]] Result<std::string> RunSelection(const Snapshot& snapshot,
                                   const SelectionRequest& request);

  /// The sharded branch of RunSelection: two-round distributed greedy via
  /// shard::ShardedSelector. `outcome` arrives with the generation /
  /// budget / kind fields resolved.
  [[nodiscard]] Result<std::string> RunShardedSelection(
      const Snapshot& snapshot, const SelectionRequest& request,
      SelectionOutcome& outcome);

  /// Blocks until a slot frees, the deadline passes, or the queue
  /// overflows. On success the caller owns one slot and must Release().
  [[nodiscard]] Status Admit(std::int64_t deadline_ms, double* queue_seconds)
      PODIUM_EXCLUDES(mutex_);
  void Release() PODIUM_EXCLUDES(mutex_);

  /// Cross-request instance batching: requests against one snapshot
  /// generation whose parameters resolve to the same non-default instance
  /// share a single build instead of each paying MakeInstance. The budget
  /// is normalized out of the key when it cannot change the instance
  /// (Single coverage, non-EBS weights — mirroring MatchesDefaultInstance).
  [[nodiscard]] Result<std::shared_ptr<const DiversificationInstance>>
  PooledInstance(const Snapshot& snapshot, WeightKind weight_kind,
                 CoverageKind coverage_kind, std::size_t budget)
      PODIUM_EXCLUDES(instance_mutex_);

  ServiceOptions options_;
  SnapshotHolder holder_;
  ResultCache cache_;
  SingleFlight single_flight_;

  util::Mutex mutex_{"serve.service.admission"};
  util::CondVar slot_free_;
  std::size_t running_ PODIUM_GUARDED_BY(mutex_) = 0;
  std::size_t waiting_ PODIUM_GUARDED_BY(mutex_) = 0;

  struct PooledEntry {
    std::uint64_t generation = 0;
    WeightKind weight_kind{};
    CoverageKind coverage_kind{};
    std::size_t budget = 0;  // normalized (0 when irrelevant to the build)
    std::uint64_t last_used = 0;
    std::shared_ptr<const DiversificationInstance> instance;
  };
  util::Mutex instance_mutex_{"serve.service.instance_pool"};
  std::vector<PooledEntry> instance_pool_ PODIUM_GUARDED_BY(instance_mutex_);
  std::uint64_t instance_pool_clock_ PODIUM_GUARDED_BY(instance_mutex_) = 0;
};

}  // namespace podium::serve

#endif  // PODIUM_SERVE_SERVICE_H_
