#include "podium/serve/snapshot.h"

#include <chrono>
#include <utility>

#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"

namespace podium::serve {

Result<std::shared_ptr<const Snapshot>> Snapshot::Build(
    ProfileRepository repository, const SnapshotOptions& options,
    std::uint64_t generation) {
  telemetry::PhaseSpan span("serve.snapshot_build");
  // make_shared needs a public constructor; the factory keeps construction
  // in two steps so the instance points at the repository's final address.
  std::shared_ptr<Snapshot> snapshot(
      new Snapshot());  // podium-lint: allow(raw-new)
  snapshot->repository_ = std::move(repository);
  snapshot->options_ = options;
  snapshot->generation_ = generation;
  snapshot->created_at_ = std::chrono::steady_clock::now();

  Result<DiversificationInstance> instance = DiversificationInstance::Build(
      snapshot->repository_, options.instance);
  if (!instance.ok()) return instance.status();
  snapshot->default_instance_ = std::move(instance).value();

  const GroupIndex& groups = snapshot->default_instance_.groups();
  snapshot->label_index_.reserve(groups.group_count());
  for (GroupId g = 0; g < groups.group_count(); ++g) {
    snapshot->label_index_.emplace(groups.label(g), g);
  }

  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.gauge("serve.snapshot.generation")
        .Set(static_cast<double>(generation));
    registry.gauge("serve.snapshot.users")
        .Set(static_cast<double>(snapshot->repository_.user_count()));
    registry.gauge("serve.snapshot.groups")
        .Set(static_cast<double>(groups.group_count()));
  }
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

bool Snapshot::MatchesDefaultInstance(WeightKind weight_kind,
                                      CoverageKind coverage_kind,
                                      std::size_t budget) const {
  if (weight_kind != options_.instance.weight_kind) return false;
  if (coverage_kind != options_.instance.coverage_kind) return false;
  if (budget == options_.instance.budget) return true;
  return coverage_kind == CoverageKind::kSingle &&
         weight_kind != WeightKind::kEbs;
}

Result<DiversificationInstance> Snapshot::MakeInstance(
    WeightKind weight_kind, CoverageKind coverage_kind,
    std::size_t budget) const {
  telemetry::PhaseSpan span("serve.make_instance");
  return DiversificationInstance::FromGroups(
      repository_, default_instance_.groups(), weight_kind, coverage_kind,
      budget);
}

Result<GroupId> Snapshot::ResolveLabel(const std::string& label) const {
  auto it = label_index_.find(label);
  if (it == label_index_.end()) {
    return Status::NotFound("no group labeled '" + label + "'");
  }
  return it->second;
}

}  // namespace podium::serve
