#include "podium/serve/snapshot.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <functional>
#include <string_view>
#include <utility>

#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"

namespace podium::serve {

Result<std::shared_ptr<const Snapshot>> Snapshot::Build(
    ProfileRepository repository, const SnapshotOptions& options,
    std::uint64_t generation) {
  telemetry::PhaseSpan span("serve.snapshot_build");
  // make_shared needs a public constructor; the factory keeps construction
  // in two steps so the instance points at the repository's final address.
  std::shared_ptr<Snapshot> snapshot(
      new Snapshot());  // podium-lint: allow(raw-new)
  snapshot->options_ = options;
  snapshot->generation_ = generation;
  snapshot->created_at_ = std::chrono::steady_clock::now();

  if (options.shard.num_shards > 1) {
    // Sharded mode: the partitioned engine owns per-shard
    // sub-repositories and adjacency; the global repository_ and
    // default_instance_ stay empty (the input repository is dropped once
    // the shards are built).
    Result<std::shared_ptr<const shard::ShardedSnapshot>> sharded =
        shard::ShardedSnapshot::Build(repository, options.instance,
                                      options.shard, generation);
    if (!sharded.ok()) return sharded.status();
    snapshot->sharded_ = std::move(sharded).value();
    if (telemetry::Enabled()) {
      auto& registry = telemetry::MetricsRegistry::Global();
      registry.gauge("serve.snapshot.generation")
          .Set(static_cast<double>(generation));
      registry.gauge("serve.snapshot.users")
          .Set(static_cast<double>(snapshot->user_count()));
      registry.gauge("serve.snapshot.groups")
          .Set(static_cast<double>(snapshot->group_count()));
      registry.gauge("serve.snapshot.shards")
          .Set(static_cast<double>(snapshot->sharded_->shard_count()));
      registry.gauge("serve.snapshot.memory_bytes")
          .Set(static_cast<double>(snapshot->MemoryBytes()));
    }
    return std::shared_ptr<const Snapshot>(std::move(snapshot));
  }

  snapshot->repository_ = std::move(repository);
  Result<DiversificationInstance> instance = DiversificationInstance::Build(
      snapshot->repository_, options.instance);
  if (!instance.ok()) return instance.status();
  snapshot->default_instance_ = std::move(instance).value();

  const GroupIndex& groups = snapshot->default_instance_.groups();
  // Size the table at a load factor of at most 1/2, minimum 8 slots, so
  // linear probe chains stay short. Slots hold g + 1; 0 means empty.
  const std::size_t slots = std::bit_ceil(
      std::max<std::size_t>(8, groups.group_count() * 2));
  snapshot->label_arena_ = util::Arena(util::Arena::BytesFor<GroupId>(slots));
  snapshot->label_slots_ = snapshot->label_arena_.AllocateSpan<GroupId>(slots);
  snapshot->label_mask_ = slots - 1;
  for (GroupId g = 0; g < groups.group_count(); ++g) {
    const std::size_t slot = snapshot->LabelSlot(groups.label(g));
    if (snapshot->label_slots_[slot] == 0) {
      snapshot->label_slots_[slot] = g + 1;
    }
  }

  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.gauge("serve.snapshot.generation")
        .Set(static_cast<double>(generation));
    registry.gauge("serve.snapshot.users")
        .Set(static_cast<double>(snapshot->repository_.user_count()));
    registry.gauge("serve.snapshot.groups")
        .Set(static_cast<double>(groups.group_count()));
    registry.gauge("serve.snapshot.shards").Set(1.0);
    registry.gauge("serve.snapshot.memory_bytes")
        .Set(static_cast<double>(snapshot->MemoryBytes()));
  }
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

std::size_t Snapshot::MemoryBytes() const {
  if (sharded_ != nullptr) return sharded_->MemoryBytes();
  std::size_t total = label_arena_.capacity();
  const util::Arena* adjacency =
      default_instance_.groups().adjacency_arena();
  if (adjacency != nullptr) total += adjacency->capacity();
  return total;
}

bool Snapshot::MatchesDefaultInstance(WeightKind weight_kind,
                                      CoverageKind coverage_kind,
                                      std::size_t budget) const {
  if (weight_kind != options_.instance.weight_kind) return false;
  if (coverage_kind != options_.instance.coverage_kind) return false;
  if (budget == options_.instance.budget) return true;
  return coverage_kind == CoverageKind::kSingle &&
         weight_kind != WeightKind::kEbs;
}

Result<DiversificationInstance> Snapshot::MakeInstance(
    WeightKind weight_kind, CoverageKind coverage_kind,
    std::size_t budget) const {
  telemetry::PhaseSpan span("serve.make_instance");
  return DiversificationInstance::FromGroups(
      repository_, default_instance_.groups(), weight_kind, coverage_kind,
      budget);
}

std::size_t Snapshot::LabelSlot(std::string_view label) const {
  const GroupIndex& groups = default_instance_.groups();
  std::size_t slot = std::hash<std::string_view>{}(label) & label_mask_;
  while (true) {
    const GroupId occupant = label_slots_[slot];
    if (occupant == 0 || groups.label(occupant - 1) == label) return slot;
    slot = (slot + 1) & label_mask_;
  }
}

Result<GroupId> Snapshot::ResolveLabel(const std::string& label) const {
  const GroupId occupant = label_slots_[LabelSlot(label)];
  if (occupant == 0) {
    return Status::NotFound("no group labeled '" + label + "'");
  }
  return occupant - 1;
}

}  // namespace podium::serve
