#ifndef PODIUM_SERVE_HTTP_H_
#define PODIUM_SERVE_HTTP_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "podium/util/result.h"

namespace podium::serve {

/// Minimal dependency-free HTTP/1.1 message types over POSIX sockets:
/// just enough for the selection service (and its load generator/tests) —
/// request line + headers + Content-Length bodies, keep-alive. No chunked
/// transfer, no TLS; front this with a real proxy in production.

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // "/v1/select"
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
};

/// The path component of a request target: everything before the first
/// '?' ("/metrics?format=prometheus" -> "/metrics"). Fragments are not
/// special-cased; HTTP clients do not send them.
std::string_view TargetPath(std::string_view target);

/// The query component (after the first '?'), or "" when absent.
std::string_view TargetQuery(std::string_view target);

/// The raw value of `key` in an application/x-www-form-urlencoded-shaped
/// query ("a=1&b=2"), or nullopt when the key is absent. No percent
/// decoding — the serve endpoints only take token-valued parameters
/// ("format=prometheus", "limit=50").
std::optional<std::string_view> QueryParam(std::string_view query,
                                           std::string_view key);

/// Size limits for reading untrusted messages from a socket.
struct HttpLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 4 * 1024 * 1024;
};

/// True when the request asks the server to close the connection after
/// the response (RFC 9112 §9.3/§9.6): any Connection header carries a
/// "close" token — tokens are case-insensitive and values may be comma
/// lists ("keep-alive, Close") — or the request is HTTP/1.0, whose
/// default is close unless an explicit "keep-alive" token is present.
bool RequestsConnectionClose(const HttpRequest& request);

/// Incremental request framing for a nonblocking reader: attempts to
/// parse exactly one complete request from the front of `buffer`.
///
///   - complete request  -> the request; its bytes are erased from
///                          `buffer` (pipelined successors stay put)
///   - not enough bytes  -> nullopt; `buffer` is untouched (call again
///                          after more bytes arrive)
///   - malformed/too big -> ParseError (oversized heads are detected as
///                          soon as `max_header_bytes` is exceeded, so a
///                          trickling client cannot grow the buffer
///                          unboundedly)
[[nodiscard]] Result<std::optional<HttpRequest>> TryParseHttpRequest(
    std::string& buffer, const HttpLimits& limits);

/// Buffered reader over a socket; one per connection, persisting across
/// keep-alive messages so pipelined bytes are never dropped.
class BufferedReader {
 public:
  explicit BufferedReader(int fd) : fd_(fd) {}

  /// Reads until "\r\n\r\n"; returns the head block including the blank
  /// line. NotFound on clean EOF at a message boundary.
  [[nodiscard]] Result<std::string> ReadHeaderBlock(std::size_t max_bytes);
  [[nodiscard]] Result<std::string> ReadBody(std::size_t length, std::size_t max_bytes);

 private:
  [[nodiscard]] Status Fill(bool eof_is_not_found);

  int fd_;
  std::string buffer_;
};

/// Reads one request (blocking). A clean EOF before any bytes yields
/// NotFound("connection closed") — the keep-alive loop's normal exit;
/// malformed or oversized messages yield ParseError.
[[nodiscard]] Result<HttpRequest> ReadHttpRequest(BufferedReader& reader,
                                    const HttpLimits& limits);

/// Reads one response; the client side of the above.
[[nodiscard]] Result<HttpResponse> ReadHttpResponse(BufferedReader& reader,
                                      const HttpLimits& limits);

/// Serializes a response/request, adding Content-Length (and a default
/// Connection: keep-alive) if not already present.
std::string SerializeResponse(const HttpResponse& response);
std::string SerializeRequest(const HttpRequest& request);

/// Writes the full buffer to `fd`, retrying short writes; SIGPIPE is
/// suppressed (a peer hangup surfaces as IoError).
[[nodiscard]] Status WriteAll(int fd, std::string_view data);

/// Blocking keep-alive HTTP client for the load generator and tests.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  [[nodiscard]] Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends `request` and reads the response on the persistent connection.
  [[nodiscard]] Result<HttpResponse> RoundTrip(const HttpRequest& request);

 private:
  int fd_ = -1;
  HttpLimits limits_;
  std::unique_ptr<BufferedReader> reader_;
};

}  // namespace podium::serve

#endif  // PODIUM_SERVE_HTTP_H_
