#ifndef PODIUM_SERVE_HTTP_SERVER_H_
#define PODIUM_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "podium/serve/event_loop.h"
#include "podium/serve/http.h"
#include "podium/util/mutex.h"
#include "podium/util/status.h"
#include "podium/util/thread_annotations.h"

namespace podium::serve {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port() after Start().
  int port = 0;
  /// Threads running the handler. Unlike the old blocking design they are
  /// busy only while a request is being handled — idle keep-alive
  /// connections are parked in the event loop, not on a thread — so this
  /// bounds concurrent handling, not concurrent clients.
  std::size_t worker_threads = 8;
  HttpLimits limits;
  /// When > 0, every Nth request's access-log line also carries its span
  /// tree (a sampled trace), so production logs show where time went
  /// without logging every request's spans.
  std::size_t trace_log_every = 0;
  /// Pause before retrying accept() after fd exhaustion (EventLoopOptions
  /// passthrough).
  int accept_backoff_ms = 50;
  /// Test-only accept override (EventLoopOptions passthrough).
  std::function<int(int listen_fd)> accept_fn;
};

/// HTTP/1.1 server over an epoll event loop (EventLoop): one loop thread
/// accepts and parses requests incrementally as bytes arrive and writes
/// responses without blocking, a bounded worker pool runs the handler for
/// complete requests. The handler must be thread-safe; it is invoked
/// concurrently from every worker.
///
/// Every request runs under a request-scoped trace (podium::obs): the
/// X-Podium-Trace-Id request header is adopted when it parses as 32 hex
/// chars, minted otherwise, always echoed on the response, and the
/// finished span tree — including an "http.queue" span for the time the
/// parsed request waited for a worker — is recorded into
/// obs::TraceRing::Global() (served by GET /v1/traces). Each request also
/// emits an info-level structured access-log line stamped with the trace
/// id.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(HttpServerOptions options, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the event loop + workers. port() is valid
  /// after an OK return.
  [[nodiscard]] Status Start();

  /// Shuts down: stops accepting, closes every connection, joins the loop
  /// thread and every worker. Idempotent AND safe under concurrent
  /// callers: exactly one performs the shutdown, every other caller
  /// blocks until it has finished (nobody double-joins).
  void Stop() PODIUM_EXCLUDES(mutex_);

  int port() const { return port_; }

  /// Blocks until Stop() is called from another thread (or a signal
  /// handler); the serve tool's main loop.
  void Wait() PODIUM_EXCLUDES(mutex_);

 private:
  enum class State { kIdle, kRunning, kStopping, kStopped };

  /// Runs handler_ under a fresh TraceContext, records the finished trace
  /// (with the worker-pool queue delay as an "http.queue" span) and the
  /// access-log line, and stamps the trace id on the response.
  HttpResponse DispatchTraced(const HttpRequest& request,
                              double queue_seconds);

  HttpServerOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<std::uint64_t> request_count_{0};
  std::unique_ptr<EventLoop> loop_;

  util::Mutex mutex_{"serve.http_server.lifecycle"};
  util::CondVar stopped_;
  State state_ PODIUM_GUARDED_BY(mutex_) = State::kIdle;
};

}  // namespace podium::serve

#endif  // PODIUM_SERVE_HTTP_SERVER_H_
