#ifndef PODIUM_SERVE_HTTP_SERVER_H_
#define PODIUM_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "podium/serve/http.h"
#include "podium/util/mutex.h"
#include "podium/util/status.h"
#include "podium/util/thread_annotations.h"

namespace podium::serve {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port() after Start().
  int port = 0;
  /// Threads handling connections; each owns one connection at a time
  /// (HTTP/1.1 keep-alive serializes requests per connection anyway), so
  /// this bounds concurrently-served clients.
  std::size_t worker_threads = 8;
  HttpLimits limits;
  /// When > 0, every Nth request's access-log line also carries its span
  /// tree (a sampled trace), so production logs show where time went
  /// without logging every request's spans.
  std::size_t trace_log_every = 0;
};

/// Minimal blocking HTTP/1.1 server: an acceptor thread queues accepted
/// sockets, worker threads run the keep-alive request loop and call the
/// handler per request. The handler must be thread-safe; it is invoked
/// concurrently from every worker.
///
/// Every request runs under a request-scoped trace (podium::obs): the
/// X-Podium-Trace-Id request header is adopted when it parses as 32 hex
/// chars, minted otherwise, always echoed on the response, and the
/// finished span tree is recorded into obs::TraceRing::Global() (served
/// by GET /v1/traces). Each request also emits an info-level structured
/// access-log line stamped with the trace id.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(HttpServerOptions options, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the acceptor + workers. port() is valid
  /// after an OK return.
  [[nodiscard]] Status Start();

  /// Shuts down: stops accepting, unblocks workers parked in recv (open
  /// connections are shut down), joins every thread. Idempotent.
  void Stop() PODIUM_EXCLUDES(mutex_);

  int port() const { return port_; }

  /// Blocks until Stop() is called from another thread (or a signal
  /// handler); the serve tool's main loop.
  void Wait() PODIUM_EXCLUDES(mutex_);

 private:
  void AcceptLoop() PODIUM_EXCLUDES(mutex_);
  void WorkerLoop() PODIUM_EXCLUDES(mutex_);
  void HandleConnection(int fd);
  /// Runs handler_ under a fresh TraceContext, records the finished trace
  /// and the access-log line, and stamps the trace id on the response.
  HttpResponse DispatchTraced(const HttpRequest& request);

  HttpServerOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<std::uint64_t> request_count_{0};

  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  util::Mutex mutex_;
  util::CondVar work_ready_;
  util::CondVar stopped_;
  // Accepted fds awaiting a worker.
  std::deque<int> pending_ PODIUM_GUARDED_BY(mutex_);
  // Connections being served.
  std::unordered_set<int> active_fds_ PODIUM_GUARDED_BY(mutex_);
};

}  // namespace podium::serve

#endif  // PODIUM_SERVE_HTTP_SERVER_H_
