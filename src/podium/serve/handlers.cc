#include "podium/serve/handlers.h"

#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "podium/json/writer.h"
#include "podium/obs/prometheus.h"
#include "podium/obs/trace.h"
#include "podium/serve/request.h"
#include "podium/telemetry/export.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/parse.h"
#include "podium/util/stopwatch.h"
#include "podium/util/string_util.h"

namespace podium::serve {

namespace {

HttpResponse JsonResponse(int status, const std::string& reason,
                          std::string body) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  json::Object root;
  root.Set("error", json::Value(std::string(StatusCodeToString(status.code()))));
  root.Set("message", json::Value(status.message()));
  const int http_status = HttpStatusFor(status);
  return JsonResponse(http_status, http_status >= 500 ? "Server Error" : "Error",
                      json::Write(json::Value(std::move(root))) + "\n");
}

HttpResponse HandleSelect(SelectionService& service,
                          const HttpRequest& request) {
  Result<json::Value> document =
      json::Parse(request.body, UntrustedParseOptions());
  if (!document.ok()) return ErrorResponse(document.status());
  Result<SelectionRequest> parsed = SelectionRequestFromJson(document.value());
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  Result<ServiceReply> reply = service.Select(parsed.value());
  if (!reply.ok()) return ErrorResponse(reply.status());

  HttpResponse response = JsonResponse(200, "OK", std::move(reply->body));
  response.headers.emplace_back("X-Podium-Cache",
                                reply->cache_hit ? "hit" : "miss");
  if (reply->coalesced) {
    response.headers.emplace_back("X-Podium-Coalesced", "1");
  }
  response.headers.emplace_back(
      "X-Podium-Queue-Ms",
      util::FormatDouble(reply->queue_seconds * 1e3, 3));
  response.headers.emplace_back("X-Podium-Run-Ms",
                                util::FormatDouble(reply->run_seconds * 1e3, 3));
  response.headers.emplace_back(
      "X-Podium-Snapshot",
      util::StringPrintf("%llu", static_cast<unsigned long long>(
                                     reply->snapshot_generation)));
  return response;
}

HttpResponse HandleHealthz(SelectionService& service) {
  const std::shared_ptr<const Snapshot> snapshot = service.snapshot();
  json::Object root;
  root.Set("status", json::Value(snapshot ? "ok" : "loading"));
  if (snapshot) {
    root.Set("snapshot_generation",
             json::Value(static_cast<double>(snapshot->generation())));
    root.Set("snapshot_age_seconds", json::Value(snapshot->AgeSeconds()));
    root.Set("users", json::Value(snapshot->user_count()));
    root.Set("groups", json::Value(snapshot->group_count()));
    root.Set("memory_bytes",
             json::Value(static_cast<double>(snapshot->MemoryBytes())));
    const shard::ShardedSnapshot* sharded = snapshot->sharded();
    root.Set("shards",
             json::Value(sharded ? sharded->shard_count() : std::size_t{1}));
    if (sharded != nullptr) {
      json::Array shard_users;
      shard_users.reserve(sharded->shard_count());
      for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
        shard_users.emplace_back(
            static_cast<double>(sharded->shard(s).user_count()));
      }
      root.Set("shard_users", json::Value(std::move(shard_users)));
    }
  }
  return JsonResponse(snapshot ? 200 : 503, snapshot ? "OK" : "Loading",
                      json::Write(json::Value(std::move(root))) + "\n");
}

HttpResponse HandleMetrics(std::string_view query) {
  if (const std::optional<std::string_view> format =
          QueryParam(query, "format");
      format.has_value()) {
    if (*format == "prometheus") {
      HttpResponse response;
      response.status = 200;
      response.reason = "OK";
      response.headers.emplace_back("Content-Type",
                                    "text/plain; version=0.0.4");
      response.body = obs::RenderPrometheus(
          telemetry::MetricsRegistry::Global().Snapshot());
      return response;
    }
    if (*format != "json") {
      return ErrorResponse(Status::InvalidArgument(
          "unknown metrics format '" + std::string(*format) +
          "' (expected json or prometheus)"));
    }
  }
  json::WriteOptions options;
  options.indent = 2;
  return JsonResponse(
      200, "OK", json::Write(telemetry::TelemetryToJson(), options) + "\n");
}

json::Value SpanToJson(const obs::TraceSpan& span) {
  json::Object out;
  out.Set("name", json::Value(span.name));
  out.Set("parent", json::Value(static_cast<double>(span.parent)));
  out.Set("start_seconds", json::Value(span.start_seconds));
  out.Set("duration_seconds", json::Value(span.duration_seconds));
  return json::Value(std::move(out));
}

HttpResponse HandleTraces(std::string_view query) {
  std::size_t limit = 0;  // 0 = everything the ring retains
  if (const std::optional<std::string_view> raw = QueryParam(query, "limit");
      raw.has_value()) {
    const Result<std::size_t> parsed = util::ParseSize(*raw);
    if (!parsed.ok()) {
      return ErrorResponse(Status::InvalidArgument(
          "bad limit '" + std::string(*raw) + "': must be a non-negative "
          "integer"));
    }
    limit = parsed.value();
  }
  const std::vector<obs::FinishedTrace> traces =
      obs::TraceRing::Global().Snapshot(limit);
  json::Array items;
  items.reserve(traces.size());
  for (const obs::FinishedTrace& trace : traces) {
    json::Object item;
    item.Set("trace_id", json::Value(trace.trace_id));
    item.Set("method", json::Value(trace.method));
    item.Set("path", json::Value(trace.path));
    item.Set("status", json::Value(static_cast<double>(trace.http_status)));
    item.Set("start_unix_seconds", json::Value(trace.start_unix_seconds));
    item.Set("duration_seconds", json::Value(trace.total_seconds));
    json::Array spans;
    spans.reserve(trace.spans.size());
    for (const obs::TraceSpan& span : trace.spans) {
      spans.push_back(SpanToJson(span));
    }
    item.Set("spans", json::Value(std::move(spans)));
    items.push_back(json::Value(std::move(item)));
  }
  json::Object root;
  root.Set("capacity", json::Value(static_cast<double>(
                           obs::TraceRing::Global().capacity())));
  root.Set("count", json::Value(static_cast<double>(items.size())));
  root.Set("traces", json::Value(std::move(items)));
  return JsonResponse(200, "OK",
                      json::Write(json::Value(std::move(root))) + "\n");
}

HttpResponse HandleReload(const std::function<Status()>& reload) {
  if (!reload) {
    return ErrorResponse(
        Status::NotFound("reload is not configured for this server"));
  }
  const Status status = reload();
  if (!status.ok()) return ErrorResponse(status);
  return JsonResponse(200, "OK", "{\"status\":\"reloaded\"}\n");
}

/// Per-endpoint latency + per-status-code response count. `path_label` is
/// a known route or "other" — never the raw request target, so hostile
/// paths cannot mint unbounded metric names.
void RecordHttpMetrics(std::string_view path_label, int status,
                       double seconds) {
  if (!telemetry::Enabled()) return;
  auto& registry = telemetry::MetricsRegistry::Global();
  registry
      .histogram(util::StringPrintf("serve.http.request_seconds{path=\"%.*s\"}",
                                    static_cast<int>(path_label.size()),
                                    path_label.data()),
                 telemetry::DefaultLatencyBounds())
      .Observe(seconds);
  registry.counter(util::StringPrintf("serve.http.responses{code=\"%d\"}",
                                      status))
      .Add();
}

HttpResponse RouteRequest(SelectionService& service,
                          const std::function<Status()>& reload,
                          const HttpRequest& request, std::string_view path) {
  if (path == "/v1/select") {
    if (request.method != "POST") {
      return ErrorResponse(Status::InvalidArgument(
          "/v1/select requires POST"));
    }
    return HandleSelect(service, request);
  }
  if (path == "/healthz") {
    return HandleHealthz(service);
  }
  if (path == "/metrics") {
    return HandleMetrics(TargetQuery(request.target));
  }
  if (path == "/v1/traces") {
    return HandleTraces(TargetQuery(request.target));
  }
  if (path == "/v1/reload") {
    if (request.method != "POST") {
      return ErrorResponse(Status::InvalidArgument(
          "/v1/reload requires POST"));
    }
    return HandleReload(reload);
  }
  return ErrorResponse(
      Status::NotFound("no route for " + request.method + " " +
                       request.target));
}

}  // namespace

json::ParseOptions UntrustedParseOptions() {
  json::ParseOptions options;
  options.max_depth = 32;
  options.max_document_bytes = 1 << 20;   // 1 MiB
  options.max_total_nodes = 100000;
  return options;
}

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kUnimplemented:
      return 501;
    default:
      return 500;
  }
}

HttpServer::Handler MakeServiceHandler(SelectionService& service,
                                       std::function<Status()> reload) {
  return [&service, reload = std::move(reload)](const HttpRequest& request)
             -> HttpResponse {
    static constexpr std::string_view kRoutes[] = {
        "/v1/select", "/healthz", "/metrics", "/v1/traces", "/v1/reload"};
    const std::string_view path = TargetPath(request.target);
    std::string_view path_label = "other";
    for (const std::string_view route : kRoutes) {
      if (path == route) {
        path_label = route;
        break;
      }
    }
    util::Stopwatch watch;
    HttpResponse response = RouteRequest(service, reload, request, path);
    RecordHttpMetrics(path_label, response.status, watch.ElapsedSeconds());
    return response;
  };
}

}  // namespace podium::serve
