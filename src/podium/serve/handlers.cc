#include "podium/serve/handlers.h"

#include <utility>

#include "podium/json/writer.h"
#include "podium/serve/request.h"
#include "podium/telemetry/export.h"
#include "podium/util/string_util.h"

namespace podium::serve {

namespace {

HttpResponse JsonResponse(int status, const std::string& reason,
                          std::string body) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  json::Object root;
  root.Set("error", json::Value(std::string(StatusCodeToString(status.code()))));
  root.Set("message", json::Value(status.message()));
  const int http_status = HttpStatusFor(status);
  return JsonResponse(http_status, http_status >= 500 ? "Server Error" : "Error",
                      json::Write(json::Value(std::move(root))) + "\n");
}

HttpResponse HandleSelect(SelectionService& service,
                          const HttpRequest& request) {
  Result<json::Value> document =
      json::Parse(request.body, UntrustedParseOptions());
  if (!document.ok()) return ErrorResponse(document.status());
  Result<SelectionRequest> parsed = SelectionRequestFromJson(document.value());
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  Result<ServiceReply> reply = service.Select(parsed.value());
  if (!reply.ok()) return ErrorResponse(reply.status());

  HttpResponse response = JsonResponse(200, "OK", std::move(reply->body));
  response.headers.emplace_back("X-Podium-Cache",
                                reply->cache_hit ? "hit" : "miss");
  response.headers.emplace_back(
      "X-Podium-Queue-Ms",
      util::FormatDouble(reply->queue_seconds * 1e3, 3));
  response.headers.emplace_back("X-Podium-Run-Ms",
                                util::FormatDouble(reply->run_seconds * 1e3, 3));
  response.headers.emplace_back(
      "X-Podium-Snapshot",
      util::StringPrintf("%llu", static_cast<unsigned long long>(
                                     reply->snapshot_generation)));
  return response;
}

HttpResponse HandleHealthz(SelectionService& service) {
  const std::shared_ptr<const Snapshot> snapshot = service.snapshot();
  json::Object root;
  root.Set("status", json::Value(snapshot ? "ok" : "loading"));
  if (snapshot) {
    root.Set("snapshot_generation",
             json::Value(static_cast<double>(snapshot->generation())));
    root.Set("users", json::Value(snapshot->repository().user_count()));
    root.Set("groups",
             json::Value(snapshot->default_instance().groups().group_count()));
  }
  return JsonResponse(snapshot ? 200 : 503, snapshot ? "OK" : "Loading",
                      json::Write(json::Value(std::move(root))) + "\n");
}

HttpResponse HandleMetrics() {
  json::WriteOptions options;
  options.indent = 2;
  return JsonResponse(
      200, "OK", json::Write(telemetry::TelemetryToJson(), options) + "\n");
}

HttpResponse HandleReload(const std::function<Status()>& reload) {
  if (!reload) {
    return ErrorResponse(
        Status::NotFound("reload is not configured for this server"));
  }
  const Status status = reload();
  if (!status.ok()) return ErrorResponse(status);
  return JsonResponse(200, "OK", "{\"status\":\"reloaded\"}\n");
}

}  // namespace

json::ParseOptions UntrustedParseOptions() {
  json::ParseOptions options;
  options.max_depth = 32;
  options.max_document_bytes = 1 << 20;   // 1 MiB
  options.max_total_nodes = 100000;
  return options;
}

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kUnimplemented:
      return 501;
    default:
      return 500;
  }
}

HttpServer::Handler MakeServiceHandler(SelectionService& service,
                                       std::function<Status()> reload) {
  return [&service, reload = std::move(reload)](const HttpRequest& request)
             -> HttpResponse {
    if (request.target == "/v1/select") {
      if (request.method != "POST") {
        return ErrorResponse(Status::InvalidArgument(
            "/v1/select requires POST"));
      }
      return HandleSelect(service, request);
    }
    if (request.target == "/healthz") {
      return HandleHealthz(service);
    }
    if (request.target == "/metrics") {
      return HandleMetrics();
    }
    if (request.target == "/v1/reload") {
      if (request.method != "POST") {
        return ErrorResponse(Status::InvalidArgument(
            "/v1/reload requires POST"));
      }
      return HandleReload(reload);
    }
    return ErrorResponse(
        Status::NotFound("no route for " + request.method + " " +
                         request.target));
  };
}

}  // namespace podium::serve
