#include "podium/serve/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "podium/obs/log.h"
#include "podium/serve/io_util.h"
#include "podium/telemetry/telemetry.h"

namespace podium::serve {

namespace {

constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

bool IsResourceExhaustion(int error) {
  return error == EMFILE || error == ENFILE || error == ENOBUFS ||
         error == ENOMEM;
}

/// The best-effort 400 sent before hanging up on a malformed request;
/// mirrors what the blocking server used to send.
std::string BadRequestBytes(const Status& status) {
  HttpResponse bad;
  bad.status = 400;
  bad.reason = "Bad Request";
  bad.body = status.ToString() + "\n";
  bad.headers.emplace_back("Content-Type", "text/plain");
  bad.headers.emplace_back("Connection", "close");
  return SerializeResponse(bad);
}

}  // namespace

EventLoop::EventLoop(int listen_fd, EventLoopOptions options,
                     Dispatch dispatch)
    : listen_fd_(listen_fd), options_(std::move(options)),
      dispatch_(std::move(dispatch)) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const Status error(StatusCode::kIoError,
                       std::string("eventfd: ") + std::strerror(errno));
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return error;
  }
  SetNonBlocking(listen_fd_);

  epoll_event listen_event{};
  listen_event.events = EPOLLIN;
  listen_event.data.u64 = kListenId;
  epoll_event wake_event{};
  wake_event.events = EPOLLIN;
  wake_event.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_event) != 0 ||
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_event) != 0) {
    const Status error(StatusCode::kIoError,
                       std::string("epoll_ctl: ") + std::strerror(errno));
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    return error;
  }

  stopping_.store(false, std::memory_order_relaxed);
  loop_ = std::thread([this] { LoopThread(); });
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerThread(); });
  }
  return Status::Ok();
}

void EventLoop::Stop() {
  {
    util::MutexLock lock(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  // Best effort: the loop also re-checks stopping_ on every event.
  if (wake_fd_ >= 0) io::SignalEventFd(wake_fd_);
  task_ready_.NotifyAll();
  if (loop_.joinable()) loop_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void EventLoop::LoopThread() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    if (accept_paused_) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(accept_resume_at_ -
                                     std::chrono::steady_clock::now());
      // +1 rounds the truncated duration up so the timer cannot spin on a
      // sub-millisecond remainder.
      timeout_ms = remaining.count() > 0
                       ? static_cast<int>(remaining.count()) + 1
                       : 0;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      obs::LogError("epoll_wait failed; event loop exiting")
          .Str("error", std::strerror(errno));
      break;
    }
    if (accept_paused_ &&
        std::chrono::steady_clock::now() >= accept_resume_at_) {
      ResumeAccepting();
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        AcceptReady();
      } else if (id == kWakeId) {
        io::DrainEventFd(wake_fd_);
      } else {
        HandleConnectionEvent(id, events[i].events);
      }
    }
    DrainCompletions();
  }
  for (auto& [id, connection] : connections_) ::close(connection.fd);
  connections_.clear();
}

void EventLoop::WorkerThread() {
  for (;;) {
    Task task;
    {
      util::MutexLock lock(task_mutex_);
      while (!stopping_.load(std::memory_order_acquire) && tasks_.empty()) {
        task_ready_.Wait(lock);
      }
      if (stopping_.load(std::memory_order_acquire)) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    const double queue_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      task.enqueued_at)
            .count();
    HttpResponse response = dispatch_(task.request, queue_seconds);
    if (task.close_requested) {
      response.headers.emplace_back("Connection", "close");
    }
    Completion completion;
    completion.conn_id = task.conn_id;
    completion.bytes = SerializeResponse(response);
    completion.close_after_write = task.close_requested;
    {
      util::MutexLock lock(completion_mutex_);
      completions_.push_back(std::move(completion));
    }
    io::SignalEventFd(wake_fd_);
  }
}

void EventLoop::AcceptReady() {
  for (;;) {
    const int fd = options_.accept_fn ? options_.accept_fn(listen_fd_)
                                      : io::RetryAccept4(listen_fd_);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (stopping_.load(std::memory_order_acquire)) return;
      // Resource exhaustion (fd table full under load) or anything else
      // unexpected: count it, back off, retry — never silently stop
      // accepting while /healthz stays green.
      if (telemetry::Enabled()) {
        telemetry::MetricsRegistry::Global()
            .counter("serve.http.accept_failures")
            .Add();
      }
      obs::LogWarn("accept failed; pausing accepts")
          .Str("error", std::strerror(errno))
          .Num("backoff_ms", options_.accept_backoff_ms)
          .Str("kind", IsResourceExhaustion(errno) ? "fd-exhaustion"
                                                   : "other");
      PauseAccepting();
      return;
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (telemetry::Enabled()) {
      telemetry::MetricsRegistry::Global()
          .counter("serve.http.connections")
          .Add();
    }
    const std::uint64_t id = next_conn_id_++;
    Connection& connection = connections_[id];
    connection.fd = fd;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      connections_.erase(id);
    }
  }
}

void EventLoop::PauseAccepting() {
  epoll_event event{};
  event.events = 0;
  event.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &event);
  accept_paused_ = true;
  accept_resume_at_ =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.accept_backoff_ms);
}

void EventLoop::ResumeAccepting() {
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &event);
  accept_paused_ = false;
  // The listen backlog may hold connections that arrived while paused and
  // will not re-trigger a level; drain them now.
  AcceptReady();
}

void EventLoop::HandleConnectionEvent(std::uint64_t id,
                                      std::uint32_t events) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;  // closed earlier in this batch
  if ((events & EPOLLERR) != 0) {
    CloseConnection(id);
    return;
  }
  // EPOLLHUP still allows draining buffered bytes; the recv-0 path below
  // records the EOF.
  if ((events & (EPOLLIN | EPOLLHUP)) != 0) ReadReady(id);
  if (connections_.find(id) == connections_.end()) return;
  if ((events & EPOLLOUT) != 0) FlushOutput(id);
}

void EventLoop::ReadReady(std::uint64_t id) {
  Connection& connection = connections_[id];
  // While a request is in flight we still read (clients may pipeline),
  // but bounded: past this cap reading pauses until the response drains.
  const std::size_t input_cap = options_.limits.max_header_bytes +
                                options_.limits.max_body_bytes + 8192;
  char chunk[16384];
  for (;;) {
    const ssize_t n = io::RetryRecv(connection.fd, chunk, sizeof(chunk));
    if (n > 0) {
      connection.input.append(chunk, static_cast<std::size_t>(n));
      if (connection.in_flight && connection.input.size() >= input_cap) {
        connection.want_read = false;
        UpdateInterest(id);
        break;
      }
      continue;
    }
    if (n == 0) {
      connection.peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(id);
    return;
  }
  MaybeDispatch(id);
}

void EventLoop::MaybeDispatch(std::uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& connection = it->second;
  if (connection.in_flight || connection.close_after_write) return;

  Result<std::optional<HttpRequest>> parsed =
      TryParseHttpRequest(connection.input, options_.limits);
  if (!parsed.ok()) {
    // Malformed request: best-effort 400, then hang up. Nothing after the
    // error is trustworthy, so drop any remaining input.
    connection.input.clear();
    connection.output += BadRequestBytes(parsed.status());
    connection.close_after_write = true;
    FlushOutput(id);
    return;
  }
  if (!parsed.value().has_value()) {
    // Incomplete: wait for more bytes — unless the peer is gone, which
    // makes this either a clean keep-alive close (empty buffer) or an
    // abandoned partial request that can never complete; either way,
    // close once any pending response has drained.
    if (connection.peer_closed) {
      connection.close_after_write = true;
      FlushOutput(id);
    }
    return;
  }

  Task task;
  task.conn_id = id;
  task.request = std::move(*parsed.value());
  task.close_requested = RequestsConnectionClose(task.request);
  task.enqueued_at = std::chrono::steady_clock::now();
  connection.in_flight = true;
  {
    util::MutexLock lock(task_mutex_);
    tasks_.push_back(std::move(task));
  }
  task_ready_.NotifyOne();
}

void EventLoop::FlushOutput(std::uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& connection = it->second;
  while (connection.output_offset < connection.output.size()) {
    const ssize_t n = io::RetrySend(
        connection.fd, connection.output.data() + connection.output_offset,
        connection.output.size() - connection.output_offset);
    if (n >= 0) {
      connection.output_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!connection.want_write) {
        connection.want_write = true;
        UpdateInterest(id);
      }
      return;
    }
    CloseConnection(id);
    return;
  }
  connection.output.clear();
  connection.output_offset = 0;
  if (connection.close_after_write) {
    CloseConnection(id);
    return;
  }
  bool interest_changed = false;
  if (connection.want_write) {
    connection.want_write = false;
    interest_changed = true;
  }
  if (!connection.want_read && !connection.in_flight) {
    connection.want_read = true;  // backpressure released
    interest_changed = true;
  }
  if (interest_changed) UpdateInterest(id);
}

void EventLoop::UpdateInterest(std::uint64_t id) {
  const Connection& connection = connections_[id];
  epoll_event event{};
  event.events = (connection.want_read ? EPOLLIN : 0u) |
                 (connection.want_write ? EPOLLOUT : 0u);
  event.data.u64 = id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection.fd, &event);
}

void EventLoop::CloseConnection(std::uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  connections_.erase(it);
}

void EventLoop::DrainCompletions() {
  std::vector<Completion> batch;
  {
    util::MutexLock lock(completion_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // connection died mid-request
    Connection& connection = it->second;
    connection.in_flight = false;
    if (completion.close_after_write) connection.close_after_write = true;
    connection.output += completion.bytes;
    FlushOutput(completion.conn_id);
    // If the connection survived the write, a pipelined request may
    // already be buffered.
    if (connections_.find(completion.conn_id) != connections_.end()) {
      MaybeDispatch(completion.conn_id);
    }
  }
}

}  // namespace podium::serve
