#ifndef PODIUM_SERVE_SNAPSHOT_H_
#define PODIUM_SERVE_SNAPSHOT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "podium/core/instance.h"
#include "podium/profile/repository.h"
#include "podium/shard/partitioner.h"
#include "podium/shard/sharded_snapshot.h"
#include "podium/util/arena.h"
#include "podium/util/result.h"

namespace podium::serve {

/// Snapshot construction options: the grouping and default instance
/// parameters every request shares. Requests may override weight kind,
/// coverage kind and budget per call; the grouping (and therefore the
/// bucketized score groups) is fixed per snapshot — regrouping requires a
/// reload.
struct SnapshotOptions {
  InstanceOptions instance;
  /// num_shards > 1 builds the partitioned engine (DESIGN.md §13) behind
  /// the same Snapshot/SnapshotHolder surface: requests, cache keys, and
  /// the reload swap are unchanged.
  shard::ShardOptions shard;
};

/// An immutable bundle of everything a selection request reads: the
/// profile repository, the prebuilt CSR GroupIndex with its bucketized
/// score groups (inside the default DiversificationInstance), and a
/// label → group id index for resolving customization feedback.
///
/// Built once at startup (or on reload) and shared across concurrent
/// requests via shared_ptr — request threads hold a reference for the
/// duration of a request, so a snapshot swapped out mid-flight stays
/// alive until its last request completes. Nothing in here mutates after
/// Build(), so no per-request locking is needed.
class Snapshot {
 public:
  /// Builds a snapshot over `repository` (taking ownership). The group
  /// index and the default instance (weights + coverage evaluated) are
  /// built eagerly so no request pays for them. `generation`
  /// distinguishes reloads; it is part of every cache key.
  [[nodiscard]] static Result<std::shared_ptr<const Snapshot>> Build(
      ProfileRepository repository, const SnapshotOptions& options,
      std::uint64_t generation);

  /// Only meaningful for unsharded snapshots (empty under sharding — the
  /// population lives in the per-shard sub-repositories).
  const ProfileRepository& repository() const { return repository_; }
  const SnapshotOptions& options() const { return options_; }
  std::uint64_t generation() const { return generation_; }

  /// The sharded engine, or nullptr when this snapshot is unsharded.
  const shard::ShardedSnapshot* sharded() const { return sharded_.get(); }
  bool is_sharded() const { return sharded_ != nullptr; }

  /// Population / group count, valid in both modes.
  std::size_t user_count() const {
    return sharded_ ? sharded_->user_count() : repository_.user_count();
  }
  std::size_t group_count() const {
    return sharded_ ? sharded_->group_count()
                    : default_instance_.groups().group_count();
  }

  /// Total arena-backed bytes behind this snapshot: CSR adjacency (summed
  /// over shards when sharded) plus the label table. Surfaced by /healthz
  /// and /metrics so the serve-time memory footprint is visible.
  std::size_t MemoryBytes() const;

  /// Seconds since this snapshot was built — /healthz reports it as
  /// snapshot_age_seconds so operators can spot a stale reload loop.
  double AgeSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         created_at_)
        .count();
  }

  /// The instance built with the snapshot's default weight/coverage/budget.
  const DiversificationInstance& default_instance() const {
    return default_instance_;
  }

  /// True when (weight_kind, coverage_kind, budget) can be served by
  /// default_instance() without building a per-request instance. Budget
  /// only matters to the instance itself under Prop coverage or EBS
  /// weights (both read B); otherwise it is just the selector's stop
  /// condition.
  bool MatchesDefaultInstance(WeightKind weight_kind,
                              CoverageKind coverage_kind,
                              std::size_t budget) const;

  /// Builds an instance with request-specific weight/coverage/budget over
  /// the shared repository and a copy of the prebuilt group index (the
  /// grouping itself is never recomputed). The instance references this
  /// snapshot's repository; callers must keep their shared_ptr alive for
  /// the instance's lifetime.
  [[nodiscard]] Result<DiversificationInstance> MakeInstance(WeightKind weight_kind,
                                               CoverageKind coverage_kind,
                                               std::size_t budget) const;

  /// Resolves a group label to its id in O(1), or NotFound.
  [[nodiscard]] Result<GroupId> ResolveLabel(const std::string& label) const;

 private:
  Snapshot() = default;

  /// Slot index where `label` lives or would be inserted: the first slot
  /// in the linear probe chain that is empty or already holds a group
  /// with that exact label.
  std::size_t LabelSlot(std::string_view label) const;

  ProfileRepository repository_;
  SnapshotOptions options_;
  std::shared_ptr<const shard::ShardedSnapshot> sharded_;
  std::uint64_t generation_ = 0;
  std::chrono::steady_clock::time_point created_at_{};
  DiversificationInstance default_instance_;
  // Label → group id as a flat open-addressing table in one arena block
  // instead of an unordered_map: slots hold g + 1 (0 = empty), the slot
  // count is a power of two at least twice the group count, collisions
  // probe linearly, and lookups compare against the group's own label —
  // the table stores no strings of its own. Duplicate labels keep the
  // first (lowest) group id, matching the map's emplace semantics.
  util::Arena label_arena_;
  std::span<GroupId> label_slots_;
  std::size_t label_mask_ = 0;  // slot count - 1
};

/// The service's current snapshot, swappable atomically while requests
/// are in flight (the reload path). Readers pay one atomic shared_ptr
/// load; they never block a swap and a swap never blocks them.
class SnapshotHolder {
 public:
  explicit SnapshotHolder(std::shared_ptr<const Snapshot> snapshot = nullptr)
      : snapshot_(std::move(snapshot)) {}

  std::shared_ptr<const Snapshot> Current() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  void Swap(std::shared_ptr<const Snapshot> next) {
    snapshot_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
};

}  // namespace podium::serve

#endif  // PODIUM_SERVE_SNAPSHOT_H_
