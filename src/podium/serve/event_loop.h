#ifndef PODIUM_SERVE_EVENT_LOOP_H_
#define PODIUM_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "podium/serve/http.h"
#include "podium/util/mutex.h"
#include "podium/util/status.h"
#include "podium/util/thread_annotations.h"

namespace podium::serve {

struct EventLoopOptions {
  /// Handler threads. They run only while a complete request is being
  /// handled — idle keep-alive connections cost a buffer in the loop, not
  /// a parked thread, so this bounds concurrent *handling*, not clients.
  std::size_t worker_threads = 8;
  HttpLimits limits;
  /// How long to pause accepting after accept() fails on resource
  /// exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM). The listen backlog holds
  /// arrivals meanwhile; the pause gives in-flight responses a chance to
  /// return fds instead of spinning on a full table.
  int accept_backoff_ms = 50;
  /// Test-only accept override: must behave like accept4(listen_fd) —
  /// return an accepted socket, or -1 with errno set. Lets tests inject
  /// deterministic EMFILE failures without draining the real fd table.
  std::function<int(int listen_fd)> accept_fn;
};

/// Nonblocking epoll reactor behind HttpServer: one loop thread owns the
/// listen socket and every connection (accept, incremental request
/// parsing as bytes arrive, response writes), and a bounded worker pool
/// runs the dispatch callback for complete requests. The loop thread
/// never blocks on a socket and workers never touch one, so a trickling
/// or idle connection cannot starve request handling.
///
/// Lifecycle invariants:
///   - accept failures never terminate the loop: resource exhaustion
///     pauses accepting for `accept_backoff_ms` (counted on the
///     serve.http.accept_failures telemetry counter) and retries;
///   - per connection, requests are handled strictly in order (HTTP/1.1
///     keep-alive semantics); pipelined bytes are buffered, bounded by
///     HttpLimits, and parsed once the previous response is queued;
///   - connection close honors RFC 9112 token semantics via
///     RequestsConnectionClose (case-insensitive comma lists, HTTP/1.0
///     implicit close).
class EventLoop {
 public:
  /// Runs on a worker thread once a request is fully parsed.
  /// `queue_seconds` is the parsed-to-dispatched delay (worker-pool
  /// queueing), which the server projects into the request trace.
  using Dispatch =
      std::function<HttpResponse(const HttpRequest&, double queue_seconds)>;

  /// `listen_fd` must already be bound + listening; the caller keeps
  /// ownership (EventLoop only accepts from it and never closes it).
  EventLoop(int listen_fd, EventLoopOptions options, Dispatch dispatch);
  /// The owner must Stop() first (HttpServer's Stop state machine does);
  /// the destructor stops as a backstop for error paths.
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread and the worker pool.
  [[nodiscard]] Status Start();

  /// Wakes and joins the loop thread and every worker, then closes all
  /// connection fds. Idempotent; safe to call concurrently.
  void Stop() PODIUM_EXCLUDES(lifecycle_mutex_);

 private:
  struct Connection {
    int fd = -1;
    std::string input;          // received, not yet parsed
    std::string output;         // serialized, not yet written
    std::size_t output_offset = 0;
    bool in_flight = false;     // a request is with the worker pool
    bool want_read = true;      // EPOLLIN armed
    bool want_write = false;    // EPOLLOUT armed
    bool close_after_write = false;
    bool peer_closed = false;   // recv saw EOF
  };

  struct Task {
    std::uint64_t conn_id = 0;
    HttpRequest request;
    bool close_requested = false;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::string bytes;
    bool close_after_write = false;
  };

  void LoopThread();
  void WorkerThread();

  // All of the below run on the loop thread only.
  void AcceptReady();
  void PauseAccepting();
  void ResumeAccepting();
  void HandleConnectionEvent(std::uint64_t id, std::uint32_t events);
  void ReadReady(std::uint64_t id);
  /// Parses and dispatches the next request when none is in flight;
  /// queues a 400 and marks the connection for close on a parse error.
  void MaybeDispatch(std::uint64_t id);
  /// Writes as much pending output as the socket takes; closes the
  /// connection when done and it is marked close_after_write.
  void FlushOutput(std::uint64_t id);
  void UpdateInterest(std::uint64_t id);
  void CloseConnection(std::uint64_t id);
  void DrainCompletions();

  int listen_fd_;
  EventLoopOptions options_;
  Dispatch dispatch_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread loop_;
  std::vector<std::thread> workers_;

  // Loop-thread-only state (no guard needed; single writer/reader).
  std::unordered_map<std::uint64_t, Connection> connections_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listen socket, 1 = wake fd
  bool accept_paused_ = false;
  std::chrono::steady_clock::time_point accept_resume_at_{};

  util::Mutex task_mutex_{"serve.event_loop.tasks"};
  util::CondVar task_ready_;
  std::deque<Task> tasks_ PODIUM_GUARDED_BY(task_mutex_);

  util::Mutex completion_mutex_{"serve.event_loop.completions"};
  std::vector<Completion> completions_ PODIUM_GUARDED_BY(completion_mutex_);

  util::Mutex lifecycle_mutex_{"serve.event_loop.lifecycle"};
  bool stopped_ PODIUM_GUARDED_BY(lifecycle_mutex_) = false;
};

}  // namespace podium::serve

#endif  // PODIUM_SERVE_EVENT_LOOP_H_
