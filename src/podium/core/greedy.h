#ifndef PODIUM_CORE_GREEDY_H_
#define PODIUM_CORE_GREEDY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "podium/core/selection.h"

namespace podium {

/// Implementation strategy for the argmax step of Algorithm 1.
enum class GreedyMode {
  /// Linear scan over the candidate pool each round — the paper's
  /// formulation, O(B · |𝒰|) scan cost on top of the update cost.
  kPlainScan,
  /// Max-heap with lazy re-insertion of stale entries. Marginal gains are
  /// maintained exactly by the coverage updates, so popped entries whose
  /// cached key is outdated are re-pushed with the current value; by
  /// submodularity gains only decrease, keeping the heap admissible.
  kLazyHeap,
};

struct GreedyOptions {
  GreedyMode mode = GreedyMode::kPlainScan;

  /// Candidate pool restriction (the refined user set 𝒰' of Def. 6.3).
  /// Empty means the full population.
  std::vector<UserId> candidate_pool;

  /// Group tiers for the customized score of Prop. 6.5: tier 0 gains
  /// dominate tier 1 gains lexicographically, and groups with tier >= 2
  /// are ignored ("do not diversify"). Empty means all groups in tier 0
  /// (the BASE-DIVERSITY problem). One entry per group when non-empty.
  std::vector<std::uint8_t> group_tiers;

  /// Optional deterministic tie-break permutation: ties in marginal gain
  /// are broken by preferring the user appearing earlier here. Empty means
  /// ties break by ascending user id. (The paper breaks ties arbitrarily;
  /// the prototype randomizes — pass a shuffled permutation to emulate, or
  /// set random_tie_seed below to have the selector shuffle for you.)
  std::vector<UserId> tie_break_order;

  /// When set (and tie_break_order is empty), ties break by a random
  /// permutation derived from this seed — the prototype's randomized
  /// tie-breaking (Section 10).
  std::optional<std::uint64_t> random_tie_seed;

  /// Multiplicative noise on group weights, the randomization extension
  /// the paper proposes in its future work (Section 10): each group's
  /// weight is scaled by a factor uniform in [1 - w, 1 + w] drawn from
  /// `weight_noise_seed`. 0 disables. Different seeds yield different
  /// near-optimal subsets, letting a client resample panels. Supported for
  /// Iden/LBS weights (EBS ranks are ordinal, noise does not apply).
  double weight_noise = 0.0;
  std::uint64_t weight_noise_seed = 0;
};

/// Greedy User Selection (Algorithm 1) with the paper's data structures:
/// bidirectional user↔group links, maintained marginal contributions, and
/// link retirement when a group's remaining coverage hits zero. Guarantees
/// a (1 - 1/e)-approximation of BASE-DIVERSITY (Prop. 4.4) — and of
/// CUSTOM-DIVERSITY when tiers/pool are supplied (Prop. 6.5).
///
/// EBS weights are handled exactly via lexicographic comparison of
/// marginal rank-sets rather than floating-point exponentials; EBS is
/// currently supported only for the base problem (no tiers).
class GreedySelector : public Selector {
 public:
  explicit GreedySelector(GreedyOptions options = {})
      : options_(std::move(options)) {}

  std::string Name() const override { return "Podium"; }

  [[nodiscard]] Result<Selection> Select(const DiversificationInstance& instance,
                           std::size_t budget) const override;

 private:
  GreedyOptions options_;
};

}  // namespace podium

#endif  // PODIUM_CORE_GREEDY_H_
