#ifndef PODIUM_CORE_KERNELS_H_
#define PODIUM_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace podium::kernels {

/// The two inner loops of Algorithm 1's hot path — retirement counting
/// over a group's member span and tier-aware marginal-gain accumulation
/// over a user's group span — as explicit kernels with a branchless
/// scalar variant and an AVX2 variant, selected once per process by
/// runtime CPU dispatch.
///
/// ## Byte-identity contract (DESIGN.md §12)
///
/// Selections must stay byte-identical across variants, so every kernel
/// is either integer-only (CountAlive, the count in RetireSpan) or
/// floating-point with provably order-independent arithmetic:
///
///  * RetireSpan subtracts `weight * flag` element-wise at distinct
///    addresses — no reassociation exists, and `x - 0.0 == x` bitwise for
///    the non-negative gains the greedy maintains. It runs the branchless
///    scalar loop on every variant: the update stores element-wise
///    regardless (AVX2 has no scatter), and a flag gather per 8 lanes
///    measures ~2x slower than 8 pipelined byte loads once the stores are
///    paid either way.
///  * AccumulateTieredGains reassociates its sum ONLY when the caller
///    passes `allow_reassociation` — which the greedy derives from the
///    weights being integral doubles with a total below 2^52 (Iden and
///    LBS always are; weight-noise runs are not). Integer-valued double
///    sums below 2^53 are exact in any association order.
///
/// ## Overread contract
///
/// The AVX2 flag gathers load 4 bytes per lane from `flags + id`, so a
/// flags buffer must keep 3 readable bytes past its highest addressable
/// index. util::Arena guarantees this for every span it hands out
/// (kGuardBytes); plain vectors passed to these kernels must be padded by
/// the caller (see kFlagPadding).
inline constexpr std::size_t kFlagPadding = 3;

enum class Variant : std::uint8_t {
  kScalar,
  kAvx2,
};

std::string_view VariantName(Variant variant);

/// The variant the dispatcher would use right now: a ForceVariant()
/// override if one is set, else PODIUM_FORCE_SCALAR=1 in the environment
/// (read once), else AVX2 when the CPU supports it, else scalar.
Variant ActiveVariant();

/// True when this build/CPU can execute the AVX2 variants at all.
bool Avx2Available();

/// Test hook: pins the dispatched variant (nullopt restores automatic
/// detection). Forcing kAvx2 on a CPU without AVX2 is ignored. Not
/// thread-safe against in-flight kernels; call between selections, as the
/// differential sweep does.
void ForceVariant(std::optional<Variant> variant);

/// Retirement counting: the number of ids whose byte flag is set, i.e.
/// the still-alive members of a group span. flags needs kFlagPadding
/// readable bytes past the largest id.
std::size_t CountAlive(std::span<const std::uint32_t> ids,
                       const std::uint8_t* flags);

/// Link retirement: for every id, `gains[id] -= weight * flags[id]`
/// (a no-op for dead members, bit-identical to skipping them). Returns
/// the number of alive ids — the retired-link count the telemetry
/// reports. Branchless scalar under every variant (see the byte-identity
/// contract above for why SIMD loses here). flags needs kFlagPadding
/// readable bytes past the largest id.
std::uint32_t RetireSpan(std::span<const std::uint32_t> ids,
                         const std::uint8_t* flags, double* gains,
                         double weight);

/// Tier-aware marginal-gain accumulation (Line 2 of Algorithm 1): sums
/// `tier0_weights[id]` into *gain0 and `tier1_weights[id]` into *gain1
/// over the id span. The caller pre-splits weights by tier (ignored tiers
/// get 0.0 in both arrays, which adds exactly nothing). Passing
/// tier1_weights == nullptr skips the second accumulation entirely (base
/// instances have no tier-1 groups). With allow_reassociation false the
/// sum runs strictly in span order on every variant.
void AccumulateTieredGains(std::span<const std::uint32_t> ids,
                           const double* tier0_weights,
                           const double* tier1_weights,
                           bool allow_reassociation, double* gain0,
                           double* gain1);

/// Software prefetch over [address, address + bytes), one request per
/// cache line, capped so a pathological span cannot flood the load
/// queue. Used on the heap-pop candidate's adjacency spans before the
/// retirement walk reads them.
inline void PrefetchRange(const void* address, std::size_t bytes) {
#if defined(__GNUC__) || defined(__clang__)
  constexpr std::size_t kLine = 64;
  constexpr std::size_t kMaxLines = 16;
  const char* p = static_cast<const char*>(address);
  const std::size_t lines = (bytes + kLine - 1) / kLine;
  for (std::size_t i = 0; i < lines && i < kMaxLines; ++i) {
    __builtin_prefetch(p + i * kLine, /*rw=*/0, /*locality=*/3);
  }
#else
  (void)address;
  (void)bytes;
#endif
}

}  // namespace podium::kernels

#endif  // PODIUM_CORE_KERNELS_H_
