#ifndef PODIUM_CORE_SCORE_H_
#define PODIUM_CORE_SCORE_H_

#include <span>
#include <vector>

#include "podium/core/instance.h"

namespace podium {

/// score_𝒢(U) = Σ_G wei(G) · min(|U ∩ G|, cov(G))   (Def. 3.3),
/// under the instance's scalar weights. `subset` may be in any order and
/// must not contain duplicates. Linear in Σ_{u∈subset} |groups_of(u)|.
double TotalScore(const DiversificationInstance& instance,
                  std::span<const UserId> subset);

/// As TotalScore, but restricted to the groups listed in `groups_subset`
/// (used by the customized score and the feedback-coverage metric).
/// `group_mask` must have one entry per group of the instance.
double RestrictedScore(const DiversificationInstance& instance,
                       std::span<const UserId> subset,
                       const std::vector<bool>& group_mask);

/// Number of groups with at least min(cov(G), 1) representative in
/// `subset` — i.e. covered groups under Single semantics.
std::size_t CoveredGroupCount(const DiversificationInstance& instance,
                              std::span<const UserId> subset);

/// |U ∩ G| for every group G (the "actual" side of subset-group
/// explanations, Def. 5.1).
std::vector<std::uint32_t> MembersSelectedPerGroup(
    const DiversificationInstance& instance, std::span<const UserId> subset);

}  // namespace podium

#endif  // PODIUM_CORE_SCORE_H_
