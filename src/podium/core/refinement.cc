#include "podium/core/refinement.h"

#include <algorithm>

#include "podium/core/score.h"
#include "podium/util/string_util.h"

namespace podium {

std::string_view RefinementKindName(RefinementKind kind) {
  switch (kind) {
    case RefinementKind::kPrioritize:
      return "prioritize";
    case RefinementKind::kIgnore:
      return "ignore";
    case RefinementKind::kExclude:
      return "exclude";
  }
  return "unknown";
}

std::vector<RefinementSuggestion> SuggestRefinements(
    const DiversificationInstance& instance, const Selection& selection,
    const RefinementOptions& options) {
  const GroupIndex& groups = instance.groups();
  const std::size_t population = instance.repository().user_count();
  const std::size_t selected = selection.users.size();
  if (population == 0 || selected == 0) return {};

  const std::vector<std::uint32_t> actual =
      MembersSelectedPerGroup(instance, selection.users);
  // Weight scale for normalizing priority strengths.
  double max_weight = 0.0;
  for (GroupId g = 0; g < groups.group_count(); ++g) {
    max_weight = std::max(max_weight, instance.weight(g));
  }
  if (max_weight <= 0.0) max_weight = 1.0;

  std::vector<RefinementSuggestion> suggestions;
  for (GroupId g = 0; g < groups.group_count(); ++g) {
    const double population_share =
        static_cast<double>(groups.group_size(g)) /
        static_cast<double>(population);
    const double selection_share =
        static_cast<double>(actual[g]) / static_cast<double>(selected);

    if (population_share >= options.universal_fraction) {
      // Near-universal: candidates for "do not diversify on this".
      suggestions.push_back(RefinementSuggestion{
          RefinementKind::kIgnore, g, groups.label(g),
          util::StringPrintf(
              "holds for %.0f%% of the population; covering it constrains "
              "nothing and its weight crowds out rarer groups",
              100.0 * population_share),
          population_share});
      continue;
    }
    if (actual[g] < std::min<std::uint32_t>(
                        instance.coverage(g),
                        static_cast<std::uint32_t>(groups.group_size(g)))) {
      // Uncovered (or under-covered): prioritize, weighted by importance.
      suggestions.push_back(RefinementSuggestion{
          RefinementKind::kPrioritize, g, groups.label(g),
          util::StringPrintf(
              "covered by %u of the required %u representatives despite "
              "weight %s",
              actual[g], instance.coverage(g),
              util::FormatDouble(instance.weight(g)).c_str()),
          instance.weight(g) / max_weight});
      continue;
    }
    if (population_share > 0.0 &&
        selection_share >=
            options.over_representation_factor * population_share &&
        actual[g] >= 2) {
      suggestions.push_back(RefinementSuggestion{
          RefinementKind::kExclude, g, groups.label(g),
          util::StringPrintf(
              "%.0f%% of the selection but only %.0f%% of the population",
              100.0 * selection_share, 100.0 * population_share),
          selection_share / population_share /
              options.over_representation_factor});
    }
  }

  std::stable_sort(suggestions.begin(), suggestions.end(),
                   [](const RefinementSuggestion& a,
                      const RefinementSuggestion& b) {
                     return a.strength > b.strength;
                   });
  if (suggestions.size() > options.max_suggestions) {
    suggestions.resize(options.max_suggestions);
  }
  return suggestions;
}

void ApplySuggestions(const std::vector<RefinementSuggestion>& suggestions,
                      CustomizationFeedback& feedback) {
  for (const RefinementSuggestion& suggestion : suggestions) {
    switch (suggestion.kind) {
      case RefinementKind::kPrioritize:
        feedback.priority.push_back(suggestion.group);
        break;
      case RefinementKind::kExclude:
        feedback.must_not.push_back(suggestion.group);
        break;
      case RefinementKind::kIgnore:
        if (!feedback.standard_is_rest) {
          // Removing from an explicit standard set expresses "do not
          // diversify"; with standard_is_rest the group stays implicit.
          auto& standard = feedback.standard;
          standard.erase(
              std::remove(standard.begin(), standard.end(),
                          suggestion.group),
              standard.end());
        }
        break;
    }
  }
}

}  // namespace podium
