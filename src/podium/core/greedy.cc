#include "podium/core/greedy.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <queue>
#include <utility>

#include "podium/core/score.h"
#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/telemetry/trace.h"
#include "podium/util/rng.h"
#include "podium/util/thread_pool.h"

namespace podium {

namespace {

/// Buffers per-round trace events and data-structure counters for one
/// Select() run, flushing to the global sinks once at the end — the hot
/// loop touches only locals, so the enabled-mode overhead is a handful of
/// integer increments per round.
struct GreedyRunStats {
  bool enabled = false;
  std::vector<telemetry::GreedyRoundEvent> events;
  std::uint64_t heap_pops = 0;
  std::uint64_t stale_reinserts = 0;
  std::uint64_t retired_links = 0;
  std::uint64_t retired_groups = 0;

  explicit GreedyRunStats(std::size_t budget)
      : enabled(telemetry::Enabled()) {
    if (enabled) events.reserve(budget);
  }

  void Flush() {
    if (!enabled) return;
    const std::uint32_t run = telemetry::GreedyTrace::NextRunId();
    for (telemetry::GreedyRoundEvent& event : events) event.run = run;
    telemetry::GreedyTrace::Record(events);
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.counter("greedy.runs").Add();
    registry.counter("greedy.rounds").Add(events.size());
    registry.counter("greedy.heap_pops").Add(heap_pops);
    registry.counter("greedy.stale_reinserts").Add(stale_reinserts);
    registry.counter("greedy.retired_links").Add(retired_links);
    registry.counter("greedy.retired_groups").Add(retired_groups);
  }
};

/// Tier count used by the scalar path: tier 0 ("priority coverage") and
/// tier 1 ("standard coverage"). Base instances use tier 0 only.
constexpr int kTiers = 2;
constexpr std::uint8_t kIgnoredTier = 2;

using GainPair = std::array<double, kTiers>;

bool GainLess(const GainPair& a, const GainPair& b) {
  if (a[0] != b[0]) return a[0] < b[0];
  return a[1] < b[1];
}

/// Grain for loops chunked over the candidate pool during initialization.
constexpr std::size_t kPoolGrain = 512;

// group_dead / in_pool are byte vectors, not vector<bool>: the retirement
// inner loop tests in_pool[member] once per link, and the bit-packed
// specialization's mask-and-shift reads cost more than the byte load
// (and cannot be written from concurrent chunks without racing on the
// shared byte).
struct ScalarState {
  std::vector<GainPair> marginal;          // per user
  std::vector<std::uint32_t> remaining;    // per group: cov(G) minus selected
  std::vector<std::uint8_t> group_dead;    // remaining hit zero
  std::vector<std::uint8_t> in_pool;       // per user
};

Selection RunScalarGreedy(const DiversificationInstance& instance,
                          std::size_t budget,
                          const std::vector<UserId>& pool,
                          const std::vector<std::uint8_t>& tiers,
                          const std::vector<std::uint32_t>& tie_rank,
                          const std::vector<double>& weights,
                          GreedyMode mode) {
  const GroupIndex& groups = instance.groups();
  const std::size_t num_users = instance.repository().user_count();

  // Phase accounting: "greedy.init" covers the marginal-gain/heap setup,
  // "greedy.rounds" the selection loop, "greedy.score" the final scoring.
  std::optional<telemetry::PhaseSpan> phase;
  phase.emplace("greedy.init");
  ScalarState state;
  state.marginal.assign(num_users, GainPair{0.0, 0.0});
  state.remaining = instance.coverage();
  state.group_dead.assign(groups.group_count(), 0);
  state.in_pool.assign(num_users, 0);
  for (UserId u : pool) state.in_pool[u] = 1;

  // Line 2 of Algorithm 1: marg_{u,∅} = Σ_{G ∋ u} wei(G). Pool users are
  // distinct (Select() dedupes), so chunks write disjoint marginal slots.
  util::ParallelFor(
      "greedy.init_gains", pool.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          const UserId u = pool[i];
          for (GroupId g : groups.groups_of(u)) {
            const std::uint8_t tier = tiers[g];
            if (tier >= kIgnoredTier) continue;
            state.marginal[u][tier] += weights[g];
          }
        }
      },
      kPoolGrain);

  // Prefer larger gains; among equal gains, smaller tie rank.
  auto better = [&](UserId a, UserId b) {
    if (state.marginal[a] != state.marginal[b]) {
      return GainLess(state.marginal[b], state.marginal[a]);
    }
    return tie_rank[a] < tie_rank[b];
  };

  // Lazy heap entries carry the gain they were pushed with; stale entries
  // are re-pushed on pop. Valid because gains only decrease (submodularity).
  struct HeapEntry {
    GainPair gain;
    std::uint32_t tie;
    UserId user;
    bool operator<(const HeapEntry& other) const {  // max-heap
      if (gain != other.gain) return GainLess(gain, other.gain);
      return tie > other.tie;
    }
  };
  // The initial heap is built from a pre-sized entry vector and heapified
  // in one O(n) pass instead of n pushes; pop order is unchanged because
  // (gain, tie_rank) is a strict total order over distinct pool users.
  std::priority_queue<HeapEntry> heap;
  if (mode == GreedyMode::kLazyHeap) {
    std::vector<HeapEntry> entries(pool.size());
    util::ParallelFor(
        "greedy.init_heap", pool.size(),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t i = begin; i < end; ++i) {
            const UserId u = pool[i];
            entries[i] = HeapEntry{state.marginal[u], tie_rank[u], u};
          }
        },
        kPoolGrain);
    heap = std::priority_queue<HeapEntry>(std::less<HeapEntry>(),
                                          std::move(entries));
  }

  phase.emplace("greedy.rounds");
  GreedyRunStats stats(budget);
  Selection selection;
  std::size_t pool_left = pool.size();
  for (std::size_t round = 0; round < budget && pool_left > 0; ++round) {
    // Line 5: maxUser = argmax marg.
    UserId chosen = kInvalidUser;
    std::uint32_t round_pops = 0;
    std::uint32_t round_stale = 0;
    if (mode == GreedyMode::kPlainScan) {
      for (UserId u : pool) {
        if (!state.in_pool[u]) continue;
        if (chosen == kInvalidUser || better(u, chosen)) chosen = u;
      }
    } else {
      while (!heap.empty()) {
        HeapEntry top = heap.top();
        heap.pop();
        ++round_pops;
        if (!state.in_pool[top.user]) continue;
        if (top.gain != state.marginal[top.user]) {
          top.gain = state.marginal[top.user];
          heap.push(top);
          ++round_stale;
          continue;
        }
        chosen = top.user;
        break;
      }
      if (chosen == kInvalidUser) break;  // heap exhausted
    }

    // Lines 6-10: move the user, decrement coverage, retire dead groups
    // and charge their weight back from other members' marginal gains.
    const GainPair chosen_gain = state.marginal[chosen];
    selection.users.push_back(chosen);
    state.in_pool[chosen] = 0;
    --pool_left;
    std::uint32_t round_retired_links = 0;
    std::uint32_t round_retired_groups = 0;
    for (GroupId g : groups.groups_of(chosen)) {
      const std::uint8_t tier = tiers[g];
      if (tier >= kIgnoredTier || state.group_dead[g]) continue;
      if (--state.remaining[g] > 0) continue;
      state.group_dead[g] = 1;
      ++round_retired_groups;
      const double weight = weights[g];
      for (UserId member : groups.members(g)) {
        if (state.in_pool[member]) {
          state.marginal[member][tier] -= weight;
          ++round_retired_links;
        }
      }
    }
    if (stats.enabled) {
      telemetry::GreedyRoundEvent event;
      event.round = static_cast<std::uint32_t>(round);
      event.user = chosen;
      event.gain = chosen_gain[0];
      event.gain_secondary = chosen_gain[1];
      event.heap_pops = round_pops;
      event.stale_reinserts = round_stale;
      event.retired_links = round_retired_links;
      event.retired_groups = round_retired_groups;
      stats.events.push_back(event);
      stats.heap_pops += round_pops;
      stats.stale_reinserts += round_stale;
      stats.retired_links += round_retired_links;
      stats.retired_groups += round_retired_groups;
    }
  }
  stats.Flush();
  phase.emplace("greedy.score");
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

/// EBS gains: the set of ord-ranks of alive groups containing the user,
/// kept sorted descending. Because ord is a permutation and the base B+1
/// is >= 2, numeric comparison of Σ (B+1)^rank coincides with
/// lexicographic comparison of the descending rank sequences (with the
/// longer sequence winning on a tied prefix).
struct EbsGain {
  std::vector<std::uint32_t> ranks;  // descending

  void Remove(std::uint32_t rank) {
    auto it = std::lower_bound(ranks.begin(), ranks.end(), rank,
                               std::greater<std::uint32_t>());
    if (it != ranks.end() && *it == rank) ranks.erase(it);
  }
};

bool EbsBetter(const EbsGain& a, const EbsGain& b) {
  const std::size_t common = std::min(a.ranks.size(), b.ranks.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a.ranks[i] != b.ranks[i]) return a.ranks[i] > b.ranks[i];
  }
  return a.ranks.size() > b.ranks.size();
}

Selection RunEbsGreedy(const DiversificationInstance& instance,
                       std::size_t budget, const std::vector<UserId>& pool,
                       const std::vector<std::uint32_t>& tie_rank) {
  const GroupIndex& groups = instance.groups();
  const std::size_t num_users = instance.repository().user_count();

  std::optional<telemetry::PhaseSpan> phase;
  phase.emplace("greedy.init");
  std::vector<EbsGain> gains(num_users);
  std::vector<std::uint32_t> remaining = instance.coverage();
  std::vector<std::uint8_t> group_dead(groups.group_count(), 0);
  std::vector<std::uint8_t> in_pool(num_users, 0);
  for (UserId u : pool) in_pool[u] = 1;
  // Pool users are distinct (Select() dedupes), so chunks build disjoint
  // rank sets.
  util::ParallelFor(
      "greedy.init_gains", pool.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          const UserId u = pool[i];
          auto& ranks = gains[u].ranks;
          for (GroupId g : groups.groups_of(u)) {
            ranks.push_back(instance.weights().rank(g));
          }
          std::sort(ranks.begin(), ranks.end(), std::greater<std::uint32_t>());
        }
      },
      kPoolGrain);

  phase.emplace("greedy.rounds");
  GreedyRunStats stats(budget);
  Selection selection;
  std::size_t pool_left = pool.size();
  for (std::size_t round = 0; round < budget && pool_left > 0; ++round) {
    UserId chosen = kInvalidUser;
    for (UserId u : pool) {
      if (!in_pool[u]) continue;
      if (chosen == kInvalidUser || EbsBetter(gains[u], gains[chosen]) ||
          (!EbsBetter(gains[chosen], gains[u]) &&
           tie_rank[u] < tie_rank[chosen])) {
        chosen = u;
      }
    }
    // EBS gains are rank sets, not scalars; the traced gain is the number
    // of alive groups the chosen user still covers.
    const auto chosen_gain = static_cast<double>(gains[chosen].ranks.size());
    selection.users.push_back(chosen);
    in_pool[chosen] = 0;
    --pool_left;
    std::uint32_t round_retired_links = 0;
    std::uint32_t round_retired_groups = 0;
    for (GroupId g : groups.groups_of(chosen)) {
      if (group_dead[g]) continue;
      if (--remaining[g] > 0) continue;
      group_dead[g] = 1;
      ++round_retired_groups;
      const std::uint32_t rank = instance.weights().rank(g);
      for (UserId member : groups.members(g)) {
        if (in_pool[member]) {
          gains[member].Remove(rank);
          ++round_retired_links;
        }
      }
    }
    if (stats.enabled) {
      telemetry::GreedyRoundEvent event;
      event.round = static_cast<std::uint32_t>(round);
      event.user = chosen;
      event.gain = chosen_gain;
      event.retired_links = round_retired_links;
      event.retired_groups = round_retired_groups;
      stats.events.push_back(event);
      stats.retired_links += round_retired_links;
      stats.retired_groups += round_retired_groups;
    }
  }
  stats.Flush();
  phase.emplace("greedy.score");
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

}  // namespace

Result<Selection> GreedySelector::Select(
    const DiversificationInstance& instance, std::size_t budget) const {
  telemetry::PhaseSpan select_span("greedy.select");
  // "greedy.setup" covers everything before the algorithm proper: option
  // validation, candidate-pool materialization, tie-break ranks, weight
  // perturbation. Closed right before dispatching to the run loop so the
  // bench harness can separate setup from selection cost.
  std::optional<telemetry::PhaseSpan> setup_span;
  setup_span.emplace("greedy.setup");
  const std::size_t num_users = instance.repository().user_count();
  const std::size_t num_groups = instance.groups().group_count();
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  if (!options_.group_tiers.empty() &&
      options_.group_tiers.size() != num_groups) {
    return Status::InvalidArgument(
        "group_tiers must have one entry per group");
  }

  // Candidate pool: full population unless restricted (Def. 6.3's 𝒰').
  // Duplicate entries are dropped (first occurrence wins): a repeated user
  // would otherwise accumulate its Line-2 gain twice, and the parallel
  // init relies on pool users being distinct.
  std::vector<UserId> pool = options_.candidate_pool;
  if (pool.empty()) {
    pool.resize(num_users);
    for (UserId u = 0; u < num_users; ++u) pool[u] = u;
  } else {
    std::vector<std::uint8_t> seen(num_users, 0);
    std::size_t kept = 0;
    for (UserId u : pool) {
      if (u >= num_users) {
        return Status::OutOfRange("candidate pool user id out of range");
      }
      if (seen[u]) continue;
      seen[u] = 1;
      pool[kept++] = u;
    }
    pool.resize(kept);
  }

  // Tie-break ranks: position in tie_break_order, else a seeded random
  // permutation (the prototype's behaviour), else ascending id.
  std::vector<std::uint32_t> tie_rank(num_users);
  if (options_.tie_break_order.empty()) {
    for (UserId u = 0; u < num_users; ++u) tie_rank[u] = u;
    if (options_.random_tie_seed.has_value()) {
      util::Rng tie_rng(*options_.random_tie_seed);
      tie_rng.Shuffle(tie_rank);
    }
  } else {
    if (options_.tie_break_order.size() != num_users) {
      return Status::InvalidArgument(
          "tie_break_order must be a permutation of all users");
    }
    for (std::uint32_t pos = 0; pos < num_users; ++pos) {
      const UserId u = options_.tie_break_order[pos];
      if (u >= num_users) {
        return Status::OutOfRange("tie_break_order user id out of range");
      }
      tie_rank[u] = pos;
    }
  }

  if (instance.weight_kind() == WeightKind::kEbs) {
    if (!options_.group_tiers.empty()) {
      return Status::Unimplemented(
          "customized selection is not supported with EBS weights");
    }
    setup_span.reset();
    return RunEbsGreedy(instance, budget, pool, tie_rank);
  }

  std::vector<std::uint8_t> tiers = options_.group_tiers;
  if (tiers.empty()) tiers.assign(num_groups, 0);

  // Optional weight randomization (Section 10): perturb each group weight
  // multiplicatively; the reported selection score stays under the true
  // weights (TotalScore), only the greedy's preferences are perturbed.
  std::vector<double> weights(instance.weights().scalars());
  if (options_.weight_noise > 0.0) {
    if (options_.weight_noise >= 1.0) {
      return Status::InvalidArgument("weight_noise must be in [0, 1)");
    }
    util::Rng noise_rng(options_.weight_noise_seed);
    for (double& weight : weights) {
      weight *= 1.0 + options_.weight_noise * noise_rng.NextDouble(-1.0, 1.0);
    }
  }
  setup_span.reset();
  return RunScalarGreedy(instance, budget, pool, tiers, tie_rank, weights,
                         options_.mode);
}

}  // namespace podium
