#include "podium/core/greedy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <utility>

#include "podium/core/kernels.h"
#include "podium/core/score.h"
#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/telemetry/trace.h"
#include "podium/util/arena.h"
#include "podium/util/bitset.h"
#include "podium/util/rng.h"
#include "podium/util/thread_pool.h"

namespace podium {

namespace {

/// Buffers per-round trace events and data-structure counters for one
/// Select() run, flushing to the global sinks once at the end — the hot
/// loop touches only locals, so the enabled-mode overhead is a handful of
/// integer increments per round.
struct GreedyRunStats {
  bool enabled = false;
  std::vector<telemetry::GreedyRoundEvent> events;
  std::uint64_t heap_pops = 0;
  std::uint64_t stale_reinserts = 0;
  std::uint64_t retired_links = 0;
  std::uint64_t retired_groups = 0;

  explicit GreedyRunStats(std::size_t budget)
      : enabled(telemetry::Enabled()) {
    if (enabled) events.reserve(budget);
  }

  void Flush() {
    if (!enabled) return;
    const std::uint32_t run = telemetry::GreedyTrace::NextRunId();
    for (telemetry::GreedyRoundEvent& event : events) event.run = run;
    telemetry::GreedyTrace::Record(events);
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.counter("greedy.runs").Add();
    registry.counter("greedy.rounds").Add(events.size());
    registry.counter("greedy.heap_pops").Add(heap_pops);
    registry.counter("greedy.stale_reinserts").Add(stale_reinserts);
    registry.counter("greedy.retired_links").Add(retired_links);
    registry.counter("greedy.retired_groups").Add(retired_groups);
  }
};

/// Tier count used by the scalar path: tier 0 ("priority coverage") and
/// tier 1 ("standard coverage"). Base instances use tier 0 only.
constexpr std::uint8_t kIgnoredTier = 2;

/// Grain for loops chunked over the candidate pool during initialization.
constexpr std::size_t kPoolGrain = 512;

/// True when every weight is a non-negative integral double and the grand
/// total stays below 2^52: integer-valued double sums under 2^53 are exact
/// in every association order, so the SIMD accumulator's reassociated sum
/// is bit-identical to the scalar left fold. Iden (all 1.0) and LBS
/// (group sizes) always qualify; weight-noise runs never do.
bool ExactUnderReassociation(const std::vector<double>& weights) {
  constexpr double kLimit = 4503599627370496.0;  // 2^52
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || w != std::floor(w)) return false;
    total += w;
  }
  return total < kLimit;
}

// Per-run greedy state as structure-of-arrays in one 64-byte-aligned
// arena block: parallel gain arrays per tier (gain0/gain1 instead of a
// vector of per-user pairs), per-group remaining counts and dead flags,
// byte in-pool flags for the gather kernels, a word-walkable alive bitset
// for the argmax scan, and the weights pre-split by tier (w0/w1 carry
// 0.0 for groups of any other tier, which accumulates as an exact no-op).
// The arena's guard bytes license the AVX2 flag gathers past the last
// user id.
struct SoaState {
  util::Arena arena;
  std::span<double> gain0;                // per user, tier-0 marginal gain
  std::span<double> gain1;                // per user, tier-1 marginal gain
  std::span<std::uint32_t> remaining;     // per group: cov(G) minus selected
  std::span<std::uint8_t> group_dead;     // remaining hit zero
  std::span<std::uint8_t> in_pool;        // per user, byte flag for kernels
  util::FixedBitset alive;                // same set, word-walkable
  std::span<double> w0;                   // per group: weight if tier 0
  std::span<double> w1;                   // per group: weight if tier 1

  SoaState(std::size_t num_users, std::size_t num_groups)
      : arena(util::Arena::BytesFor<double>(num_users) * 2 +
              util::Arena::BytesFor<std::uint32_t>(num_groups) +
              util::Arena::BytesFor<std::uint8_t>(num_groups) +
              util::Arena::BytesFor<std::uint8_t>(num_users) +
              util::Arena::BytesFor<std::uint64_t>(
                  util::FixedBitset::WordsFor(num_users)) +
              util::Arena::BytesFor<double>(num_groups) * 2) {
    gain0 = arena.AllocateSpan<double>(num_users);
    gain1 = arena.AllocateSpan<double>(num_users);
    remaining = arena.AllocateSpan<std::uint32_t>(num_groups);
    group_dead = arena.AllocateSpan<std::uint8_t>(num_groups);
    in_pool = arena.AllocateSpan<std::uint8_t>(num_users);
    alive = util::FixedBitset(
        arena.AllocateSpan<std::uint64_t>(util::FixedBitset::WordsFor(num_users)),
        num_users);
    w0 = arena.AllocateSpan<double>(num_groups);
    w1 = arena.AllocateSpan<double>(num_groups);
  }
};

Selection RunScalarGreedy(const DiversificationInstance& instance,
                          std::size_t budget,
                          const std::vector<UserId>& pool,
                          const std::vector<std::uint8_t>& tiers,
                          const std::vector<std::uint32_t>& tie_rank,
                          const std::vector<double>& weights,
                          GreedyMode mode) {
  const GroupIndex& groups = instance.groups();
  const std::size_t num_users = instance.repository().user_count();
  const std::size_t num_groups = groups.group_count();

  // Phase accounting: "greedy.init" covers the marginal-gain/heap setup,
  // "greedy.rounds" the selection loop, "greedy.score" the final scoring.
  std::optional<telemetry::PhaseSpan> phase;
  phase.emplace("greedy.init");
  SoaState state(num_users, num_groups);
  std::copy(instance.coverage().begin(), instance.coverage().end(),
            state.remaining.begin());
  for (UserId u : pool) {
    state.in_pool[u] = 1;
    state.alive.Set(u);
  }
  bool has_tier1 = false;
  for (GroupId g = 0; g < num_groups; ++g) {
    const std::uint8_t tier = tiers[g];
    state.w0[g] = tier == 0 ? weights[g] : 0.0;
    state.w1[g] = tier == 1 ? weights[g] : 0.0;
    has_tier1 |= tier == 1;
  }
  const bool exact_reassoc = ExactUnderReassociation(weights);
  const double* w1_or_null = has_tier1 ? state.w1.data() : nullptr;

  // Line 2 of Algorithm 1: marg_{u,∅} = Σ_{G ∋ u} wei(G), accumulated per
  // tier by the kernel over the pre-split weight arrays (groups of other
  // tiers contribute an exact +0.0). Pool users are distinct (Select()
  // dedupes), so chunks write disjoint gain slots.
  util::ParallelFor(
      "greedy.init_gains", pool.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          const UserId u = pool[i];
          kernels::AccumulateTieredGains(groups.groups_of(u), state.w0.data(),
                                         w1_or_null, exact_reassoc,
                                         &state.gain0[u], &state.gain1[u]);
        }
      },
      kPoolGrain);

  // Prefer larger gains (tier 0, then tier 1); among equal gains, smaller
  // tie rank.
  auto better = [&](UserId a, UserId b) {
    if (state.gain0[a] != state.gain0[b]) return state.gain0[a] > state.gain0[b];
    if (state.gain1[a] != state.gain1[b]) return state.gain1[a] > state.gain1[b];
    return tie_rank[a] < tie_rank[b];
  };

  // Lazy heap entries carry the gain they were pushed with; stale entries
  // are re-pushed on pop. Valid because gains only decrease (submodularity).
  struct HeapEntry {
    double gain0;
    double gain1;
    std::uint32_t tie;
    UserId user;
    bool operator<(const HeapEntry& other) const {  // max-heap
      if (gain0 != other.gain0) return gain0 < other.gain0;
      if (gain1 != other.gain1) return gain1 < other.gain1;
      return tie > other.tie;
    }
  };
  // The initial heap is built from a pre-sized entry vector and heapified
  // in one O(n) pass instead of n pushes; pop order is unchanged because
  // (gain, tie_rank) is a strict total order over distinct pool users.
  std::priority_queue<HeapEntry> heap;
  if (mode == GreedyMode::kLazyHeap) {
    std::vector<HeapEntry> entries(pool.size());
    util::ParallelFor(
        "greedy.init_heap", pool.size(),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t i = begin; i < end; ++i) {
            const UserId u = pool[i];
            entries[i] =
                HeapEntry{state.gain0[u], state.gain1[u], tie_rank[u], u};
          }
        },
        kPoolGrain);
    heap = std::priority_queue<HeapEntry>(std::less<HeapEntry>(),
                                          std::move(entries));
  }

  phase.emplace("greedy.rounds");
  GreedyRunStats stats(budget);
  Selection selection;
  std::size_t pool_left = pool.size();
  for (std::size_t round = 0; round < budget && pool_left > 0; ++round) {
    // Line 5: maxUser = argmax marg. The bitset walk visits users in
    // ascending id order rather than pool order; the argmax is the same
    // because (gain0, gain1, tie_rank) is a strict total order over
    // distinct pool users — no two compare equal, so the winner does not
    // depend on iteration order.
    UserId chosen = kInvalidUser;
    std::uint32_t round_pops = 0;
    std::uint32_t round_stale = 0;
    if (mode == GreedyMode::kPlainScan) {
      state.alive.ForEachSet([&](std::size_t i) {
        const UserId u = static_cast<UserId>(i);
        if (chosen == kInvalidUser || better(u, chosen)) chosen = u;
      });
    } else {
      while (!heap.empty()) {
        HeapEntry top = heap.top();
        heap.pop();
        ++round_pops;
        if (!state.in_pool[top.user]) continue;
        // Start the candidate's adjacency span on its way to cache while
        // the staleness compare resolves.
        const auto adjacent = groups.groups_of(top.user);
        kernels::PrefetchRange(adjacent.data(),
                               adjacent.size() * sizeof(GroupId));
        if (top.gain0 != state.gain0[top.user] ||
            top.gain1 != state.gain1[top.user]) {
          top.gain0 = state.gain0[top.user];
          top.gain1 = state.gain1[top.user];
          heap.push(top);
          ++round_stale;
          continue;
        }
        chosen = top.user;
        break;
      }
      if (chosen == kInvalidUser) break;  // heap exhausted
    }

    // Lines 6-10: move the user, decrement coverage, retire dead groups
    // and charge their weight back from other members' marginal gains.
    const double chosen_gain0 = state.gain0[chosen];
    const double chosen_gain1 = state.gain1[chosen];
    selection.users.push_back(chosen);
    state.in_pool[chosen] = 0;
    state.alive.Clear(chosen);
    --pool_left;
    const auto adjacent = groups.groups_of(chosen);
    kernels::PrefetchRange(adjacent.data(), adjacent.size() * sizeof(GroupId));
    std::uint32_t round_retired_links = 0;
    std::uint32_t round_retired_groups = 0;
    for (GroupId g : adjacent) {
      const std::uint8_t tier = tiers[g];
      if (tier >= kIgnoredTier || state.group_dead[g]) continue;
      if (--state.remaining[g] > 0) continue;
      state.group_dead[g] = 1;
      ++round_retired_groups;
      double* gains = tier == 0 ? state.gain0.data() : state.gain1.data();
      round_retired_links += kernels::RetireSpan(
          groups.members(g), state.in_pool.data(), gains, weights[g]);
    }
    if (stats.enabled) {
      telemetry::GreedyRoundEvent event;
      event.round = static_cast<std::uint32_t>(round);
      event.user = chosen;
      event.gain = chosen_gain0;
      event.gain_secondary = chosen_gain1;
      event.heap_pops = round_pops;
      event.stale_reinserts = round_stale;
      event.retired_links = round_retired_links;
      event.retired_groups = round_retired_groups;
      stats.events.push_back(event);
      stats.heap_pops += round_pops;
      stats.stale_reinserts += round_stale;
      stats.retired_links += round_retired_links;
      stats.retired_groups += round_retired_groups;
    }
  }
  stats.Flush();
  phase.emplace("greedy.score");
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

/// EBS gains: the set of ord-ranks of alive groups containing the user,
/// kept sorted descending. Because ord is a permutation and the base B+1
/// is >= 2, numeric comparison of Σ (B+1)^rank coincides with
/// lexicographic comparison of the descending rank sequences (with the
/// longer sequence winning on a tied prefix).
struct EbsGain {
  std::vector<std::uint32_t> ranks;  // descending

  void Remove(std::uint32_t rank) {
    auto it = std::lower_bound(ranks.begin(), ranks.end(), rank,
                               std::greater<std::uint32_t>());
    if (it != ranks.end() && *it == rank) ranks.erase(it);
  }
};

bool EbsBetter(const EbsGain& a, const EbsGain& b) {
  const std::size_t common = std::min(a.ranks.size(), b.ranks.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a.ranks[i] != b.ranks[i]) return a.ranks[i] > b.ranks[i];
  }
  return a.ranks.size() > b.ranks.size();
}

Selection RunEbsGreedy(const DiversificationInstance& instance,
                       std::size_t budget, const std::vector<UserId>& pool,
                       const std::vector<std::uint32_t>& tie_rank) {
  const GroupIndex& groups = instance.groups();
  const std::size_t num_users = instance.repository().user_count();

  std::optional<telemetry::PhaseSpan> phase;
  phase.emplace("greedy.init");
  std::vector<EbsGain> gains(num_users);
  std::vector<std::uint32_t> remaining = instance.coverage();
  std::vector<std::uint8_t> group_dead(groups.group_count(), 0);
  std::vector<std::uint8_t> in_pool(num_users, 0);
  for (UserId u : pool) in_pool[u] = 1;
  // Pool users are distinct (Select() dedupes), so chunks build disjoint
  // rank sets.
  util::ParallelFor(
      "greedy.init_gains", pool.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          const UserId u = pool[i];
          auto& ranks = gains[u].ranks;
          for (GroupId g : groups.groups_of(u)) {
            ranks.push_back(instance.weights().rank(g));
          }
          std::sort(ranks.begin(), ranks.end(), std::greater<std::uint32_t>());
        }
      },
      kPoolGrain);

  phase.emplace("greedy.rounds");
  GreedyRunStats stats(budget);
  Selection selection;
  std::size_t pool_left = pool.size();
  for (std::size_t round = 0; round < budget && pool_left > 0; ++round) {
    UserId chosen = kInvalidUser;
    for (UserId u : pool) {
      if (!in_pool[u]) continue;
      if (chosen == kInvalidUser || EbsBetter(gains[u], gains[chosen]) ||
          (!EbsBetter(gains[chosen], gains[u]) &&
           tie_rank[u] < tie_rank[chosen])) {
        chosen = u;
      }
    }
    // EBS gains are rank sets, not scalars; the traced gain is the number
    // of alive groups the chosen user still covers.
    const auto chosen_gain = static_cast<double>(gains[chosen].ranks.size());
    selection.users.push_back(chosen);
    in_pool[chosen] = 0;
    --pool_left;
    std::uint32_t round_retired_links = 0;
    std::uint32_t round_retired_groups = 0;
    for (GroupId g : groups.groups_of(chosen)) {
      if (group_dead[g]) continue;
      if (--remaining[g] > 0) continue;
      group_dead[g] = 1;
      ++round_retired_groups;
      const std::uint32_t rank = instance.weights().rank(g);
      for (UserId member : groups.members(g)) {
        if (in_pool[member]) {
          gains[member].Remove(rank);
          ++round_retired_links;
        }
      }
    }
    if (stats.enabled) {
      telemetry::GreedyRoundEvent event;
      event.round = static_cast<std::uint32_t>(round);
      event.user = chosen;
      event.gain = chosen_gain;
      event.retired_links = round_retired_links;
      event.retired_groups = round_retired_groups;
      stats.events.push_back(event);
      stats.retired_links += round_retired_links;
      stats.retired_groups += round_retired_groups;
    }
  }
  stats.Flush();
  phase.emplace("greedy.score");
  selection.score = TotalScore(instance, selection.users);
  return selection;
}

}  // namespace

Result<Selection> GreedySelector::Select(
    const DiversificationInstance& instance, std::size_t budget) const {
  telemetry::PhaseSpan select_span("greedy.select");
  // "greedy.setup" covers everything before the algorithm proper: option
  // validation, candidate-pool materialization, tie-break ranks, weight
  // perturbation. Closed right before dispatching to the run loop so the
  // bench harness can separate setup from selection cost.
  std::optional<telemetry::PhaseSpan> setup_span;
  setup_span.emplace("greedy.setup");
  const std::size_t num_users = instance.repository().user_count();
  const std::size_t num_groups = instance.groups().group_count();
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  if (!options_.group_tiers.empty() &&
      options_.group_tiers.size() != num_groups) {
    return Status::InvalidArgument(
        "group_tiers must have one entry per group");
  }

  // Candidate pool: full population unless restricted (Def. 6.3's 𝒰').
  // Duplicate entries are dropped (first occurrence wins): a repeated user
  // would otherwise accumulate its Line-2 gain twice, and the parallel
  // init relies on pool users being distinct.
  std::vector<UserId> pool = options_.candidate_pool;
  if (pool.empty()) {
    pool.resize(num_users);
    for (UserId u = 0; u < num_users; ++u) pool[u] = u;
  } else {
    std::vector<std::uint8_t> seen(num_users, 0);
    std::size_t kept = 0;
    for (UserId u : pool) {
      if (u >= num_users) {
        return Status::OutOfRange("candidate pool user id out of range");
      }
      if (seen[u]) continue;
      seen[u] = 1;
      pool[kept++] = u;
    }
    pool.resize(kept);
  }

  // Tie-break ranks: position in tie_break_order, else a seeded random
  // permutation (the prototype's behaviour), else ascending id.
  std::vector<std::uint32_t> tie_rank(num_users);
  if (options_.tie_break_order.empty()) {
    for (UserId u = 0; u < num_users; ++u) tie_rank[u] = u;
    if (options_.random_tie_seed.has_value()) {
      util::Rng tie_rng(*options_.random_tie_seed);
      tie_rng.Shuffle(tie_rank);
    }
  } else {
    if (options_.tie_break_order.size() != num_users) {
      return Status::InvalidArgument(
          "tie_break_order must be a permutation of all users");
    }
    for (std::uint32_t pos = 0; pos < num_users; ++pos) {
      const UserId u = options_.tie_break_order[pos];
      if (u >= num_users) {
        return Status::OutOfRange("tie_break_order user id out of range");
      }
      tie_rank[u] = pos;
    }
  }

  if (instance.weight_kind() == WeightKind::kEbs) {
    if (!options_.group_tiers.empty()) {
      return Status::Unimplemented(
          "customized selection is not supported with EBS weights");
    }
    setup_span.reset();
    return RunEbsGreedy(instance, budget, pool, tie_rank);
  }

  std::vector<std::uint8_t> tiers = options_.group_tiers;
  if (tiers.empty()) tiers.assign(num_groups, 0);

  // Optional weight randomization (Section 10): perturb each group weight
  // multiplicatively; the reported selection score stays under the true
  // weights (TotalScore), only the greedy's preferences are perturbed.
  std::vector<double> weights(instance.weights().scalars());
  if (options_.weight_noise > 0.0) {
    if (options_.weight_noise >= 1.0) {
      return Status::InvalidArgument("weight_noise must be in [0, 1)");
    }
    util::Rng noise_rng(options_.weight_noise_seed);
    for (double& weight : weights) {
      weight *= 1.0 + options_.weight_noise * noise_rng.NextDouble(-1.0, 1.0);
    }
  }
  setup_span.reset();
  return RunScalarGreedy(instance, budget, pool, tiers, tie_rank, weights,
                         options_.mode);
}

}  // namespace podium
