#include "podium/core/html_report.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "podium/util/string_util.h"

namespace podium {

namespace {

void AppendEscaped(const std::string& text, std::string& out) {
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
}

const char kStyle[] = R"(
  body { font-family: sans-serif; margin: 1.5em; color: #222; }
  h1 { font-size: 1.3em; }
  .panes { display: flex; gap: 2em; align-items: flex-start;
           flex-wrap: wrap; }
  .pane { flex: 1 1 20em; min-width: 18em; }
  .pane h2 { font-size: 1.05em; border-bottom: 1px solid #ccc;
             padding-bottom: 0.3em; }
  .user { margin-bottom: 0.8em; }
  .user .name { font-weight: bold; }
  .user ul { margin: 0.2em 0 0 1.2em; padding: 0; font-size: 0.9em; }
  .summary { font-size: 1.6em; margin: 0.4em 0; }
  .group { font-size: 0.9em; padding: 0.1em 0.3em; }
  .covered { color: #1a7f37; }
  .uncovered { color: #c0392b; }
  .dist { margin-bottom: 1em; }
  .dist .prop { font-weight: bold; font-size: 0.95em; }
  .bar-row { display: flex; align-items: center; gap: 0.5em;
             font-size: 0.8em; margin: 1px 0; }
  .bar-row .label { width: 6em; text-align: right; color: #555; }
  .bar { height: 0.8em; border-radius: 2px; }
  .bar.pop { background: #7f9dc4; }
  .bar.sel { background: #e0a14c; }
  .legend { font-size: 0.8em; color: #555; margin-bottom: 0.6em; }
  .swatch { display: inline-block; width: 0.8em; height: 0.8em;
            border-radius: 2px; vertical-align: middle; }
)";

void AppendBarRow(const std::string& label, double fraction,
                  const char* kind, std::string& out) {
  out += "<div class=\"bar-row\"><span class=\"label\">";
  AppendEscaped(label, out);
  out += util::StringPrintf(
      "</span><div class=\"bar %s\" style=\"width:%.1f%%\"></div>"
      "<span>%.0f%%</span></div>\n",
      kind, 60.0 * fraction, 100.0 * fraction);
}

}  // namespace

std::string RenderHtmlReport(const DiversificationInstance& instance,
                             const Selection& selection,
                             const HtmlReportOptions& options) {
  ReportOptions report_options;
  report_options.top_group_count = options.top_group_count;
  report_options.max_groups_per_user = options.max_groups_per_user;
  const SelectionReport report =
      BuildSelectionReport(instance, selection, report_options);

  std::string out;
  out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>";
  AppendEscaped(options.title, out);
  out += "</title>\n<style>";
  out += kStyle;
  out += "</style></head>\n<body>\n<h1>";
  AppendEscaped(options.title, out);
  out += util::StringPrintf(
      "</h1>\n<p>%zu users selected &middot; total score %s</p>\n"
      "<div class=\"panes\">\n",
      report.users.size(), util::FormatDouble(report.total_score).c_str());

  // Left pane: selected users and their top-weight groups.
  out += "<div class=\"pane\"><h2>Selected users</h2>\n";
  for (const UserExplanation& user : report.users) {
    out += "<div class=\"user\"><div class=\"name\">";
    AppendEscaped(user.name, out);
    out += "</div><ul>\n";
    for (const GroupExplanation& group : user.groups) {
      out += "<li>";
      AppendEscaped(group.label, out);
      out += util::StringPrintf(" <small>(wei %s, cov %u)</small></li>\n",
                                util::FormatDouble(group.weight).c_str(),
                                group.required_coverage);
    }
    out += "</ul></div>\n";
  }
  out += "</div>\n";

  // Middle pane: coverage summary + group list by weight.
  out += "<div class=\"pane\"><h2>Group coverage</h2>\n";
  out += util::StringPrintf(
      "<div class=\"summary\">%.0f%%</div>"
      "<p>of the top-%zu groups by weight are covered</p>\n",
      100.0 * report.top_coverage_fraction, report.top_groups.size());
  for (const SubsetGroupExplanation& group : report.top_groups) {
    out += util::StringPrintf("<div class=\"group %s\">%s ",
                              group.covered() ? "covered" : "uncovered",
                              group.covered() ? "&#10003;" : "&#10007;");
    AppendEscaped(group.label, out);
    out += util::StringPrintf(" <small>(%u of %u)</small></div>\n",
                              group.actual, group.required);
  }
  out += "</div>\n";

  // Right pane: distribution comparisons for the heaviest properties
  // that actually have buckets (instances built from explicit defs may
  // not carry buckets_per_property).
  out += "<div class=\"pane\"><h2>Score distributions</h2>\n";
  out +=
      "<div class=\"legend\"><span class=\"swatch bar pop\"></span> "
      "population &nbsp; <span class=\"swatch bar sel\"></span> "
      "selection</div>\n";
  std::set<PropertyId> shown;
  for (const SubsetGroupExplanation& group : report.top_groups) {
    if (shown.size() >= options.distribution_panes) break;
    const PropertyId property = instance.groups().def(group.group).property;
    if (!shown.insert(property).second) continue;
    const DistributionComparison comparison =
        CompareDistributions(instance, selection, property);
    if (comparison.bucket_labels.empty()) continue;
    out += "<div class=\"dist\"><div class=\"prop\">";
    AppendEscaped(instance.repository().properties().Label(property), out);
    out += "</div>\n";
    for (std::size_t b = 0; b < comparison.bucket_labels.size(); ++b) {
      AppendBarRow(comparison.bucket_labels[b],
                   comparison.population_fraction[b], "pop", out);
      AppendBarRow("selection", comparison.selection_fraction[b], "sel",
                   out);
    }
    out += "</div>\n";
  }
  out += "</div>\n</div>\n</body></html>\n";
  return out;
}

Status WriteHtmlReport(const DiversificationInstance& instance,
                       const Selection& selection, const std::string& path,
                       const HtmlReportOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out << RenderHtmlReport(instance, selection, options);
  out.flush();
  if (!out) return Status::IoError("error writing file: " + path);
  return Status::Ok();
}

}  // namespace podium
