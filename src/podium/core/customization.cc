#include "podium/core/customization.h"

#include <algorithm>
#include <map>

#include "podium/core/score.h"

namespace podium {

bool operator<(const DualScore& a, const DualScore& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  return a.standard < b.standard;
}

namespace {

Status ValidateGroups(const DiversificationInstance& instance,
                      const std::vector<GroupId>& groups) {
  for (GroupId g : groups) {
    if (g >= instance.groups().group_count()) {
      return Status::OutOfRange("feedback references unknown group id");
    }
  }
  return Status::Ok();
}

Status ValidateFeedback(const DiversificationInstance& instance,
                        const CustomizationFeedback& feedback) {
  PODIUM_RETURN_IF_ERROR(ValidateGroups(instance, feedback.must_have));
  PODIUM_RETURN_IF_ERROR(ValidateGroups(instance, feedback.must_not));
  PODIUM_RETURN_IF_ERROR(ValidateGroups(instance, feedback.priority));
  PODIUM_RETURN_IF_ERROR(ValidateGroups(instance, feedback.standard));
  return Status::Ok();
}

/// Tier per group under `feedback`: 0 = priority, 1 = standard,
/// kIgnored = excluded from coverage.
std::vector<std::uint8_t> ComputeTiers(const DiversificationInstance& instance,
                                       const CustomizationFeedback& feedback) {
  const std::size_t n = instance.groups().group_count();
  std::vector<std::uint8_t> tiers(n, feedback.standard_is_rest ? 1 : 2);
  if (!feedback.standard_is_rest) {
    for (GroupId g : feedback.standard) tiers[g] = 1;
  }
  for (GroupId g : feedback.priority) tiers[g] = 0;
  return tiers;
}

}  // namespace

Result<std::vector<UserId>> RefineUsers(
    const DiversificationInstance& instance,
    const CustomizationFeedback& feedback) {
  PODIUM_RETURN_IF_ERROR(ValidateFeedback(instance, feedback));
  const GroupIndex& groups = instance.groups();
  const std::size_t num_users = instance.repository().user_count();

  // 𝒢₊ grouped by property: within one property membership in any listed
  // bucket suffices; across properties all must be satisfied.
  std::map<PropertyId, std::vector<GroupId>> must_have_by_property;
  for (GroupId g : feedback.must_have) {
    must_have_by_property[groups.def(g).property].push_back(g);
  }

  std::vector<char> eligible(num_users, 1);
  for (const auto& [property, buckets] : must_have_by_property) {
    std::vector<char> satisfies(num_users, 0);
    for (GroupId g : buckets) {
      for (UserId u : groups.members(g)) satisfies[u] = 1;
    }
    for (UserId u = 0; u < num_users; ++u) {
      if (!satisfies[u]) eligible[u] = 0;
    }
  }
  for (GroupId g : feedback.must_not) {
    for (UserId u : groups.members(g)) eligible[u] = 0;
  }

  std::vector<UserId> refined;
  for (UserId u = 0; u < num_users; ++u) {
    if (eligible[u]) refined.push_back(u);
  }
  return refined;
}

Result<DualScore> CustomizedScore(const DiversificationInstance& instance,
                                  const CustomizationFeedback& feedback,
                                  std::span<const UserId> subset) {
  PODIUM_RETURN_IF_ERROR(ValidateFeedback(instance, feedback));
  const std::vector<std::uint8_t> tiers = ComputeTiers(instance, feedback);
  const std::size_t n = instance.groups().group_count();
  std::vector<bool> priority_mask(n, false);
  std::vector<bool> standard_mask(n, false);
  for (GroupId g = 0; g < n; ++g) {
    if (tiers[g] == 0) priority_mask[g] = true;
    if (tiers[g] == 1) standard_mask[g] = true;
  }
  return DualScore{RestrictedScore(instance, subset, priority_mask),
                   RestrictedScore(instance, subset, standard_mask)};
}

Result<CustomSelection> SelectCustomized(
    const DiversificationInstance& instance,
    const CustomizationFeedback& feedback, std::size_t budget,
    GreedyMode mode) {
  if (instance.weight_kind() == WeightKind::kEbs) {
    return Status::Unimplemented(
        "customized selection is not supported with EBS weights");
  }
  Result<std::vector<UserId>> refined = RefineUsers(instance, feedback);
  if (!refined.ok()) return refined.status();
  if (refined->empty()) {
    return Status::FailedPrecondition(
        "customization feedback filtered out every user");
  }

  GreedyOptions options;
  options.mode = mode;
  options.candidate_pool = refined.value();
  options.group_tiers = ComputeTiers(instance, feedback);
  GreedySelector selector(std::move(options));
  Result<Selection> selection = selector.Select(instance, budget);
  if (!selection.ok()) return selection.status();

  CustomSelection custom;
  custom.refined_pool_size = refined->size();
  Result<DualScore> score =
      CustomizedScore(instance, feedback, selection->users);
  if (!score.ok()) return score.status();
  custom.score = score.value();
  custom.selection = std::move(selection).value();
  return custom;
}

}  // namespace podium
