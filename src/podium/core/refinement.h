#ifndef PODIUM_CORE_REFINEMENT_H_
#define PODIUM_CORE_REFINEMENT_H_

#include <string>
#include <vector>

#include "podium/core/customization.h"
#include "podium/core/instance.h"
#include "podium/core/selection.h"

namespace podium {

/// Refinement suggestions — the usability enhancement the paper names as
/// future work in Section 10 ("proposing relevant refinements for the
/// user"). Given a selection, Podium proposes customization feedback the
/// client may want to apply next, each with a human-readable rationale.

enum class RefinementKind : std::uint8_t {
  /// Add the group to 𝒢_d: heavy group left uncovered by the selection.
  kPrioritize,
  /// Add the group to 𝒢_d? demotion candidates (drop from 𝒢_d? — "do not
  /// diversify"): the group is near-universal, so covering it constrains
  /// nothing and its weight drowns out rarer groups.
  kIgnore,
  /// Add the group to 𝒢₋: the selection over-represents it far beyond
  /// its population share.
  kExclude,
};

std::string_view RefinementKindName(RefinementKind kind);

struct RefinementSuggestion {
  RefinementKind kind = RefinementKind::kPrioritize;
  GroupId group = kInvalidGroup;
  std::string label;
  /// Why the suggestion was made, in client-readable terms.
  std::string rationale;
  /// Higher = stronger suggestion; suggestions are returned descending.
  double strength = 0.0;
};

struct RefinementOptions {
  std::size_t max_suggestions = 10;
  /// A group is "near-universal" (ignore candidate) when it holds for at
  /// least this fraction of the population.
  double universal_fraction = 0.9;
  /// Over-representation factor (selection share / population share)
  /// beyond which an exclude suggestion fires.
  double over_representation_factor = 3.0;
};

/// Analyzes `selection` against `instance` and proposes refinements,
/// strongest first. Suggestions are advisory: apply them by copying the
/// group ids into a CustomizationFeedback and re-selecting.
std::vector<RefinementSuggestion> SuggestRefinements(
    const DiversificationInstance& instance, const Selection& selection,
    const RefinementOptions& options = {});

/// Convenience: folds `suggestions` into `feedback` (kPrioritize ->
/// priority, kExclude -> must_not; kIgnore is folded only when feedback
/// uses an explicit standard set, i.e. standard_is_rest == false —
/// otherwise it is skipped, since "the rest" cannot express removal).
void ApplySuggestions(const std::vector<RefinementSuggestion>& suggestions,
                      CustomizationFeedback& feedback);

}  // namespace podium

#endif  // PODIUM_CORE_REFINEMENT_H_
