#ifndef PODIUM_CORE_SELECTION_H_
#define PODIUM_CORE_SELECTION_H_

#include <string>
#include <vector>

#include "podium/core/instance.h"
#include "podium/util/result.h"

namespace podium {

/// The output of a user-selection algorithm.
struct Selection {
  /// Selected users in selection order (for the greedy algorithms this is
  /// the order of marginal contribution).
  std::vector<UserId> users;

  /// score_𝒢(users) under the instance's scalar weights; +inf possible
  /// under EBS (see GroupWeighting).
  double score = 0.0;
};

/// Common interface of Podium's selector and the baselines, so that the
/// experiment harness can treat them uniformly. Selectors are stateless
/// across calls (any randomness is owned by the concrete class and
/// reseeded per construction).
class Selector {
 public:
  virtual ~Selector() = default;

  /// Short display name ("Podium", "Random", "Clustering", ...).
  virtual std::string Name() const = 0;

  /// Selects at most `budget` users from the instance's population.
  [[nodiscard]] virtual Result<Selection> Select(const DiversificationInstance& instance,
                                   std::size_t budget) const = 0;
};

}  // namespace podium

#endif  // PODIUM_CORE_SELECTION_H_
