#ifndef PODIUM_CORE_INSTANCE_H_
#define PODIUM_CORE_INSTANCE_H_

#include <cstdint>
#include <vector>

#include "podium/groups/coverage.h"
#include "podium/groups/group_index.h"
#include "podium/groups/weight.h"
#include "podium/profile/repository.h"
#include "podium/util/result.h"

namespace podium {

/// Options for building a DiversificationInstance from a repository.
struct InstanceOptions {
  GroupingOptions grouping;
  WeightKind weight_kind = WeightKind::kLbs;        // paper's default (§8.3)
  CoverageKind coverage_kind = CoverageKind::kSingle;
  /// The budget B; used by Prop coverage and EBS weights, and as the
  /// default budget for selectors.
  std::size_t budget = 8;
};

/// A diversification instance (𝒢, wei, cov) over a repository (Def. 3.3),
/// fully evaluated: groups materialized, weights and coverage sizes
/// computed. Immutable once built; selectors treat it as read-only input.
class DiversificationInstance {
 public:
  /// An empty instance (no repository); assign a Build()/FromGroups()
  /// result over it before use.
  DiversificationInstance() = default;

  /// Derives simple groups from `repository` and evaluates the weight and
  /// coverage functions. The repository must outlive the instance.
  [[nodiscard]] static Result<DiversificationInstance> Build(
      const ProfileRepository& repository, const InstanceOptions& options = {});

  /// Builds an instance over caller-provided groups (manually crafted 𝒢).
  [[nodiscard]] static Result<DiversificationInstance> FromGroups(
      const ProfileRepository& repository, GroupIndex groups,
      WeightKind weight_kind, CoverageKind coverage_kind, std::size_t budget);

  /// Builds an instance over caller-provided groups with EXPLICIT weights
  /// and coverage requirements instead of deriving them from the index.
  /// The sharded engine uses this to inject globally computed wei/cov into
  /// each shard-local instance, so every shard greedily optimizes the same
  /// global objective f (required for the two-round GreeDi bound and the
  /// K=1 byte-identity guarantee; see DESIGN.md §13).
  [[nodiscard]] static Result<DiversificationInstance> FromGroupsWithScoring(
      const ProfileRepository& repository, GroupIndex groups,
      GroupWeighting weights, CoverageKind coverage_kind,
      std::vector<std::uint32_t> coverage, std::size_t budget);

  const ProfileRepository& repository() const { return *repository_; }
  const GroupIndex& groups() const { return groups_; }
  const GroupWeighting& weights() const { return weights_; }
  WeightKind weight_kind() const { return weights_.kind(); }
  CoverageKind coverage_kind() const { return coverage_kind_; }
  std::size_t budget() const { return budget_; }

  /// cov(G) for every group.
  const std::vector<std::uint32_t>& coverage() const { return coverage_; }
  std::uint32_t coverage(GroupId g) const { return coverage_[g]; }

  /// wei(G) as a scalar (approximate for EBS; see GroupWeighting).
  double weight(GroupId g) const { return weights_.scalar(g); }

 private:

  const ProfileRepository* repository_ = nullptr;
  GroupIndex groups_;
  GroupWeighting weights_;
  CoverageKind coverage_kind_ = CoverageKind::kSingle;
  std::vector<std::uint32_t> coverage_;
  std::size_t budget_ = 0;
};

}  // namespace podium

#endif  // PODIUM_CORE_INSTANCE_H_
