#ifndef PODIUM_CORE_EXHAUSTIVE_H_
#define PODIUM_CORE_EXHAUSTIVE_H_

#include "podium/core/selection.h"

namespace podium {

/// The "Optimal Selection" baseline of Section 8.3: naïve iteration over
/// all user subsets of size B. Exponential; refuses instances whose
/// subset-enumeration count exceeds `max_subsets` so experiment sweeps
/// fail fast instead of hanging.
class ExhaustiveSelector : public Selector {
 public:
  explicit ExhaustiveSelector(std::uint64_t max_subsets = 200'000'000)
      : max_subsets_(max_subsets) {}

  std::string Name() const override { return "Optimal"; }

  [[nodiscard]] Result<Selection> Select(const DiversificationInstance& instance,
                           std::size_t budget) const override;

 private:
  std::uint64_t max_subsets_;
};

}  // namespace podium

#endif  // PODIUM_CORE_EXHAUSTIVE_H_
