#include "podium/core/instance.h"

namespace podium {

Result<DiversificationInstance> DiversificationInstance::Build(
    const ProfileRepository& repository, const InstanceOptions& options) {
  Result<GroupIndex> groups = GroupIndex::Build(repository, options.grouping);
  if (!groups.ok()) return groups.status();
  return FromGroups(repository, std::move(groups).value(),
                    options.weight_kind, options.coverage_kind,
                    options.budget);
}

Result<DiversificationInstance> DiversificationInstance::FromGroups(
    const ProfileRepository& repository, GroupIndex groups,
    WeightKind weight_kind, CoverageKind coverage_kind, std::size_t budget) {
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  if (groups.user_count() != repository.user_count()) {
    return Status::InvalidArgument(
        "group index was built over a different population");
  }
  DiversificationInstance instance;
  instance.repository_ = &repository;
  instance.weights_ = GroupWeighting::Compute(groups, weight_kind, budget);
  instance.coverage_kind_ = coverage_kind;
  instance.coverage_ =
      ComputeCoverage(groups, coverage_kind, budget, repository.user_count());
  instance.groups_ = std::move(groups);
  instance.budget_ = budget;
  return instance;
}

Result<DiversificationInstance> DiversificationInstance::FromGroupsWithScoring(
    const ProfileRepository& repository, GroupIndex groups,
    GroupWeighting weights, CoverageKind coverage_kind,
    std::vector<std::uint32_t> coverage, std::size_t budget) {
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  if (groups.user_count() != repository.user_count()) {
    return Status::InvalidArgument(
        "group index was built over a different population");
  }
  if (weights.group_count() != groups.group_count() ||
      coverage.size() != groups.group_count()) {
    return Status::InvalidArgument(
        "injected weights/coverage disagree with the group count");
  }
  DiversificationInstance instance;
  instance.repository_ = &repository;
  instance.weights_ = std::move(weights);
  instance.coverage_kind_ = coverage_kind;
  instance.coverage_ = std::move(coverage);
  instance.groups_ = std::move(groups);
  instance.budget_ = budget;
  return instance;
}

}  // namespace podium
