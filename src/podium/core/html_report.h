#ifndef PODIUM_CORE_HTML_REPORT_H_
#define PODIUM_CORE_HTML_REPORT_H_

#include <string>

#include "podium/core/explanation.h"
#include "podium/util/status.h"

namespace podium {

struct HtmlReportOptions {
  /// Page title (the prototype shows the configuration name, e.g.
  /// "Summer Pavilion").
  std::string title = "Podium selection";

  /// How many top-weight groups to list and how many properties get a
  /// distribution pane.
  std::size_t top_group_count = 30;
  std::size_t distribution_panes = 6;
  std::size_t max_groups_per_user = 6;
};

/// Renders the explanation page of the prototype's UI (Figure 2) as a
/// single self-contained HTML document:
///   - left pane: the selected users with their top-weight covered groups
///     (user explanations, Def. 5.1);
///   - middle pane: the percentage of top-weight groups covered and the
///     group list ordered by decreasing weight, covered groups in green
///     and uncovered in red (subset-group explanations);
///   - right pane: per-property score distributions, population versus
///     selection, as horizontal bars.
/// No external assets; inline CSS only.
std::string RenderHtmlReport(const DiversificationInstance& instance,
                             const Selection& selection,
                             const HtmlReportOptions& options = {});

/// Writes the report to `path`.
[[nodiscard]] Status WriteHtmlReport(const DiversificationInstance& instance,
                       const Selection& selection, const std::string& path,
                       const HtmlReportOptions& options = {});

}  // namespace podium

#endif  // PODIUM_CORE_HTML_REPORT_H_
