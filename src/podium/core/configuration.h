#ifndef PODIUM_CORE_CONFIGURATION_H_
#define PODIUM_CORE_CONFIGURATION_H_

#include <optional>
#include <string>
#include <vector>

#include "podium/core/customization.h"
#include "podium/core/instance.h"
#include "podium/core/selection.h"
#include "podium/json/value.h"

namespace podium {

/// A named diversification configuration with a textual description — the
/// "initial set of diversification configurations" an administrator feeds
/// into the prototype (Section 7; the screenshot's "Summer Pavilion"
/// config scopes diversification to one restaurant's properties).
struct DiversificationConfig {
  std::string name;
  std::string description;

  /// Instance construction: grouping (including property_filters, the
  /// scoping mechanism), weight/coverage kinds and budget.
  InstanceOptions instance;

  /// Customization feedback by group label, resolved against the built
  /// instance at selection time (group ids are instance-specific).
  std::vector<std::string> must_have_labels;
  std::vector<std::string> must_not_labels;
  std::vector<std::string> priority_labels;
};

/// Parses configurations from a JSON document of the form
///
///   {"configurations": [
///      {"name": "Summer Pavilion",
///       "description": "Scope to the Summer Pavilion restaurant",
///       "property_filters": ["Summer Pavilion"],
///       "weights": "LBS", "coverage": "Single",
///       "bucket_method": "quantile", "max_buckets": 3, "budget": 8,
///       "must_have": [], "must_not": [], "priority": []}]}
///
/// All fields except "name" are optional and default as in
/// InstanceOptions.
[[nodiscard]] Result<std::vector<DiversificationConfig>> ConfigurationsFromJson(
    const json::Value& document);
[[nodiscard]] Result<std::vector<DiversificationConfig>> LoadConfigurationsFile(
    const std::string& path);

/// A configuration applied to a repository: the built instance plus the
/// selection (customized if the config carries feedback).
struct ConfiguredSelection {
  DiversificationInstance instance;
  Selection selection;
  /// Engaged when the configuration used customization feedback.
  std::optional<DualScore> custom_score;
};

/// Builds the instance per `config` and selects. Label-based feedback is
/// resolved against the built instance; unknown labels fail with
/// NotFound.
[[nodiscard]] Result<ConfiguredSelection> RunConfiguration(
    const ProfileRepository& repository, const DiversificationConfig& config);

}  // namespace podium

#endif  // PODIUM_CORE_CONFIGURATION_H_
