#include "podium/core/threshold.h"

#include <algorithm>

#include "podium/core/score.h"
#include "podium/util/string_util.h"

namespace podium {

double MaxAchievableScore(const DiversificationInstance& instance) {
  double total = 0.0;
  for (GroupId g = 0; g < instance.groups().group_count(); ++g) {
    const auto cap = std::min<std::size_t>(instance.coverage(g),
                                           instance.groups().group_size(g));
    total += instance.weight(g) * static_cast<double>(cap);
  }
  return total;
}

Result<Selection> SelectToThreshold(const DiversificationInstance& instance,
                                    double threshold,
                                    std::size_t max_budget,
                                    const GreedyOptions& options) {
  if (instance.weight_kind() == WeightKind::kEbs) {
    return Status::Unimplemented(
        "threshold selection is not supported with EBS weights");
  }
  if (max_budget == 0) {
    return Status::InvalidArgument("max_budget must be positive");
  }

  // The greedy's selection order is prefix-stable: the best subset of
  // size k under Algorithm 1 is the first k picks of the size-max_budget
  // run. Run once at the full budget, then keep the shortest prefix whose
  // score reaches the threshold.
  GreedySelector selector(options);
  Result<Selection> full = selector.Select(instance, max_budget);
  if (!full.ok()) return full.status();

  Selection prefix;
  for (UserId u : full->users) {
    prefix.users.push_back(u);
    prefix.score = TotalScore(instance, prefix.users);
    if (prefix.score >= threshold) return prefix;
  }
  return Status::FailedPrecondition(util::StringPrintf(
      "threshold %.6g unreachable with %zu users (achieved %.6g; the "
      "instance maximum is %.6g)",
      threshold, max_budget, full->score, MaxAchievableScore(instance)));
}

}  // namespace podium
