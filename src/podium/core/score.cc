#include "podium/core/score.h"

#include <algorithm>
#include <vector>

#include "podium/util/thread_pool.h"

namespace podium {

namespace {

/// Grain for the group-sum loop: below this many groups the plan is a
/// single chunk and the loop is the plain serial accumulation, so small
/// instances keep bit-identical arithmetic with zero dispatch cost.
constexpr std::size_t kGroupGrain = 4096;

}  // namespace

std::vector<std::uint32_t> MembersSelectedPerGroup(
    const DiversificationInstance& instance, std::span<const UserId> subset) {
  std::vector<std::uint32_t> selected(instance.groups().group_count(), 0);
  for (UserId u : subset) {
    for (GroupId g : instance.groups().groups_of(u)) ++selected[g];
  }
  return selected;
}

double TotalScore(const DiversificationInstance& instance,
                  std::span<const UserId> subset) {
  const std::vector<std::uint32_t> selected =
      MembersSelectedPerGroup(instance, subset);
  // Per-chunk partial sums combined in chunk order: the chunk plan depends
  // only on the group count, so the floating-point result is identical at
  // any thread count.
  const util::ChunkPlan plan =
      util::PlanChunks(selected.size(), kGroupGrain);
  std::vector<double> partial(plan.num_chunks, 0.0);
  util::ParallelFor(
      "score.total", selected.size(),
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        double sum = 0.0;
        for (GroupId g = begin; g < end; ++g) {
          if (selected[g] == 0) continue;
          sum += instance.weight(g) *
                 static_cast<double>(
                     std::min(selected[g], instance.coverage(g)));
        }
        partial[chunk] = sum;
      },
      kGroupGrain);
  double score = 0.0;
  for (double sum : partial) score += sum;
  return score;
}

double RestrictedScore(const DiversificationInstance& instance,
                       std::span<const UserId> subset,
                       const std::vector<bool>& group_mask) {
  const std::vector<std::uint32_t> selected =
      MembersSelectedPerGroup(instance, subset);
  double score = 0.0;
  for (GroupId g = 0; g < selected.size(); ++g) {
    if (selected[g] == 0 || !group_mask[g]) continue;
    score += instance.weight(g) *
             static_cast<double>(std::min(selected[g], instance.coverage(g)));
  }
  return score;
}

std::size_t CoveredGroupCount(const DiversificationInstance& instance,
                              std::span<const UserId> subset) {
  const std::vector<std::uint32_t> selected =
      MembersSelectedPerGroup(instance, subset);
  return static_cast<std::size_t>(
      std::count_if(selected.begin(), selected.end(),
                    [](std::uint32_t c) { return c > 0; }));
}

}  // namespace podium
