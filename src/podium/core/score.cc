#include "podium/core/score.h"

#include <algorithm>

namespace podium {

std::vector<std::uint32_t> MembersSelectedPerGroup(
    const DiversificationInstance& instance, std::span<const UserId> subset) {
  std::vector<std::uint32_t> selected(instance.groups().group_count(), 0);
  for (UserId u : subset) {
    for (GroupId g : instance.groups().groups_of(u)) ++selected[g];
  }
  return selected;
}

double TotalScore(const DiversificationInstance& instance,
                  std::span<const UserId> subset) {
  const std::vector<std::uint32_t> selected =
      MembersSelectedPerGroup(instance, subset);
  double score = 0.0;
  for (GroupId g = 0; g < selected.size(); ++g) {
    if (selected[g] == 0) continue;
    score += instance.weight(g) *
             static_cast<double>(std::min(selected[g], instance.coverage(g)));
  }
  return score;
}

double RestrictedScore(const DiversificationInstance& instance,
                       std::span<const UserId> subset,
                       const std::vector<bool>& group_mask) {
  const std::vector<std::uint32_t> selected =
      MembersSelectedPerGroup(instance, subset);
  double score = 0.0;
  for (GroupId g = 0; g < selected.size(); ++g) {
    if (selected[g] == 0 || !group_mask[g]) continue;
    score += instance.weight(g) *
             static_cast<double>(std::min(selected[g], instance.coverage(g)));
  }
  return score;
}

std::size_t CoveredGroupCount(const DiversificationInstance& instance,
                              std::span<const UserId> subset) {
  const std::vector<std::uint32_t> selected =
      MembersSelectedPerGroup(instance, subset);
  return static_cast<std::size_t>(
      std::count_if(selected.begin(), selected.end(),
                    [](std::uint32_t c) { return c > 0; }));
}

}  // namespace podium
