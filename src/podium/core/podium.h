#ifndef PODIUM_CORE_PODIUM_H_
#define PODIUM_CORE_PODIUM_H_

/// Umbrella header: the public API of the Podium diverse-user-selection
/// library. Typical usage:
///
///   #include "podium/core/podium.h"
///
///   podium::ProfileRepository repo = ...;           // or LoadRepositoryJson
///   podium::InstanceOptions options;
///   options.weight_kind = podium::WeightKind::kLbs;
///   auto instance = podium::DiversificationInstance::Build(repo, options);
///   podium::GreedySelector selector;
///   auto selection = selector.Select(*instance, /*budget=*/8);
///   auto report = podium::BuildSelectionReport(*instance, *selection);
///   std::cout << podium::RenderReport(report);

#include "podium/bucketing/bucketizer.h"    // IWYU pragma: export
#include "podium/core/configuration.h"      // IWYU pragma: export
#include "podium/core/customization.h"      // IWYU pragma: export
#include "podium/core/exhaustive.h"         // IWYU pragma: export
#include "podium/core/explanation.h"        // IWYU pragma: export
#include "podium/core/greedy.h"             // IWYU pragma: export
#include "podium/core/html_report.h"        // IWYU pragma: export
#include "podium/core/instance.h"           // IWYU pragma: export
#include "podium/core/refinement.h"         // IWYU pragma: export
#include "podium/core/score.h"              // IWYU pragma: export
#include "podium/core/selection.h"          // IWYU pragma: export
#include "podium/core/threshold.h"          // IWYU pragma: export
#include "podium/groups/complex_group.h"    // IWYU pragma: export
#include "podium/groups/coverage.h"         // IWYU pragma: export
#include "podium/groups/group_index.h"      // IWYU pragma: export
#include "podium/groups/weight.h"           // IWYU pragma: export
#include "podium/profile/repository.h"      // IWYU pragma: export
#include "podium/profile/repository_io.h"   // IWYU pragma: export
#include "podium/taxonomy/inference.h"      // IWYU pragma: export
#include "podium/taxonomy/taxonomy.h"       // IWYU pragma: export

#endif  // PODIUM_CORE_PODIUM_H_
