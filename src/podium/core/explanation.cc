#include "podium/core/explanation.h"

#include <algorithm>

#include "podium/core/score.h"
#include "podium/util/string_util.h"

namespace podium {

GroupExplanation ExplainGroup(const DiversificationInstance& instance,
                              GroupId group) {
  return GroupExplanation{group, instance.groups().label(group),
                          instance.weight(group), instance.coverage(group)};
}

UserExplanation ExplainUser(const DiversificationInstance& instance,
                            UserId user) {
  UserExplanation explanation;
  explanation.user = user;
  explanation.name = instance.repository().user(user).name();
  for (GroupId g : instance.groups().groups_of(user)) {
    explanation.groups.push_back(ExplainGroup(instance, g));
  }
  std::stable_sort(explanation.groups.begin(), explanation.groups.end(),
                   [](const GroupExplanation& a, const GroupExplanation& b) {
                     return a.weight > b.weight;
                   });
  return explanation;
}

SubsetGroupExplanation ExplainSubsetGroup(
    const DiversificationInstance& instance, const Selection& selection,
    GroupId group) {
  std::uint32_t actual = 0;
  for (UserId u : selection.users) {
    if (instance.groups().Contains(group, u)) ++actual;
  }
  return SubsetGroupExplanation{group, instance.groups().label(group),
                                instance.coverage(group), actual};
}

SelectionReport BuildSelectionReport(const DiversificationInstance& instance,
                                     const Selection& selection,
                                     const ReportOptions& options) {
  SelectionReport report;
  report.total_score = TotalScore(instance, selection.users);

  // Group list ordered by decreasing weight (ties: larger first, then id).
  std::vector<GroupId> by_weight(instance.groups().group_count());
  for (GroupId g = 0; g < by_weight.size(); ++g) by_weight[g] = g;
  std::stable_sort(by_weight.begin(), by_weight.end(),
                   [&instance](GroupId a, GroupId b) {
                     if (instance.weight(a) != instance.weight(b)) {
                       return instance.weight(a) > instance.weight(b);
                     }
                     return instance.groups().group_size(a) >
                            instance.groups().group_size(b);
                   });
  const std::vector<std::uint32_t> actual =
      MembersSelectedPerGroup(instance, selection.users);

  const std::size_t top_count =
      std::min(options.top_group_count, by_weight.size());
  std::size_t covered = 0;
  for (std::size_t i = 0; i < top_count; ++i) {
    const GroupId g = by_weight[i];
    SubsetGroupExplanation entry{g, instance.groups().label(g),
                                 instance.coverage(g), actual[g]};
    if (entry.covered()) ++covered;
    report.top_groups.push_back(std::move(entry));
  }
  report.top_coverage_fraction =
      top_count == 0 ? 0.0
                     : static_cast<double>(covered) /
                           static_cast<double>(top_count);

  for (UserId u : selection.users) {
    UserExplanation explanation = ExplainUser(instance, u);
    if (explanation.groups.size() > options.max_groups_per_user) {
      explanation.groups.resize(options.max_groups_per_user);
    }
    report.users.push_back(std::move(explanation));
  }
  return report;
}

DistributionComparison CompareDistributions(
    const DiversificationInstance& instance, const Selection& selection,
    PropertyId property) {
  DistributionComparison comparison;
  comparison.property = property;
  const auto& buckets = instance.groups().buckets_per_property()[property];
  comparison.bucket_labels.reserve(buckets.size());
  comparison.population_fraction.assign(buckets.size(), 0.0);
  comparison.selection_fraction.assign(buckets.size(), 0.0);
  for (const auto& bucket : buckets) {
    comparison.bucket_labels.push_back(bucket.label);
  }
  if (buckets.empty()) return comparison;

  const ProfileRepository& repository = instance.repository();
  double population_total = 0.0;
  double selection_total = 0.0;
  std::vector<bool> selected(repository.user_count(), false);
  for (UserId u : selection.users) selected[u] = true;
  for (UserId u = 0; u < repository.user_count(); ++u) {
    const auto score = repository.user(u).Get(property);
    if (!score.has_value()) continue;
    const int b = bucketing::FindBucket(buckets, *score);
    if (b < 0) continue;
    comparison.population_fraction[static_cast<std::size_t>(b)] += 1.0;
    population_total += 1.0;
    if (selected[u]) {
      comparison.selection_fraction[static_cast<std::size_t>(b)] += 1.0;
      selection_total += 1.0;
    }
  }
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (population_total > 0.0) {
      comparison.population_fraction[b] /= population_total;
    }
    if (selection_total > 0.0) {
      comparison.selection_fraction[b] /= selection_total;
    }
  }
  return comparison;
}

std::string RenderReport(const SelectionReport& report) {
  std::string out;
  out += util::StringPrintf("Selected %zu users, total score %s\n",
                            report.users.size(),
                            util::FormatDouble(report.total_score).c_str());
  out += util::StringPrintf(
      "Top-%zu group coverage: %s%%\n\n", report.top_groups.size(),
      util::FormatDouble(100.0 * report.top_coverage_fraction, 1).c_str());

  out += "Selected users and their top-weight groups:\n";
  for (const UserExplanation& user : report.users) {
    out += "  " + user.name + "\n";
    for (const GroupExplanation& group : user.groups) {
      out += util::StringPrintf(
          "    - %s (weight %s, cov %u)\n", group.label.c_str(),
          util::FormatDouble(group.weight).c_str(), group.required_coverage);
    }
  }

  out += "\nGroups by weight (covered -> [x]):\n";
  for (const SubsetGroupExplanation& group : report.top_groups) {
    out += util::StringPrintf("  [%c] %s (required %u, actual %u)\n",
                              group.covered() ? 'x' : ' ',
                              group.label.c_str(), group.required,
                              group.actual);
  }
  return out;
}

}  // namespace podium
