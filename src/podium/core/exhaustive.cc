#include "podium/core/exhaustive.h"

#include <algorithm>
#include <limits>

#include "podium/core/score.h"
#include "podium/util/string_util.h"

namespace podium {

namespace {

/// C(n, k) saturating at uint64 max.
std::uint64_t BinomialSaturating(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t numerator = n - k + i;
    if (result > std::numeric_limits<std::uint64_t>::max() / numerator) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * numerator / i;
  }
  return result;
}

}  // namespace

Result<Selection> ExhaustiveSelector::Select(
    const DiversificationInstance& instance, std::size_t budget) const {
  const std::size_t n = instance.repository().user_count();
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  const std::size_t k = std::min(budget, n);
  if (k == 0) return Selection{};  // empty population
  const std::uint64_t subsets = BinomialSaturating(n, k);
  if (subsets > max_subsets_) {
    return Status::FailedPrecondition(util::StringPrintf(
        "exhaustive search over C(%zu, %zu) = %llu subsets exceeds the "
        "configured limit of %llu",
        n, k, static_cast<unsigned long long>(subsets),
        static_cast<unsigned long long>(max_subsets_)));
  }

  // Enumerate size-k combinations in lexicographic order. The score is
  // monotone, so subsets of exactly size k dominate smaller ones.
  std::vector<UserId> current(k);
  for (std::size_t i = 0; i < k; ++i) current[i] = static_cast<UserId>(i);

  Selection best;
  best.score = -1.0;
  for (;;) {
    const double score = TotalScore(instance, current);
    if (score > best.score) {
      best.score = score;
      best.users = current;
    }
    // Advance to the next combination.
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (current[pos] != static_cast<UserId>(n - k + pos)) break;
      if (pos == 0) return best;  // all combinations exhausted
    }
    ++current[pos];
    for (std::size_t i = pos + 1; i < k; ++i) current[i] = current[i - 1] + 1;
  }
}

}  // namespace podium
