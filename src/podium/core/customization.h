#ifndef PODIUM_CORE_CUSTOMIZATION_H_
#define PODIUM_CORE_CUSTOMIZATION_H_

#include <span>
#include <vector>

#include "podium/core/greedy.h"
#include "podium/core/instance.h"
#include "podium/core/selection.h"

namespace podium {

/// Customization feedback (Def. 6.1): four group subsets refining the
/// selection. Defaults are the paper's: empty 𝒢₊/𝒢₋/𝒢_d, and 𝒢_d? = 𝒢
/// (signalled here by standard_is_rest).
struct CustomizationFeedback {
  /// 𝒢₊ — "must have": each selected user must satisfy every property
  /// mentioned in 𝒢₊; when several buckets of one property are listed,
  /// membership in any one of them suffices (Def. 6.3).
  std::vector<GroupId> must_have;

  /// 𝒢₋ — "must not": each selected user must belong to none of these.
  std::vector<GroupId> must_not;

  /// 𝒢_d — "priority coverage": covered before anything else.
  std::vector<GroupId> priority;

  /// 𝒢_d? — "standard coverage". When standard_is_rest is true (default),
  /// 𝒢_d? = 𝒢 − 𝒢_d and `standard` is ignored. Groups in neither set are
  /// ignored for coverage ("do not diversify on this property").
  std::vector<GroupId> standard;
  bool standard_is_rest = true;
};

/// The refined user set 𝒰' of Def. 6.3: users passing the 𝒢₊ (per-property
/// disjunction, cross-property conjunction) and 𝒢₋ filters. Ascending ids.
[[nodiscard]] Result<std::vector<UserId>> RefineUsers(const DiversificationInstance& instance,
                                        const CustomizationFeedback& feedback);

/// The customized score s̃core(U) of Prop. 6.5, represented exactly as a
/// lexicographic (priority, standard) pair instead of the overflow-prone
/// score_𝒢d·MAX-SCORE + score_𝒢d? scalar.
struct DualScore {
  double priority = 0.0;
  double standard = 0.0;

  friend bool operator==(const DualScore&, const DualScore&) = default;
};
bool operator<(const DualScore& a, const DualScore& b);

/// Evaluates the customized score of `subset` under `feedback`.
[[nodiscard]] Result<DualScore> CustomizedScore(const DiversificationInstance& instance,
                                  const CustomizationFeedback& feedback,
                                  std::span<const UserId> subset);

/// Result of a customized selection.
struct CustomSelection {
  Selection selection;
  DualScore score;
  /// |𝒰'| — how many users survived the 𝒢₊/𝒢₋ filters.
  std::size_t refined_pool_size = 0;
};

/// Solves CUSTOM-DIVERSITY greedily (Prop. 6.5): filters the population to
/// 𝒰' and runs Algorithm 1 under the two-tier customized score. Supports
/// Iden and LBS weights (EBS + customization is not defined in the paper's
/// experiments and is unimplemented).
[[nodiscard]] Result<CustomSelection> SelectCustomized(
    const DiversificationInstance& instance,
    const CustomizationFeedback& feedback, std::size_t budget,
    GreedyMode mode = GreedyMode::kPlainScan);

}  // namespace podium

#endif  // PODIUM_CORE_CUSTOMIZATION_H_
