#ifndef PODIUM_CORE_THRESHOLD_H_
#define PODIUM_CORE_THRESHOLD_H_

#include "podium/core/greedy.h"
#include "podium/core/selection.h"

namespace podium {

/// Greedy solver for the threshold form of the problem behind
/// DEC-DIVERSITY (Prop. 4.1): find a small subset whose total score
/// reaches `threshold`. Finding a subset within a constant factor of the
/// minimal size is NP-hard (Prop. 4.2 inherits Set Cover's ln|𝒢|
/// inapproximability); the greedy achieves the classical logarithmic
/// factor.
///
/// Selects greedily (Algorithm 1's rule) until score_𝒢(U) >= threshold,
/// up to `max_budget` users. Fails with FailedPrecondition when even
/// `max_budget` users cannot reach the threshold (the achieved score is
/// reported in the message). EBS instances are unsupported (their scalar
/// scores overflow; thresholds are not meaningful there).
[[nodiscard]] Result<Selection> SelectToThreshold(const DiversificationInstance& instance,
                                    double threshold,
                                    std::size_t max_budget,
                                    const GreedyOptions& options = {});

/// The maximum achievable score: score_𝒢(𝒰) — every group capped at its
/// cov(G). Useful for choosing feasible thresholds.
double MaxAchievableScore(const DiversificationInstance& instance);

}  // namespace podium

#endif  // PODIUM_CORE_THRESHOLD_H_
