#ifndef PODIUM_CORE_EXPLANATION_H_
#define PODIUM_CORE_EXPLANATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "podium/core/instance.h"
#include "podium/core/selection.h"

namespace podium {

/// The three explanation kinds of Def. 5.1.

/// exp(G) = <label, wei(G), cov(G)> — what a group means and how important
/// it is.
struct GroupExplanation {
  GroupId group = kInvalidGroup;
  std::string label;
  double weight = 0.0;
  std::uint32_t required_coverage = 0;
};

/// exp(u) = { G : u ∈ G } — why a user was selected. Groups are ordered by
/// decreasing weight so the strongest reasons come first.
struct UserExplanation {
  UserId user = kInvalidUser;
  std::string name;
  std::vector<GroupExplanation> groups;
};

/// exp(U, G) = <cov(G), |U ∩ G|> — required versus actual coverage.
struct SubsetGroupExplanation {
  GroupId group = kInvalidGroup;
  std::string label;
  std::uint32_t required = 0;
  std::uint32_t actual = 0;

  bool covered() const { return actual >= required; }
};

GroupExplanation ExplainGroup(const DiversificationInstance& instance,
                              GroupId group);
UserExplanation ExplainUser(const DiversificationInstance& instance,
                            UserId user);
SubsetGroupExplanation ExplainSubsetGroup(
    const DiversificationInstance& instance, const Selection& selection,
    GroupId group);

/// A full selection report mirroring the prototype's explanation page
/// (Figure 2): per-user top-weight covered groups, the fraction of
/// top-weight groups covered, and the group list ordered by weight with
/// covered/uncovered status.
struct SelectionReport {
  /// One explanation per selected user, limited to `max_groups_per_user`
  /// top-weight groups.
  std::vector<UserExplanation> users;

  /// Coverage status of the `top_group_count` heaviest groups.
  std::vector<SubsetGroupExplanation> top_groups;

  /// Fraction of top_groups that are covered, in [0, 1].
  double top_coverage_fraction = 0.0;

  /// The base total score of the selection.
  double total_score = 0.0;
};

struct ReportOptions {
  std::size_t top_group_count = 20;
  std::size_t max_groups_per_user = 5;
};

SelectionReport BuildSelectionReport(const DiversificationInstance& instance,
                                     const Selection& selection,
                                     const ReportOptions& options = {});

/// Per-bucket score distribution of one property, population versus
/// selection (the right-hand pane of Figure 2). Fractions sum to 1 over
/// the property's buckets (all zero when no scores exist).
struct DistributionComparison {
  PropertyId property = kInvalidProperty;
  std::vector<std::string> bucket_labels;
  std::vector<double> population_fraction;
  std::vector<double> selection_fraction;
};

DistributionComparison CompareDistributions(
    const DiversificationInstance& instance, const Selection& selection,
    PropertyId property);

/// Renders a report as human-readable text (the CLI stand-in for the
/// prototype's visualization module).
std::string RenderReport(const SelectionReport& report);

}  // namespace podium

#endif  // PODIUM_CORE_EXPLANATION_H_
