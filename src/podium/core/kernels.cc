#include "podium/core/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PODIUM_KERNELS_X86 1
#else
#define PODIUM_KERNELS_X86 0
#endif

namespace podium::kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar variants. Branchless: the flag byte (0/1) multiplies into the
// arithmetic instead of guarding it, so the loop carries no
// data-dependent branch for the predictor to miss on half-retired spans.

std::size_t CountAliveScalar(const std::uint32_t* ids, std::size_t n,
                             const std::uint8_t* flags) {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < n; ++i) alive += flags[ids[i]];
  return alive;
}

std::uint32_t RetireSpanScalar(const std::uint32_t* ids, std::size_t n,
                               const std::uint8_t* flags, double* gains,
                               double weight) {
  std::uint32_t retired = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t id = ids[i];
    const std::uint8_t flag = flags[id];
    // flag == 0 subtracts 0.0: bit-identical to not touching the gain
    // (gains are finite and non-negative here).
    gains[id] -= weight * static_cast<double>(flag);
    retired += flag;
  }
  return retired;
}

void AccumulateScalar(const std::uint32_t* ids, std::size_t n,
                      const double* tier0_weights,
                      const double* tier1_weights, double* gain0,
                      double* gain1) {
  // Strict span-order left fold — the reference association every other
  // variant must reproduce exactly or prove order-independent.
  double sum0 = 0.0;
  double sum1 = 0.0;
  if (tier1_weights == nullptr) {
    for (std::size_t i = 0; i < n; ++i) sum0 += tier0_weights[ids[i]];
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t id = ids[i];
      sum0 += tier0_weights[id];
      sum1 += tier1_weights[id];
    }
    *gain1 += sum1;
  }
  *gain0 += sum0;
}

// ---------------------------------------------------------------------------
// AVX2 variants. Flag bytes are fetched 8 lanes at a time with a 4-byte
// gather masked down to the low byte — this is the overread the
// kFlagPadding contract exists for. Gain updates stay element-wise
// (AVX2 has no scatter), so their values match the scalar variant bit
// for bit; only the sums in AccumulateTieredGains reassociate, and the
// dispatcher only routes them here when the caller proved that exact.

#if PODIUM_KERNELS_X86

__attribute__((target("avx2"))) std::size_t CountAliveAvx2(
    const std::uint32_t* ids, std::size_t n, const std::uint8_t* flags) {
  const __m256i low_byte = _mm256_set1_epi32(0xFF);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m256i raw = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(flags), idx, 1);
    acc = _mm256_add_epi32(acc, _mm256_and_si256(raw, low_byte));
  }
  alignas(32) std::uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t alive = 0;
  for (std::uint32_t lane : lanes) alive += lane;
  for (; i < n; ++i) alive += flags[ids[i]];
  return alive;
}

__attribute__((target("avx2"))) double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

__attribute__((target("avx2"))) void AccumulateAvx2(
    const std::uint32_t* ids, std::size_t n, const double* tier0_weights,
    const double* tier1_weights, double* gain0, double* gain1) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    acc0 = _mm256_add_pd(acc0, _mm256_i32gather_pd(tier0_weights, idx, 8));
    if (tier1_weights != nullptr) {
      acc1 = _mm256_add_pd(acc1, _mm256_i32gather_pd(tier1_weights, idx, 8));
    }
  }
  double sum0 = HorizontalSum(acc0);
  double sum1 = HorizontalSum(acc1);
  for (; i < n; ++i) {
    sum0 += tier0_weights[ids[i]];
    if (tier1_weights != nullptr) sum1 += tier1_weights[ids[i]];
  }
  *gain0 += sum0;
  if (tier1_weights != nullptr) *gain1 += sum1;
}

#endif  // PODIUM_KERNELS_X86

// ---------------------------------------------------------------------------
// Dispatch. Detection runs once (CPU support + the PODIUM_FORCE_SCALAR
// escape hatch); tests pin a variant via ForceVariant.

bool DetectAvx2() {
#if PODIUM_KERNELS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Variant DetectedVariant() {
  static const Variant detected = [] {
    const char* force = std::getenv("PODIUM_FORCE_SCALAR");
    const bool force_scalar =
        force != nullptr && std::strcmp(force, "0") != 0 &&
        std::strcmp(force, "") != 0;
    if (force_scalar || !DetectAvx2()) return Variant::kScalar;
    return Variant::kAvx2;
  }();
  return detected;
}

// -1 = no override; otherwise the forced Variant value.
std::atomic<int> g_forced_variant{-1};

}  // namespace

std::string_view VariantName(Variant variant) {
  switch (variant) {
    case Variant::kScalar:
      return "scalar";
    case Variant::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2Available() { return DetectAvx2(); }

Variant ActiveVariant() {
  const int forced = g_forced_variant.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const Variant variant = static_cast<Variant>(forced);
    if (variant == Variant::kAvx2 && !DetectAvx2()) return Variant::kScalar;
    return variant;
  }
  return DetectedVariant();
}

void ForceVariant(std::optional<Variant> variant) {
  g_forced_variant.store(
      variant.has_value() ? static_cast<int>(*variant) : -1,
      std::memory_order_relaxed);
}

std::size_t CountAlive(std::span<const std::uint32_t> ids,
                       const std::uint8_t* flags) {
#if PODIUM_KERNELS_X86
  if (ActiveVariant() == Variant::kAvx2) {
    return CountAliveAvx2(ids.data(), ids.size(), flags);
  }
#endif
  return CountAliveScalar(ids.data(), ids.size(), flags);
}

std::uint32_t RetireSpan(std::span<const std::uint32_t> ids,
                         const std::uint8_t* flags, double* gains,
                         double weight) {
  // Branchless scalar on every variant, by measurement: the update must
  // store element-wise regardless (AVX2 has no scatter), and one
  // high-latency flag gather per 8 lanes costs about twice what 8
  // pipelined L1 byte loads do once the stores are paid either way
  // (BM_RetireKernel vs the greedy microbenchmarks). Variants therefore
  // agree bit-for-bit here by construction.
  return RetireSpanScalar(ids.data(), ids.size(), flags, gains, weight);
}

void AccumulateTieredGains(std::span<const std::uint32_t> ids,
                           const double* tier0_weights,
                           const double* tier1_weights,
                           bool allow_reassociation, double* gain0,
                           double* gain1) {
#if PODIUM_KERNELS_X86
  if (allow_reassociation && ActiveVariant() == Variant::kAvx2) {
    AccumulateAvx2(ids.data(), ids.size(), tier0_weights, tier1_weights,
                   gain0, gain1);
    return;
  }
#else
  (void)allow_reassociation;
#endif
  AccumulateScalar(ids.data(), ids.size(), tier0_weights, tier1_weights,
                   gain0, gain1);
}

}  // namespace podium::kernels
