#include "podium/core/configuration.h"

#include "podium/core/greedy.h"
#include "podium/json/parser.h"

namespace podium {

namespace {

Result<std::vector<std::string>> StringList(const json::Object& object,
                                            const char* key) {
  std::vector<std::string> out;
  const json::Value* value = object.Find(key);
  if (value == nullptr) return out;
  if (!value->is_array()) {
    return Status::ParseError(std::string("'") + key +
                              "' must be an array of strings");
  }
  for (const json::Value& entry : value->AsArray()) {
    Result<std::string> text = entry.GetString();
    if (!text.ok()) return text.status();
    out.push_back(std::move(text).value());
  }
  return out;
}

Result<DiversificationConfig> ConfigFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("each configuration must be a JSON object");
  }
  const json::Object& object = value.AsObject();
  DiversificationConfig config;

  const json::Value* name = object.Find("name");
  if (name == nullptr || !name->is_string()) {
    return Status::ParseError("configuration requires a string 'name'");
  }
  config.name = name->AsString();
  if (const json::Value* description = object.Find("description");
      description != nullptr && description->is_string()) {
    config.description = description->AsString();
  }

  if (const json::Value* weights = object.Find("weights");
      weights != nullptr) {
    Result<std::string> text = weights->GetString();
    if (!text.ok()) return text.status();
    Result<WeightKind> kind = ParseWeightKind(text.value());
    if (!kind.ok()) return kind.status();
    config.instance.weight_kind = kind.value();
  }
  if (const json::Value* coverage = object.Find("coverage");
      coverage != nullptr) {
    Result<std::string> text = coverage->GetString();
    if (!text.ok()) return text.status();
    Result<CoverageKind> kind = ParseCoverageKind(text.value());
    if (!kind.ok()) return kind.status();
    config.instance.coverage_kind = kind.value();
  }
  if (const json::Value* method = object.Find("bucket_method");
      method != nullptr) {
    Result<std::string> text = method->GetString();
    if (!text.ok()) return text.status();
    config.instance.grouping.bucket_method = std::move(text).value();
  }
  if (const json::Value* buckets = object.Find("max_buckets");
      buckets != nullptr) {
    Result<double> number = buckets->GetNumber();
    if (!number.ok()) return number.status();
    config.instance.grouping.max_buckets = static_cast<int>(number.value());
  }
  if (const json::Value* budget = object.Find("budget"); budget != nullptr) {
    Result<double> number = budget->GetNumber();
    if (!number.ok()) return number.status();
    if (number.value() < 1) {
      return Status::ParseError("'budget' must be >= 1");
    }
    config.instance.budget = static_cast<std::size_t>(number.value());
  }

  Result<std::vector<std::string>> filters =
      StringList(object, "property_filters");
  if (!filters.ok()) return filters.status();
  config.instance.grouping.property_filters = std::move(filters).value();

  Result<std::vector<std::string>> must_have = StringList(object, "must_have");
  if (!must_have.ok()) return must_have.status();
  config.must_have_labels = std::move(must_have).value();
  Result<std::vector<std::string>> must_not = StringList(object, "must_not");
  if (!must_not.ok()) return must_not.status();
  config.must_not_labels = std::move(must_not).value();
  Result<std::vector<std::string>> priority = StringList(object, "priority");
  if (!priority.ok()) return priority.status();
  config.priority_labels = std::move(priority).value();
  return config;
}

Result<std::vector<GroupId>> ResolveLabels(
    const DiversificationInstance& instance,
    const std::vector<std::string>& labels) {
  std::vector<GroupId> groups;
  for (const std::string& label : labels) {
    GroupId found = kInvalidGroup;
    for (GroupId g = 0; g < instance.groups().group_count(); ++g) {
      if (instance.groups().label(g) == label) {
        found = g;
        break;
      }
    }
    if (found == kInvalidGroup) {
      return Status::NotFound("no group labeled '" + label + "'");
    }
    groups.push_back(found);
  }
  return groups;
}

}  // namespace

Result<std::vector<DiversificationConfig>> ConfigurationsFromJson(
    const json::Value& document) {
  if (!document.is_object()) {
    return Status::ParseError("configuration document must be an object");
  }
  const json::Value* list = document.AsObject().Find("configurations");
  if (list == nullptr || !list->is_array()) {
    return Status::ParseError(
        "configuration document requires a 'configurations' array");
  }
  std::vector<DiversificationConfig> configs;
  for (const json::Value& entry : list->AsArray()) {
    Result<DiversificationConfig> config = ConfigFromJson(entry);
    if (!config.ok()) return config.status();
    configs.push_back(std::move(config).value());
  }
  return configs;
}

Result<std::vector<DiversificationConfig>> LoadConfigurationsFile(
    const std::string& path) {
  Result<json::Value> document = json::ParseFile(path);
  if (!document.ok()) return document.status();
  return ConfigurationsFromJson(document.value());
}

Result<ConfiguredSelection> RunConfiguration(
    const ProfileRepository& repository,
    const DiversificationConfig& config) {
  Result<DiversificationInstance> instance =
      DiversificationInstance::Build(repository, config.instance);
  if (!instance.ok()) return instance.status();

  const bool customized = !config.must_have_labels.empty() ||
                          !config.must_not_labels.empty() ||
                          !config.priority_labels.empty();
  ConfiguredSelection out{std::move(instance).value(), Selection{},
                          std::nullopt};
  if (!customized) {
    GreedySelector selector;
    Result<Selection> selection =
        selector.Select(out.instance, config.instance.budget);
    if (!selection.ok()) return selection.status();
    out.selection = std::move(selection).value();
    return out;
  }

  CustomizationFeedback feedback;
  PODIUM_ASSIGN_OR_RETURN(feedback.must_have,
                          ResolveLabels(out.instance,
                                        config.must_have_labels));
  PODIUM_ASSIGN_OR_RETURN(feedback.must_not,
                          ResolveLabels(out.instance,
                                        config.must_not_labels));
  PODIUM_ASSIGN_OR_RETURN(feedback.priority,
                          ResolveLabels(out.instance,
                                        config.priority_labels));
  Result<CustomSelection> custom =
      SelectCustomized(out.instance, feedback, config.instance.budget);
  if (!custom.ok()) return custom.status();
  out.selection = std::move(custom->selection);
  out.custom_score = custom->score;
  return out;
}

}  // namespace podium
