#ifndef PODIUM_METRICS_PROCUREMENT_EXPERIMENT_H_
#define PODIUM_METRICS_PROCUREMENT_EXPERIMENT_H_

#include <vector>

#include "podium/core/instance.h"
#include "podium/core/selection.h"
#include "podium/metrics/opinion_metrics.h"
#include "podium/opinion/opinion_store.h"

namespace podium::metrics {

/// The opinion-procurement experiment of Section 8.2/8.4: for each
/// hold-out destination, the candidate pool is the users who actually
/// reviewed it (so procurement returns one ground-truth opinion per
/// selected user); a selector picks `budget` of them based on profiles —
/// which exclude the destination's data — and the procured reviews are
/// scored with the opinion diversity metrics.

struct ProcurementOptions {
  /// Instance construction over each destination's reviewer
  /// sub-population (weights, coverage, grouping, budget).
  InstanceOptions instance;
  std::size_t budget = 8;
  OpinionMetricOptions metrics;
};

struct DestinationOutcome {
  opinion::DestinationId destination = opinion::kInvalidDestination;
  /// Selected users, as ids in the ORIGINAL repository.
  std::vector<UserId> selected;
  OpinionMetrics metrics;
};

struct ProcurementResult {
  std::vector<DestinationOutcome> per_destination;
  /// Metric means over all evaluated destinations.
  OpinionMetrics average;
};

/// Restricts `repository` to `users` (in the given order), preserving the
/// property table; `users` become ids 0..n-1 of the result.
ProfileRepository SubRepository(const ProfileRepository& repository,
                                const std::vector<UserId>& users);

/// Runs the experiment for one selector over all `destinations`.
/// Destinations with fewer than 2 reviewers are skipped.
Result<ProcurementResult> RunProcurementExperiment(
    const ProfileRepository& repository, const opinion::OpinionStore& store,
    const std::vector<opinion::DestinationId>& destinations,
    const Selector& selector, const ProcurementOptions& options);

}  // namespace podium::metrics

#endif  // PODIUM_METRICS_PROCUREMENT_EXPERIMENT_H_
