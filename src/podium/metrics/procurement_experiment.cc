#include "podium/metrics/procurement_experiment.h"

#include <algorithm>

namespace podium::metrics {

ProfileRepository SubRepository(const ProfileRepository& repository,
                                const std::vector<UserId>& users) {
  ProfileRepository sub;
  sub.properties() = repository.properties();
  for (UserId u : users) {
    const UserProfile& profile = repository.user(u);
    const UserId local = sub.AddUser(profile.name()).value();
    sub.mutable_user(local).ReplaceEntries(profile.entries());
  }
  return sub;
}

Result<ProcurementResult> RunProcurementExperiment(
    const ProfileRepository& repository, const opinion::OpinionStore& store,
    const std::vector<opinion::DestinationId>& destinations,
    const Selector& selector, const ProcurementOptions& options) {
  ProcurementResult result;
  OpinionMetrics total;
  std::size_t evaluated = 0;

  for (opinion::DestinationId destination : destinations) {
    // Reviewer pool (deduplicated; the generator emits at most one review
    // per user per destination, but data loaded from files may not).
    std::vector<UserId> reviewers;
    for (const opinion::Review& review : store.reviews_of(destination)) {
      reviewers.push_back(review.user);
    }
    std::sort(reviewers.begin(), reviewers.end());
    reviewers.erase(std::unique(reviewers.begin(), reviewers.end()),
                    reviewers.end());
    if (reviewers.size() < 2) continue;

    const ProfileRepository pool = SubRepository(repository, reviewers);
    Result<DiversificationInstance> instance =
        DiversificationInstance::Build(pool, options.instance);
    if (!instance.ok()) return instance.status();
    Result<Selection> selection =
        selector.Select(instance.value(), options.budget);
    if (!selection.ok()) return selection.status();

    DestinationOutcome outcome;
    outcome.destination = destination;
    for (UserId local : selection->users) {
      outcome.selected.push_back(reviewers[local]);
    }
    outcome.metrics = EvaluateDestination(store, destination,
                                          outcome.selected, options.metrics);
    total.topic_sentiment_coverage += outcome.metrics.topic_sentiment_coverage;
    total.usefulness += outcome.metrics.usefulness;
    total.rating_distribution_similarity +=
        outcome.metrics.rating_distribution_similarity;
    total.rating_variance += outcome.metrics.rating_variance;
    total.procured_reviews += outcome.metrics.procured_reviews;
    ++evaluated;
    result.per_destination.push_back(std::move(outcome));
  }

  if (evaluated > 0) {
    const auto n = static_cast<double>(evaluated);
    total.topic_sentiment_coverage /= n;
    total.usefulness /= n;
    total.rating_distribution_similarity /= n;
    total.rating_variance /= n;
  }
  result.average = total;
  return result;
}

}  // namespace podium::metrics
