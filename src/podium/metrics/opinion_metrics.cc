#include "podium/metrics/opinion_metrics.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "podium/metrics/cd_sim.h"
#include "podium/util/math_util.h"

namespace podium::metrics {

namespace {

using opinion::Review;
using opinion::Sentiment;
using opinion::TopicId;

/// (topic, sentiment) key.
using TopicSentiment = std::pair<TopicId, Sentiment>;

}  // namespace

OpinionMetrics EvaluateDestination(const opinion::OpinionStore& store,
                                   opinion::DestinationId destination,
                                   const std::vector<UserId>& subset,
                                   const OpinionMetricOptions& options) {
  OpinionMetrics metrics;
  const std::vector<Review>& all_reviews = store.reviews_of(destination);
  if (all_reviews.empty()) return metrics;

  const std::unordered_set<UserId> chosen(subset.begin(), subset.end());

  // Population-side statistics: topic frequency, expressed
  // (topic, sentiment) pairs, rating histogram.
  std::unordered_map<TopicId, std::size_t> topic_count;
  std::set<TopicSentiment> population_pairs;
  std::vector<double> population_hist(
      static_cast<std::size_t>(options.max_rating), 0.0);
  for (const Review& review : all_reviews) {
    population_hist[static_cast<std::size_t>(review.rating - 1)] += 1.0;
    for (const auto& mention : review.topics) {
      ++topic_count[mention.topic];
      population_pairs.emplace(mention.topic, mention.sentiment);
    }
  }

  // Subset-side statistics.
  std::set<TopicSentiment> subset_pairs;
  std::vector<double> subset_hist(
      static_cast<std::size_t>(options.max_rating), 0.0);
  std::vector<double> subset_ratings;
  for (const Review& review : all_reviews) {
    if (!chosen.contains(review.user)) continue;
    ++metrics.procured_reviews;
    metrics.usefulness += static_cast<double>(review.useful_votes);
    subset_hist[static_cast<std::size_t>(review.rating - 1)] += 1.0;
    subset_ratings.push_back(static_cast<double>(review.rating));
    for (const auto& mention : review.topics) {
      subset_pairs.emplace(mention.topic, mention.sentiment);
    }
  }
  if (metrics.procured_reviews == 0) return metrics;  // nothing procured

  // Topic+Sentiment coverage over prevalent topics.
  const double prevalence_threshold =
      options.prevalent_topic_fraction *
      static_cast<double>(all_reviews.size());
  std::size_t target_pairs = 0;
  std::size_t covered_pairs = 0;
  for (const TopicSentiment& pair : population_pairs) {
    const auto it = topic_count.find(pair.first);
    if (it == topic_count.end() ||
        static_cast<double>(it->second) < prevalence_threshold) {
      continue;
    }
    ++target_pairs;
    if (subset_pairs.contains(pair)) ++covered_pairs;
  }
  metrics.topic_sentiment_coverage =
      target_pairs == 0 ? 0.0
                        : static_cast<double>(covered_pairs) /
                              static_cast<double>(target_pairs);

  // Rating distribution similarity (CD-sim over normalized histograms).
  double population_total = 0.0;
  double subset_total = 0.0;
  for (double v : population_hist) population_total += v;
  for (double v : subset_hist) subset_total += v;
  std::vector<double> f_all = population_hist;
  std::vector<double> f_subset = subset_hist;
  for (double& v : f_all) v /= population_total;
  for (double& v : f_subset) v /= subset_total;
  metrics.rating_distribution_similarity = CdSim(f_subset, f_all);

  metrics.rating_variance = util::Variance(subset_ratings);
  return metrics;
}

OpinionMetrics AverageOpinionMetrics(
    const opinion::OpinionStore& store,
    const std::vector<opinion::DestinationId>& destinations,
    const std::vector<UserId>& subset, const OpinionMetricOptions& options) {
  OpinionMetrics total;
  if (destinations.empty()) return total;
  for (opinion::DestinationId d : destinations) {
    const OpinionMetrics m = EvaluateDestination(store, d, subset, options);
    total.topic_sentiment_coverage += m.topic_sentiment_coverage;
    total.usefulness += m.usefulness;
    total.rating_distribution_similarity += m.rating_distribution_similarity;
    total.rating_variance += m.rating_variance;
    total.procured_reviews += m.procured_reviews;
  }
  const auto n = static_cast<double>(destinations.size());
  total.topic_sentiment_coverage /= n;
  total.usefulness /= n;
  total.rating_distribution_similarity /= n;
  total.rating_variance /= n;
  return total;
}

}  // namespace podium::metrics
