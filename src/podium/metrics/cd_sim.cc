#include "podium/metrics/cd_sim.h"

#include <cassert>

namespace podium::metrics {

double CdSim(const std::vector<double>& f_subset,
             const std::vector<double>& f_all) {
  assert(f_subset.size() == f_all.size());
  if (f_all.empty()) return 1.0;
  double tax = 0.0;
  for (std::size_t b = 0; b < f_all.size(); ++b) {
    if (f_all[b] > 0.0 && f_subset[b] < f_all[b]) {
      tax += (f_all[b] - f_subset[b]) / f_all[b];
    }
  }
  return 1.0 - tax / static_cast<double>(f_all.size());
}

}  // namespace podium::metrics
