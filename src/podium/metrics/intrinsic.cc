#include "podium/metrics/intrinsic.h"

#include <algorithm>
#include <unordered_set>

#include "podium/core/score.h"
#include "podium/groups/complex_group.h"
#include "podium/metrics/cd_sim.h"
#include "podium/util/math_util.h"

namespace podium::metrics {

double TopKGroupCoverage(const DiversificationInstance& instance,
                         const std::vector<UserId>& subset, std::size_t k) {
  const std::vector<GroupId> by_size =
      instance.groups().GroupsBySizeDescending();
  const std::size_t count = std::min(k, by_size.size());
  if (count == 0) return 0.0;
  const std::vector<std::uint32_t> selected =
      MembersSelectedPerGroup(instance, subset);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (selected[by_size[i]] > 0) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(count);
}

double IntersectedPropertyCoverage(const DiversificationInstance& instance,
                                   const std::vector<UserId>& subset,
                                   std::size_t k,
                                   std::size_t max_complex_groups) {
  const std::vector<GroupId> by_size =
      instance.groups().GroupsBySizeDescending();
  if (by_size.empty()) return 0.0;
  const std::size_t threshold_index = std::min(k, by_size.size()) - 1;
  const std::size_t min_size =
      std::max<std::size_t>(instance.groups().group_size(
                                by_size[threshold_index]), 1);

  const std::vector<ComplexGroup> complex_groups =
      LargePairIntersections(instance.groups(), min_size, max_complex_groups);
  if (complex_groups.empty()) return 0.0;

  const std::unordered_set<UserId> chosen(subset.begin(), subset.end());
  std::size_t covered = 0;
  for (const ComplexGroup& group : complex_groups) {
    for (UserId member : group.members) {
      if (chosen.contains(member)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) /
         static_cast<double>(complex_groups.size());
}

double DistributionSimilarity(const DiversificationInstance& instance,
                              const std::vector<UserId>& subset,
                              std::size_t top_groups) {
  // Properties of the largest groups, deduplicated in rank order.
  const std::vector<GroupId> by_size =
      instance.groups().GroupsBySizeDescending();
  std::vector<PropertyId> target_properties;
  for (std::size_t i = 0; i < by_size.size() && i < top_groups; ++i) {
    const PropertyId p = instance.groups().def(by_size[i]).property;
    if (std::find(target_properties.begin(), target_properties.end(), p) ==
        target_properties.end()) {
      target_properties.push_back(p);
    }
  }
  if (target_properties.empty()) return 0.0;

  // wei-weighted bucket distributions, population versus selection
  // (f_all / f_subset of Def. 8.1 instantiated per Section 8.2). Since
  // groups already carry wei(G) and wei(G ∩ U) is realized by counting
  // selected members under the same weight kind, we use member counts for
  // LBS (the default) and group presence for Iden — both reduce to the
  // fraction of (weighted) users per bucket.
  const std::vector<std::uint32_t> selected =
      MembersSelectedPerGroup(instance, subset);

  std::vector<double> similarities;
  for (PropertyId property : target_properties) {
    std::vector<double> f_all;
    std::vector<double> f_subset;
    for (GroupId g = 0; g < instance.groups().group_count(); ++g) {
      if (instance.groups().def(g).property != property) continue;
      f_all.push_back(static_cast<double>(instance.groups().group_size(g)));
      f_subset.push_back(static_cast<double>(selected[g]));
    }
    double all_total = 0.0;
    double subset_total = 0.0;
    for (double v : f_all) all_total += v;
    for (double v : f_subset) subset_total += v;
    if (all_total <= 0.0) continue;
    for (double& v : f_all) v /= all_total;
    if (subset_total > 0.0) {
      for (double& v : f_subset) v /= subset_total;
    }
    similarities.push_back(CdSim(f_subset, f_all));
  }
  return util::Mean(similarities);
}

double FeedbackGroupCoverage(const DiversificationInstance& instance,
                             const std::vector<UserId>& subset,
                             const std::vector<GroupId>& priority_groups) {
  if (priority_groups.empty()) return 1.0;
  const std::vector<std::uint32_t> selected =
      MembersSelectedPerGroup(instance, subset);
  std::size_t covered = 0;
  for (GroupId g : priority_groups) {
    if (selected[g] > 0) ++covered;
  }
  return static_cast<double>(covered) /
         static_cast<double>(priority_groups.size());
}

IntrinsicMetrics ComputeIntrinsicMetrics(
    const DiversificationInstance& instance,
    const std::vector<UserId>& subset, std::size_t top_k) {
  IntrinsicMetrics metrics;
  metrics.total_score = TotalScore(instance, subset);
  metrics.top_k_coverage = TopKGroupCoverage(instance, subset, top_k);
  metrics.intersected_coverage =
      IntersectedPropertyCoverage(instance, subset, top_k);
  metrics.distribution_similarity = DistributionSimilarity(instance, subset);
  return metrics;
}

}  // namespace podium::metrics
