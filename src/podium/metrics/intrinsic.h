#ifndef PODIUM_METRICS_INTRINSIC_H_
#define PODIUM_METRICS_INTRINSIC_H_

#include <vector>

#include "podium/core/instance.h"

namespace podium::metrics {

/// Intrinsic diversity metrics (Section 8.2) — computed from the known
/// properties of the selected subset. The "Selection total Score" metric
/// is podium::TotalScore (core/score.h); the rest live here.

/// Top-k groups coverage: the fraction of the k largest groups with at
/// least one selected representative (the paper uses k = 200).
double TopKGroupCoverage(const DiversificationInstance& instance,
                         const std::vector<UserId>& subset, std::size_t k);

/// Intersected-Property Coverage: fraction of covered complex groups,
/// where complex groups are pairwise intersections of simple groups over
/// different properties that are at least as large as the k-th largest
/// simple group. `max_complex_groups` bounds the candidate pool (the
/// number of qualifying pairs can grow quadratically).
double IntersectedPropertyCoverage(const DiversificationInstance& instance,
                                   const std::vector<UserId>& subset,
                                   std::size_t k,
                                   std::size_t max_complex_groups = 2000);

/// Distribution Similarity: the mean CD-sim between the selection's and
/// the population's weight distribution over β(p), taken over the
/// properties of the `top_groups` largest groups (the paper averages over
/// the top-20 largest groups).
double DistributionSimilarity(const DiversificationInstance& instance,
                              const std::vector<UserId>& subset,
                              std::size_t top_groups = 20);

/// Feedback Group Coverage (Figure 4): fraction of `priority_groups` with
/// at least min(cov(G), 1) selected representative.
double FeedbackGroupCoverage(const DiversificationInstance& instance,
                             const std::vector<UserId>& subset,
                             const std::vector<GroupId>& priority_groups);

/// Bundle of every intrinsic metric for one selection, as reported in
/// Figures 3a/3c.
struct IntrinsicMetrics {
  double total_score = 0.0;
  double top_k_coverage = 0.0;
  double intersected_coverage = 0.0;
  double distribution_similarity = 0.0;
};
IntrinsicMetrics ComputeIntrinsicMetrics(
    const DiversificationInstance& instance,
    const std::vector<UserId>& subset, std::size_t top_k = 200);

}  // namespace podium::metrics

#endif  // PODIUM_METRICS_INTRINSIC_H_
