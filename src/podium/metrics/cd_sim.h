#ifndef PODIUM_METRICS_CD_SIM_H_
#define PODIUM_METRICS_CD_SIM_H_

#include <vector>

namespace podium::metrics {

/// Coverage-oriented distribution similarity (Def. 8.1):
///
///   cd-sim(f_subset, f_all) =
///     1 − (1/k) · Σ_{f_subset(b) < f_all(b)} (f_all(b) − f_subset(b)) / f_all(b)
///
/// Only under-representation is taxed; over-representing a bucket is free,
/// matching the coverage goal ("small groups must be over-represented").
/// Buckets with f_all(b) == 0 contribute nothing (there is nothing to
/// under-represent). Inputs must be the same length; the result is in
/// [0, 1] when the inputs are (sub-)distributions.
double CdSim(const std::vector<double>& f_subset,
             const std::vector<double>& f_all);

}  // namespace podium::metrics

#endif  // PODIUM_METRICS_CD_SIM_H_
