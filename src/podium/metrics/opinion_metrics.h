#ifndef PODIUM_METRICS_OPINION_METRICS_H_
#define PODIUM_METRICS_OPINION_METRICS_H_

#include <vector>

#include "podium/opinion/opinion_store.h"

namespace podium::metrics {

/// Opinion diversity metrics (Section 8.2) — computed from the reviews a
/// selected subset would contribute about hold-out destinations, which are
/// unknown to the selection algorithms.

struct OpinionMetricOptions {
  /// A topic counts as "prevalent" for a destination when it appears in at
  /// least this fraction of the destination's reviews.
  double prevalent_topic_fraction = 0.05;
  /// Rating scale (1..max_rating).
  int max_rating = 5;
};

/// Per-destination metrics; aggregate with AverageOpinionMetrics.
struct OpinionMetrics {
  /// Fraction of (prevalent topic, sentiment) pairs present in the
  /// population's reviews that the subset's reviews also exhibit. 100%
  /// means every prevalent topic appears with every sentiment the
  /// population expressed (both positive and negative where both exist).
  double topic_sentiment_coverage = 0.0;

  /// Sum of useful votes over the subset's reviews (Yelp only).
  double usefulness = 0.0;

  /// CD-sim between the subset's and the population's rating distribution.
  double rating_distribution_similarity = 0.0;

  /// Variance of the subset's ratings.
  double rating_variance = 0.0;

  /// Number of subset reviews for the destination.
  std::size_t procured_reviews = 0;
};

/// Evaluates one destination. Destinations where the subset contributed no
/// review score 0 on every metric (nothing was procured).
OpinionMetrics EvaluateDestination(const opinion::OpinionStore& store,
                                   opinion::DestinationId destination,
                                   const std::vector<UserId>& subset,
                                   const OpinionMetricOptions& options = {});

/// Averages per-destination metrics over `destinations` (the hold-out
/// set), as the paper reports.
OpinionMetrics AverageOpinionMetrics(
    const opinion::OpinionStore& store,
    const std::vector<opinion::DestinationId>& destinations,
    const std::vector<UserId>& subset, const OpinionMetricOptions& options = {});

}  // namespace podium::metrics

#endif  // PODIUM_METRICS_OPINION_METRICS_H_
