#ifndef PODIUM_LINT_LINT_H_
#define PODIUM_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "podium/util/result.h"

namespace podium::lint {

/// One lint violation. `rule` is a stable kebab-case identifier; the same
/// string works in a `// podium-lint: allow(<rule>)` suppression comment on
/// the offending line or the line directly above it.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// "file:line: rule: message" — the format grep/editors already understand.
std::string FormatFinding(const Finding& finding);

struct LintOptions {
  /// Paths containing any of these substrings are skipped entirely.
  /// Used to keep the rule-violation fixtures under tests/lint/fixtures/
  /// out of tree-wide runs.
  std::vector<std::string> exclude_substrings;
};

/// Lints one in-memory source buffer. `path` is both the label used in
/// findings and the input to path-sensitive rules (include-first only
/// applies to src/**/*.cc, test-internal-include only to tests/**,
/// raw-stderr only to src/podium/serve/ and tools/), so fixture tests can
/// claim any path for any content.
std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content);

/// Reads `path` from disk and lints it. IoError if unreadable.
Result<std::vector<Finding>> LintFile(const std::string& path);

/// Recursively lints every .h/.cc file under `roots` (files may also be
/// named directly), in sorted path order for deterministic output.
Result<std::vector<Finding>> LintTree(const std::vector<std::string>& roots,
                                      const LintOptions& options = {});

}  // namespace podium::lint

#endif  // PODIUM_LINT_LINT_H_
