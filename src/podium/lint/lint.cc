#include "podium/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "podium/util/string_util.h"

namespace podium::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// A source file split into per-line code and comment channels. Comments,
/// string literals and character literals are removed from `code` (so the
/// rules below can scan for tokens without tripping over prose or data),
/// and comment text is preserved per line for the suppression and
/// todo-owner rules.
struct ScannedSource {
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

ScannedSource Scan(std::string_view text) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  ScannedSource out;
  std::string code_line;
  std::string comment_line;
  State state = State::kCode;
  std::string raw_delimiter;  // for kRawString: the ")delim" terminator

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comment.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary string/char literals cannot span lines;
      // recover rather than swallowing the rest of the file.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim(...)delim" — the prefix letter is still sitting at the
          // end of code_line. (uR / u8R / LR prefixes all end in R.)
          const bool raw =
              !code_line.empty() && code_line.back() == 'R' &&
              (code_line.size() < 2 ||
               !IsIdentChar(code_line[code_line.size() - 2]) ||
               util::EndsWith(code_line, "u8R") ||
               util::EndsWith(code_line, "uR") ||
               util::EndsWith(code_line, "UR") ||
               util::EndsWith(code_line, "LR"));
          if (raw) {
            raw_delimiter = ")";
            std::size_t j = i + 1;
            while (j < n && text[j] != '(') raw_delimiter += text[j++];
            raw_delimiter += '"';
            i = j;  // consume through the opening '('
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'' &&
                   (code_line.empty() || !IsIdentChar(code_line.back()))) {
          // The guard keeps digit separators (1'000'000) in the code
          // channel instead of opening a bogus char literal.
          state = State::kChar;
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        const std::string_view rest = text.substr(i);
        if (util::StartsWith(rest, raw_delimiter)) {
          i += raw_delimiter.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  flush_line();  // final line (files without trailing newline)
  return out;
}

/// Suppressions: `// podium-lint: allow(rule-a, rule-b)` silences those
/// rules on its own line and on the line directly below (so the comment
/// can trail the offending statement or sit on the line above it).
std::map<int, std::set<std::string>> ParseSuppressions(
    const ScannedSource& source) {
  std::map<int, std::set<std::string>> allowed;
  for (std::size_t i = 0; i < source.comment.size(); ++i) {
    const std::string& comment = source.comment[i];
    std::size_t pos = comment.find("podium-lint:");
    while (pos != std::string::npos) {
      const std::size_t open = comment.find("allow(", pos);
      if (open == std::string::npos) break;
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) break;
      const std::string_view inside(comment.data() + open + 6,
                                    close - open - 6);
      for (const std::string& rule : util::Split(inside, ',')) {
        const std::string_view trimmed = util::StripWhitespace(rule);
        if (!trimmed.empty()) {
          allowed[static_cast<int>(i) + 1].emplace(trimmed);
        }
      }
      pos = comment.find("podium-lint:", close);
    }
  }
  return allowed;
}

bool IsSuppressed(const std::map<int, std::set<std::string>>& allowed,
                  int line, const std::string& rule) {
  for (int candidate : {line, line - 1}) {
    auto it = allowed.find(candidate);
    if (it != allowed.end() && it->second.count(rule) > 0) return true;
  }
  return false;
}

/// An identifier token and where it sits in its line.
struct Token {
  std::string text;
  std::size_t begin = 0;  // column of the first character
  std::size_t end = 0;    // one past the last character
};

std::vector<Token> IdentifiersIn(const std::string& line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (IsIdentStart(line[i]) && (i == 0 || !IsIdentChar(line[i - 1]))) {
      Token token;
      token.begin = i;
      while (i < line.size() && IsIdentChar(line[i])) token.text += line[i++];
      token.end = i;
      tokens.push_back(std::move(token));
    } else {
      ++i;
    }
  }
  return tokens;
}

char FirstNonSpaceAfter(const std::string& line, std::size_t pos) {
  while (pos < line.size()) {
    if (line[pos] != ' ' && line[pos] != '\t') return line[pos];
    ++pos;
  }
  return '\0';
}

char LastNonSpaceBefore(const std::string& line, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (line[pos] != ' ' && line[pos] != '\t') return line[pos];
  }
  return '\0';
}

struct BannedFunction {
  std::string_view name;
  std::string_view hint;
};

constexpr std::string_view kParseHint =
    "use the checked parsers in podium/util/parse.h";
constexpr std::string_view kRngHint =
    "use podium::util::Rng (podium/util/rng.h) for reproducible streams";
constexpr std::string_view kChronoHint = "use std::chrono clocks";
constexpr std::string_view kStringHint =
    "use std::string / util::StringPrintf";

constexpr BannedFunction kBannedFunctions[] = {
    {"atoi", kParseHint},     {"atol", kParseHint},
    {"atoll", kParseHint},    {"atof", kParseHint},
    {"strtol", kParseHint},   {"strtoll", kParseHint},
    {"strtoul", kParseHint},  {"strtoull", kParseHint},
    {"stoi", kParseHint},     {"stol", kParseHint},
    {"stoll", kParseHint},    {"stoul", kParseHint},
    {"stoull", kParseHint},   {"rand", kRngHint},
    {"srand", kRngHint},      {"rand_r", kRngHint},
    {"time", kChronoHint},    {"strcpy", kStringHint},
    {"strcat", kStringHint},  {"sprintf", kStringHint},
    {"vsprintf", kStringHint}, {"gets", kStringHint},
};

const BannedFunction* FindBanned(const std::string& name) {
  for (const BannedFunction& banned : kBannedFunctions) {
    if (banned.name == name) return &banned;
  }
  return nullptr;
}

/// One include directive, as written.
struct Include {
  int line = 0;
  std::string target;
  bool quoted = false;
};

std::vector<Include> ExtractIncludes(
    const ScannedSource& source,
    const std::vector<std::string>& original_lines) {
  std::vector<Include> includes;
  for (std::size_t i = 0; i < source.code.size(); ++i) {
    const std::string_view code = util::StripWhitespace(source.code[i]);
    if (!util::StartsWith(code, "#")) continue;
    const std::string_view directive =
        util::StripWhitespace(code.substr(1));
    if (!util::StartsWith(directive, "include")) continue;
    // The include target was blanked out of the code channel along with
    // every other string literal; recover it from the original line.
    if (i >= original_lines.size()) continue;
    const std::string& original = original_lines[i];
    Include include;
    include.line = static_cast<int>(i) + 1;
    std::size_t open = original.find('"');
    if (open != std::string::npos) {
      const std::size_t close = original.find('"', open + 1);
      if (close == std::string::npos) continue;
      include.target = original.substr(open + 1, close - open - 1);
      include.quoted = true;
    } else {
      open = original.find('<');
      const std::size_t close = original.find('>', open + 1);
      if (open == std::string::npos || close == std::string::npos) continue;
      include.target = original.substr(open + 1, close - open - 1);
    }
    includes.push_back(std::move(include));
  }
  return includes;
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t newline = text.find('\n', start);
    if (newline == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, newline - start));
    start = newline + 1;
  }
  return lines;
}

std::string NormalizePath(std::string_view path) {
  std::string normalized(path);
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  return normalized;
}

bool PathIsUnder(const std::string& path, std::string_view prefix) {
  return util::StartsWith(path, prefix) ||
         path.find(std::string("/") + std::string(prefix)) !=
             std::string::npos;
}

// --- Rules -----------------------------------------------------------------

void CheckBannedFunctions(const ScannedSource& source,
                          std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < source.code.size(); ++i) {
    for (const Token& token : IdentifiersIn(source.code[i])) {
      const BannedFunction* banned = FindBanned(token.text);
      if (banned == nullptr) continue;
      if (FirstNonSpaceAfter(source.code[i], token.end) != '(') continue;
      Finding finding;
      finding.line = static_cast<int>(i) + 1;
      finding.rule = "banned-function";
      finding.message = "call to banned function '" + token.text + "'; " +
                        std::string(banned->hint);
      findings->push_back(std::move(finding));
    }
  }
}

void CheckIncludeOrder(const std::string& path,
                       const std::vector<Include>& includes,
                       std::vector<Finding>* findings) {
  // src/**/*.cc must include its own header before anything else, so every
  // header is provably self-contained.
  const std::size_t src = path.rfind("src/");
  if (src == std::string::npos || !util::EndsWith(path, ".cc")) return;
  std::string expected = path.substr(src + 4);
  expected.replace(expected.size() - 3, 3, ".h");
  for (std::size_t i = 0; i < includes.size(); ++i) {
    if (includes[i].target != expected) continue;
    if (i == 0) return;  // own header is first: fine
    Finding finding;
    finding.line = includes[i].line;
    finding.rule = "include-first";
    finding.message = "own header \"" + expected +
                      "\" must be the first include of this file";
    findings->push_back(std::move(finding));
    return;
  }
  // A .cc without its own header (tool mains, generated files) is exempt.
}

void CheckTestInternalIncludes(const std::string& path,
                               const std::vector<Include>& includes,
                               std::vector<Finding>* findings) {
  if (!PathIsUnder(path, "tests/")) return;
  for (const Include& include : includes) {
    if (!include.quoted) continue;
    const bool internal = util::EndsWith(include.target, "internal.h") ||
                          include.target.find("/internal/") !=
                              std::string::npos;
    if (!internal) continue;
    Finding finding;
    finding.line = include.line;
    finding.rule = "test-internal-include";
    finding.message = "tests must not include internal header \"" +
                      include.target +
                      "\"; exercise the public interface instead";
    findings->push_back(std::move(finding));
  }
}

void CheckTodoOwner(const ScannedSource& source,
                    std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < source.comment.size(); ++i) {
    const std::string& comment = source.comment[i];
    std::size_t pos = comment.find("TODO");
    while (pos != std::string::npos) {
      const bool word_start = pos == 0 || !IsIdentChar(comment[pos - 1]);
      const char after =
          pos + 4 < comment.size() ? comment[pos + 4] : '\0';
      if (word_start && !IsIdentChar(after) && after != '(') {
        Finding finding;
        finding.line = static_cast<int>(i) + 1;
        finding.rule = "todo-owner";
        finding.message =
            "TODO without an owner; write TODO(name): so it can be routed";
        findings->push_back(std::move(finding));
        break;  // one finding per line is enough
      }
      pos = comment.find("TODO", pos + 4);
    }
  }
}

void CheckRawNewDelete(const std::string& path, const ScannedSource& source,
                       std::vector<Finding>* findings) {
  // util/ owns the leak-on-purpose singletons and the allocator-shaped
  // helpers; everywhere else ownership must be spelled with smart
  // pointers or containers.
  if (PathIsUnder(path, "src/podium/util/")) return;
  for (std::size_t i = 0; i < source.code.size(); ++i) {
    const std::string& line = source.code[i];
    const std::vector<Token> tokens = IdentifiersIn(line);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      const Token& token = tokens[t];
      const bool is_new = token.text == "new";
      const bool is_delete = token.text == "delete";
      if (!is_new && !is_delete) continue;
      if (is_delete) {
        // `Foo(const Foo&) = delete;` and `operator delete` are not
        // deallocations.
        if (t > 0 && tokens[t - 1].text == "operator") continue;
        char before = LastNonSpaceBefore(line, token.begin);
        if (before == '\0' && i > 0) {
          const std::string& previous = source.code[i - 1];
          before = LastNonSpaceBefore(previous, previous.size());
        }
        if (before == '=') continue;
      }
      if (is_new) {
        // `operator new` overloads (declaration sites) are allowed.
        if (t > 0 && tokens[t - 1].text == "operator") continue;
      }
      Finding finding;
      finding.line = static_cast<int>(i) + 1;
      finding.rule = "raw-new";
      finding.message = "raw '" + token.text +
                        "' outside util/; use std::make_unique / "
                        "std::make_shared or a container";
      findings->push_back(std::move(finding));
    }
  }
}

void CheckRawStderr(const std::string& path, const ScannedSource& source,
                    std::vector<Finding>* findings) {
  // The serve stack and the tools log through podium::obs::Log — JSON
  // lines that carry a level, a timestamp and the request's trace id.
  // A raw fprintf(stderr, ...) there bypasses the sink, the level filter
  // and the rate limiter, and corrupts log pipelines with unstructured
  // text. Deliberate terminal output (usage text) carries an explicit
  // `podium-lint: allow(raw-stderr)`.
  if (!PathIsUnder(path, "src/podium/serve/") &&
      !PathIsUnder(path, "tools/")) {
    return;
  }
  for (std::size_t i = 0; i < source.code.size(); ++i) {
    const std::string& line = source.code[i];
    const std::vector<Token> tokens = IdentifiersIn(line);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      if (tokens[t].text != "fprintf") continue;
      if (FirstNonSpaceAfter(line, tokens[t].end) != '(') continue;
      // The stream is the first argument: the next identifier on this
      // line, or the first one on the next line when the call wraps.
      std::string stream;
      if (t + 1 < tokens.size()) {
        stream = tokens[t + 1].text;
      } else if (i + 1 < source.code.size()) {
        const std::vector<Token> next_tokens =
            IdentifiersIn(source.code[i + 1]);
        if (!next_tokens.empty()) stream = next_tokens[0].text;
      }
      if (stream != "stderr") continue;
      Finding finding;
      finding.line = static_cast<int>(i) + 1;
      finding.rule = "raw-stderr";
      finding.message =
          "raw fprintf(stderr, ...) in the serve/tools layer; log through "
          "podium::obs::Log (podium/obs/log.h)";
      findings->push_back(std::move(finding));
    }
  }
}

void CheckIntrinsicsScope(const std::string& path,
                          const ScannedSource& source,
                          const std::vector<Include>& includes,
                          std::vector<Finding>* findings) {
  // SIMD intrinsics and type punning are confined to the kernel layer and
  // the arena: kernels.* owns every <immintrin.h> gather (and its lane
  // reinterpret_casts), arena.* owns the single Launder<T> that turns raw
  // bytes into typed spans. Anywhere else, a reinterpret_cast is either a
  // bug or a call for one of those two abstractions; OS-interface casts
  // (sockaddr) carry an explicit `podium-lint: allow(intrinsics-scope)`.
  //
  // Shard-arena ownership: `shard/*.cc` *owns* per-shard arenas (each
  // shard of a ShardedSnapshot sizes one util::Arena for its CSR slices)
  // but it is deliberately NOT on the exemption list — owning an arena
  // means requesting typed spans via Arena::AllocateSpan<T>, never
  // re-punning the raw block, so shard code stays under the same
  // confinement as every other caller.
  if (PathIsUnder(path, "src/podium/core/kernels.") ||
      PathIsUnder(path, "src/podium/util/arena.")) {
    return;
  }
  for (const Include& include : includes) {
    if (!util::EndsWith(include.target, "intrin.h")) continue;
    Finding finding;
    finding.line = include.line;
    finding.rule = "intrinsics-scope";
    finding.message =
        "#include <" + include.target +
        "> outside the kernel layer; SIMD code lives in "
        "src/podium/core/kernels.*";
    findings->push_back(std::move(finding));
  }
  for (std::size_t i = 0; i < source.code.size(); ++i) {
    for (const Token& token : IdentifiersIn(source.code[i])) {
      if (token.text != "reinterpret_cast") continue;
      Finding finding;
      finding.line = static_cast<int>(i) + 1;
      finding.rule = "intrinsics-scope";
      finding.message =
          "reinterpret_cast outside src/podium/core/kernels.* and "
          "src/podium/util/arena.*; use util::Arena spans or std::bit_cast";
      findings->push_back(std::move(finding));
    }
  }
}

bool LineDeclaresMutexMember(const std::string& code_line) {
  const std::string_view stripped = util::StripWhitespace(code_line);
  if (!util::EndsWith(stripped, ";")) return false;
  if (stripped.find('(') != std::string_view::npos) return false;
  const std::vector<Token> tokens = IdentifiersIn(code_line);
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    if (tokens[t].text == "Mutex") return true;
    if (tokens[t].text == "mutex" && t > 0 && tokens[t - 1].text == "std") {
      return true;
    }
  }
  return false;
}

bool LineHasExemptMemberType(const std::string& code_line) {
  for (const Token& token : IdentifiersIn(code_line)) {
    if (token.text == "atomic" || token.text == "CondVar" ||
        token.text == "condition_variable" || token.text == "thread" ||
        token.text == "Mutex" || token.text == "mutex" ||
        token.text == "constexpr" || token.text == "static") {
      return true;
    }
  }
  return false;
}

/// The declared name of a simple member declaration: the identifier right
/// before the first of `;` `=` `{` — or "" when the line does not look
/// like one (function declarations end in `)` before the `;`).
std::string DeclaredMemberName(const std::string& code_line) {
  const std::size_t end = code_line.find_first_of(";={");
  if (end == std::string::npos) return "";
  std::size_t pos = end;
  while (pos > 0 &&
         (code_line[pos - 1] == ' ' || code_line[pos - 1] == '\t')) {
    --pos;
  }
  std::size_t begin = pos;
  while (begin > 0 && IsIdentChar(code_line[begin - 1])) --begin;
  if (begin == pos) return "";
  return code_line.substr(begin, pos - begin);
}

void CheckGuardedMembers(const ScannedSource& source,
                         std::vector<Finding>* findings) {
  // Heuristic companion to clang's -Wthread-safety (which only runs in
  // CI): members declared in the adjacency group after a mutex member —
  // until the first blank line or non-member line — are presumed guarded
  // by it and must say so with PODIUM_GUARDED_BY. Genuinely unguarded
  // neighbours carry a `podium-lint: allow(guarded-member)` comment.
  for (std::size_t i = 0; i < source.code.size(); ++i) {
    if (!LineDeclaresMutexMember(source.code[i])) continue;
    for (std::size_t j = i + 1; j < source.code.size(); ++j) {
      const std::string& code_line = source.code[j];
      const std::string_view code = util::StripWhitespace(code_line);
      const std::string_view comment =
          util::StripWhitespace(source.comment[j]);
      if (code.empty() && comment.empty()) break;  // blank line ends group
      if (code.empty()) continue;                  // comment-only line
      if (util::StartsWith(code, "public") ||
          util::StartsWith(code, "protected") ||
          util::StartsWith(code, "private") ||
          util::StartsWith(code, "}")) {
        break;
      }
      if (!util::EndsWith(code, ";")) break;  // not a member declaration
      if (code_line.find("PODIUM_GUARDED_BY") != std::string::npos ||
          code_line.find("PODIUM_PT_GUARDED_BY") != std::string::npos) {
        continue;
      }
      if (LineHasExemptMemberType(code_line)) continue;
      const std::string name = DeclaredMemberName(code_line);
      if (name.empty() || name.back() != '_') continue;
      Finding finding;
      finding.line = static_cast<int>(j) + 1;
      finding.rule = "guarded-member";
      finding.message =
          "member '" + name +
          "' sits next to a mutex but has no PODIUM_GUARDED_BY "
          "annotation";
      findings->push_back(std::move(finding));
    }
    // Resume the outer scan after this mutex; nested mutexes re-trigger.
  }
}

/// The declared module DAG (DESIGN.md section 14): each module lists the
/// podium modules it may include directly. Edges not in this table are
/// layering violations — `core/` must stay servable without dragging in
/// `serve/`, and nothing below `util/` may reach up. `analysis/` sits at
/// the very bottom (no podium deps at all) so the lock-order weave in
/// util/mutex.h is itself a legal edge.
struct ModuleRule {
  std::string_view module;
  std::string_view deps;  // space-separated allowed direct dependencies
};

constexpr ModuleRule kModuleDag[] = {
    {"analysis", ""},
    {"util", "analysis"},
    {"csv", "util"},
    {"json", "util"},
    {"lint", "util"},
    {"telemetry", "json util"},
    {"obs", "json telemetry util"},
    {"profile", "csv json util"},
    {"opinion", "profile util"},
    {"taxonomy", "profile util"},
    {"bucketing", "telemetry util"},
    {"groups", "bucketing profile telemetry util"},
    {"core", "bucketing groups json profile taxonomy telemetry util"},
    {"baselines", "core util"},
    {"metrics", "core groups opinion util"},
    {"datagen", "opinion profile taxonomy telemetry util"},
    {"ingest", "datagen json opinion profile telemetry util"},
    {"shard", "bucketing core groups obs profile telemetry util"},
    {"serve", "core groups json obs profile shard telemetry util"},
    {"check", "core datagen json serve shard util"},
};

const ModuleRule* FindModuleRule(std::string_view module) {
  for (const ModuleRule& rule : kModuleDag) {
    if (rule.module == module) return &rule;
  }
  return nullptr;
}

/// The module that owns `path`: the directory segment directly under
/// src/podium/. Empty for everything else (tools/, tests/, bench/ sit
/// above the DAG and may depend on any module).
std::string ModuleOfPath(const std::string& path) {
  constexpr std::string_view kPrefix = "src/podium/";
  std::size_t pos = path.rfind(kPrefix);
  if (pos == std::string::npos) return "";
  pos += kPrefix.size();
  const std::size_t slash = path.find('/', pos);
  if (slash == std::string::npos) return "";
  return path.substr(pos, slash - pos);
}

/// The module an include target lives in ("podium/serve/http.h" →
/// "serve"); empty for system and non-podium includes.
std::string ModuleOfInclude(const std::string& target) {
  constexpr std::string_view kPrefix = "podium/";
  if (!util::StartsWith(target, kPrefix)) return "";
  const std::size_t slash = target.find('/', kPrefix.size());
  if (slash == std::string::npos) return "";
  return target.substr(kPrefix.size(), slash - kPrefix.size());
}

void CheckLayerViolations(const std::string& path,
                          const std::vector<Include>& includes,
                          std::vector<Finding>* findings) {
  const std::string module = ModuleOfPath(path);
  if (module.empty()) return;
  const ModuleRule* rule = FindModuleRule(module);
  if (rule == nullptr) {
    // A new directory under src/podium/ has to take a position in the
    // layering before it can ship; report once, on the first include.
    Finding finding;
    finding.line = includes.empty() ? 1 : includes.front().line;
    finding.rule = "layer-violation";
    finding.message = "module '" + module +
                      "' is not in the declared module DAG; add it to "
                      "kModuleDag in podium/lint/lint.cc (DESIGN.md "
                      "section 14)";
    findings->push_back(std::move(finding));
    return;
  }
  const std::vector<std::string> allowed = util::Split(rule->deps, ' ');
  for (const Include& include : includes) {
    if (!include.quoted) continue;
    const std::string target = ModuleOfInclude(include.target);
    if (target.empty() || target == module) continue;
    if (std::find(allowed.begin(), allowed.end(), target) != allowed.end()) {
      continue;
    }
    Finding finding;
    finding.line = include.line;
    finding.rule = "layer-violation";
    finding.message = "illegal module dependency '" + module + "' -> '" +
                      target + "': not an edge of the declared module DAG "
                      "(DESIGN.md section 14)";
    findings->push_back(std::move(finding));
  }
}

void CheckEintrRetry(const std::string& path, const ScannedSource& source,
                     std::vector<Finding>* findings) {
  // The serving path talks to sockets on every request; a bare syscall
  // there either forgets EINTR (and drops a connection when a signal
  // lands mid-recv) or re-derives the retry loop one more time. All five
  // transfer syscalls route through the checked wrappers in
  // serve/io_util.h — the one file allowed to spell them out.
  if (!PathIsUnder(path, "src/podium/serve/")) return;
  if (path.find("serve/io_util.") != std::string::npos) return;
  for (std::size_t i = 0; i < source.code.size(); ++i) {
    const std::string& line = source.code[i];
    for (const Token& token : IdentifiersIn(line)) {
      if (token.text != "read" && token.text != "write" &&
          token.text != "recv" && token.text != "send" &&
          token.text != "accept4") {
        continue;
      }
      if (FirstNonSpaceAfter(line, token.end) != '(') continue;
      Finding finding;
      finding.line = static_cast<int>(i) + 1;
      finding.rule = "eintr-retry";
      finding.message =
          "direct " + token.text +
          "() in serve/; use the checked retry wrappers in "
          "podium/serve/io_util.h";
      findings->push_back(std::move(finding));
    }
  }
}

void CheckUnnamedMutex(const ScannedSource& source,
                       const std::vector<std::string>& original_lines,
                       std::vector<Finding>* findings) {
  // Every util::Mutex carries a stable lock-class name (DESIGN.md
  // section 14); an unnamed one is a blind spot in the runtime lock-order
  // detector. Arrays are exempt — their elements deliberately share the
  // defaulted name. The name is a string literal, which Scan() blanks out
  // of the code channel, so "named" is read off the original line.
  for (std::size_t i = 0; i < source.code.size(); ++i) {
    const std::string& line = source.code[i];
    const std::string_view stripped = util::StripWhitespace(line);
    if (!util::EndsWith(stripped, ";")) continue;
    if (stripped.find('(') != std::string_view::npos) continue;
    if (stripped.find('[') != std::string_view::npos) continue;
    const std::vector<Token> tokens = IdentifiersIn(line);
    bool declares = false;
    for (const Token& token : tokens) {
      if (token.text != "Mutex") continue;
      // `Mutex* held;` / `Mutex& ref;` alias an existing named instance.
      const char after = FirstNonSpaceAfter(line, token.end);
      if (after == '*' || after == '&') continue;
      declares = true;
      break;
    }
    if (!declares) continue;
    // `using`/`typedef` lines mention the type without creating one.
    if (!tokens.empty() &&
        (tokens[0].text == "using" || tokens[0].text == "typedef")) {
      continue;
    }
    if (i < original_lines.size() &&
        original_lines[i].find('"') != std::string::npos) {
      continue;  // named
    }
    Finding finding;
    finding.line = static_cast<int>(i) + 1;
    finding.rule = "unnamed-mutex";
    finding.message =
        "util::Mutex without a lock-class name; declare it as "
        "Mutex m_{\"module.role\"} so the lock-order detector can see it";
    findings->push_back(std::move(finding));
  }
}

}  // namespace

std::string FormatFinding(const Finding& finding) {
  return util::StringPrintf("%s:%d: %s: %s", finding.file.c_str(),
                            finding.line, finding.rule.c_str(),
                            finding.message.c_str());
}

std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content) {
  const std::string normalized = NormalizePath(path);
  const ScannedSource source = Scan(content);
  const std::vector<std::string> original_lines = SplitLines(content);
  const std::vector<Include> includes =
      ExtractIncludes(source, original_lines);
  const std::map<int, std::set<std::string>> allowed =
      ParseSuppressions(source);

  std::vector<Finding> findings;
  CheckBannedFunctions(source, &findings);
  CheckIncludeOrder(normalized, includes, &findings);
  CheckTestInternalIncludes(normalized, includes, &findings);
  CheckTodoOwner(source, &findings);
  CheckRawNewDelete(normalized, source, &findings);
  CheckRawStderr(normalized, source, &findings);
  CheckIntrinsicsScope(normalized, source, includes, &findings);
  CheckGuardedMembers(source, &findings);
  CheckLayerViolations(normalized, includes, &findings);
  CheckEintrRetry(normalized, source, &findings);
  CheckUnnamedMutex(source, original_lines, &findings);

  std::vector<Finding> kept;
  for (Finding& finding : findings) {
    if (IsSuppressed(allowed, finding.line, finding.rule)) continue;
    finding.file = std::string(path);
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return kept;
}

Result<std::vector<Finding>> LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("error reading file: " + path);
  return LintSource(path, buffer.str());
}

Result<std::vector<Finding>> LintTree(const std::vector<std::string>& roots,
                                      const LintOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      return Status::IoError("no such file or directory: " + root);
    }
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string extension = it->path().extension().string();
      if (extension != ".h" && extension != ".cc") continue;
      paths.push_back(it->path().generic_string());
    }
    if (ec) return Status::IoError("error walking " + root + ": " +
                                   ec.message());
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<Finding> findings;
  for (const std::string& path : paths) {
    const std::string normalized = NormalizePath(path);
    bool excluded = false;
    for (const std::string& substring : options.exclude_substrings) {
      if (normalized.find(substring) != std::string::npos) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    Result<std::vector<Finding>> file_findings = LintFile(path);
    if (!file_findings.ok()) return file_findings.status();
    for (Finding& finding : file_findings.value()) {
      findings.push_back(std::move(finding));
    }
  }
  return findings;
}

}  // namespace podium::lint
