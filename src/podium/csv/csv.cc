#include "podium/csv/csv.h"

#include <fstream>
#include <sstream>

#include "podium/util/string_util.h"

namespace podium::csv {

int Table::ColumnIndex(std::string_view column) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return static_cast<int>(i);
  }
  return -1;
}

namespace {

/// State machine over the raw text; handles quoted fields with embedded
/// delimiters/newlines and doubled quotes.
Result<std::vector<Row>> ParseRows(std::string_view text, char delimiter) {
  std::vector<Row> rows;
  Row current_row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  int line = 1;

  auto end_field = [&] {
    current_row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(current_row));
    current_row.clear();
  };

  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty() || field_was_quoted) {
          return Status::ParseError(util::StringPrintf(
              "unexpected quote inside unquoted field at line %d", line));
        }
        in_quotes = true;
        field_was_quoted = true;
        ++i;
        break;
      case '\r':
        // Swallow the \r of \r\n; a bare \r also terminates the row.
        if (i + 1 < n && text[i + 1] == '\n') ++i;
        end_row();
        ++line;
        ++i;
        break;
      case '\n':
        end_row();
        ++line;
        ++i;
        break;
      default:
        if (c == delimiter) {
          end_field();
        } else {
          field.push_back(c);
        }
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field at end of input");
  }
  // Final record without a trailing newline.
  if (!field.empty() || field_was_quoted || !current_row.empty()) {
    end_row();
  }
  return rows;
}

}  // namespace

Result<Table> Parse(std::string_view text, const ParseOptions& options) {
  Result<std::vector<Row>> rows = ParseRows(text, options.delimiter);
  if (!rows.ok()) return rows.status();

  Table table;
  std::vector<Row>& all = rows.value();
  std::size_t first_data = 0;
  if (options.has_header) {
    if (all.empty()) {
      return Status::ParseError("expected a header row, got empty input");
    }
    table.header = std::move(all[0]);
    first_data = 1;
  }
  const std::size_t expected_width =
      options.has_header ? table.header.size()
                         : (all.empty() ? 0 : all[0].size());
  for (std::size_t r = first_data; r < all.size(); ++r) {
    if (options.require_rectangular && all[r].size() != expected_width) {
      return Status::ParseError(util::StringPrintf(
          "row %zu has %zu fields, expected %zu", r + 1, all[r].size(),
          expected_width));
    }
    table.rows.push_back(std::move(all[r]));
  }
  return table;
}

Result<Table> ParseFile(const std::string& path, const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("error reading file: " + path);
  return Parse(buffer.str(), options);
}

namespace {

void AppendField(const std::string& field, char delimiter, std::string& out) {
  const bool needs_quoting =
      field.find(delimiter) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos;
  if (!needs_quoting) {
    out += field;
    return;
  }
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

void AppendRow(const Row& row, char delimiter, std::string& out) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(delimiter);
    AppendField(row[i], delimiter, out);
  }
  out.push_back('\n');
}

}  // namespace

std::string Write(const Table& table, const WriteOptions& options) {
  std::string out;
  if (!table.header.empty()) AppendRow(table.header, options.delimiter, out);
  for (const Row& row : table.rows) AppendRow(row, options.delimiter, out);
  return out;
}

Status WriteFile(const Table& table, const std::string& path,
                 const WriteOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out << Write(table, options);
  out.flush();
  if (!out) return Status::IoError("error writing file: " + path);
  return Status::Ok();
}

}  // namespace podium::csv
