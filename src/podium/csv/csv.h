#ifndef PODIUM_CSV_CSV_H_
#define PODIUM_CSV_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "podium/util/result.h"

namespace podium::csv {

/// One parsed CSV record (row of fields).
using Row = std::vector<std::string>;

/// A parsed CSV document: optional header plus data rows.
struct Table {
  Row header;              // empty when ParseOptions::has_header is false
  std::vector<Row> rows;

  /// Index of `column` in the header, or -1 if absent.
  int ColumnIndex(std::string_view column) const;
};

struct ParseOptions {
  char delimiter = ',';
  bool has_header = true;
  /// When true, every row must have the same number of fields as the first.
  bool require_rectangular = true;
};

/// Parses RFC-4180-style CSV: quoted fields may contain delimiters,
/// newlines and doubled quotes. Accepts both \n and \r\n line endings.
Result<Table> Parse(std::string_view text, const ParseOptions& options = {});

/// Parses the CSV file at `path`.
Result<Table> ParseFile(const std::string& path,
                        const ParseOptions& options = {});

struct WriteOptions {
  char delimiter = ',';
};

/// Serializes a table; fields containing the delimiter, quotes or newlines
/// are quoted with doubled inner quotes.
std::string Write(const Table& table, const WriteOptions& options = {});

/// Writes a table to `path`, replacing any existing contents.
Status WriteFile(const Table& table, const std::string& path,
                 const WriteOptions& options = {});

}  // namespace podium::csv

#endif  // PODIUM_CSV_CSV_H_
