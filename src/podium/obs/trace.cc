#include "podium/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace podium::obs {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

char HexChar(std::uint64_t nibble) {
  return nibble < 10 ? static_cast<char>('0' + nibble)
                     : static_cast<char>('a' + nibble - 10);
}

void AppendHex64(std::uint64_t value, std::string& out) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += HexChar((value >> shift) & 0xF);
  }
}

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Per-process random base: high-resolution clock at first use, mixed
/// through SplitMix64 so successive processes do not collide.
std::uint64_t ProcessSeed() {
  static const std::uint64_t seed = [] {
    std::uint64_t state = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    state ^= static_cast<std::uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    return SplitMix64(state);
  }();
  return seed;
}

thread_local TraceContext* t_current_trace = nullptr;

}  // namespace

std::string TraceId::ToHex() const {
  std::string out;
  out.reserve(32);
  AppendHex64(high, out);
  AppendHex64(low, out);
  return out;
}

std::optional<TraceId> TraceId::FromHex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  TraceId id;
  for (int i = 0; i < 16; ++i) {
    const int digit = HexDigit(hex[static_cast<std::size_t>(i)]);
    if (digit < 0) return std::nullopt;
    id.high = (id.high << 4) | static_cast<std::uint64_t>(digit);
  }
  for (int i = 16; i < 32; ++i) {
    const int digit = HexDigit(hex[static_cast<std::size_t>(i)]);
    if (digit < 0) return std::nullopt;
    id.low = (id.low << 4) | static_cast<std::uint64_t>(digit);
  }
  return id;
}

TraceId TraceId::Generate() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t state = ProcessSeed() ^ (n * 0xD1B54A32D192ED03ULL);
  TraceId id;
  id.high = SplitMix64(state);
  id.low = SplitMix64(state);
  if (id.IsZero()) id.low = 1;  // the zero id means "no trace"
  return id;
}

TraceContext::TraceContext(TraceId id)
    : id_(id), start_(std::chrono::steady_clock::now()) {}

int TraceContext::BeginSpan(std::string_view name) {
  TraceSpan span;
  span.name = std::string(name);
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.start_seconds = ElapsedSeconds();
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(index);
  return index;
}

void TraceContext::EndSpan(int index) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  TraceSpan& span = spans_[static_cast<std::size_t>(index)];
  span.duration_seconds = ElapsedSeconds() - span.start_seconds;
  // Pop through any unclosed children so a missed EndSpan cannot wedge
  // the open stack for the rest of the request.
  while (!open_stack_.empty() && open_stack_.back() >= index) {
    open_stack_.pop_back();
  }
}

int TraceContext::AddCompletedSpan(std::string_view name,
                                   double start_seconds,
                                   double duration_seconds) {
  TraceSpan span;
  span.name = std::string(name);
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.start_seconds = start_seconds;
  span.duration_seconds = duration_seconds;
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  return index;
}

double TraceContext::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

TraceContext* CurrentTrace() { return t_current_trace; }

TraceScope::TraceScope(TraceContext* context) : previous_(t_current_trace) {
  t_current_trace = context;
}

TraceScope::~TraceScope() { t_current_trace = previous_; }

Span::Span(std::string_view name) : trace_(t_current_trace) {
  if (trace_ != nullptr) index_ = trace_->BeginSpan(name);
}

Span::~Span() {
  if (trace_ != nullptr) trace_->EndSpan(index_);
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {}

void TraceRing::Record(FinishedTrace trace) {
  if (capacity_ == 0) return;
  util::MutexLock lock(mutex_);
  traces_.push_back(std::move(trace));
  while (traces_.size() > capacity_) traces_.pop_front();
}

std::vector<FinishedTrace> TraceRing::Snapshot(std::size_t limit) const {
  util::MutexLock lock(mutex_);
  std::vector<FinishedTrace> out;
  const std::size_t count =
      limit == 0 ? traces_.size() : std::min(limit, traces_.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(traces_[traces_.size() - 1 - i]);  // most recent first
  }
  return out;
}

void TraceRing::Clear() {
  util::MutexLock lock(mutex_);
  traces_.clear();
}

std::size_t TraceRing::size() const {
  util::MutexLock lock(mutex_);
  return traces_.size();
}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing(256);  // podium-lint: allow(raw-new)
  return *ring;
}

}  // namespace podium::obs
