#include "podium/obs/log.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

#include "podium/json/value.h"
#include "podium/json/writer.h"
#include "podium/util/string_util.h"

namespace podium::obs {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

/// The installed sink lives behind a mutex: swaps are rare (startup,
/// tests) and emission is already serialized so interleaved lines never
/// shear mid-record.
util::Mutex& SinkMutex() {
  static util::Mutex* mutex = new util::Mutex{"obs.log.sink"};  // podium-lint: allow(raw-new)
  return *mutex;
}

LogSink& SinkSlot() PODIUM_REQUIRES(SinkMutex()) {
  static LogSink* sink = new LogSink;  // podium-lint: allow(raw-new)
  return *sink;
}

void DefaultSink(std::string_view line) {
  std::string out(line);
  out += '\n';
  std::fwrite(out.data(), 1, out.size(), stderr);
}

/// Serializes a value through the JSON writer so escaping (quotes,
/// control characters, UTF-8 passthrough) matches the rest of the repo.
std::string JsonString(std::string_view text) {
  return json::Write(json::Value(text));
}

std::string JsonNumber(double value) { return json::Write(json::Value(value)); }

double UnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  util::MutexLock lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

LogRateLimiter::LogRateLimiter(double per_second, double burst)
    : per_second_(per_second),
      burst_(burst),
      tokens_(burst),
      last_refill_(std::chrono::steady_clock::now()) {}

bool LogRateLimiter::Allow() {
  util::MutexLock lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * per_second_);
  if (tokens_ < 1.0) {
    ++dropped_since_allowed_;
    return false;
  }
  tokens_ -= 1.0;
  last_suppressed_ = dropped_since_allowed_;
  dropped_since_allowed_ = 0;
  return true;
}

std::uint64_t LogRateLimiter::suppressed() const {
  util::MutexLock lock(mutex_);
  return last_suppressed_;
}

LogEntry::LogEntry(LogLevel level, std::string_view message)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) message_ = std::string(message);
}

LogEntry& LogEntry::Str(std::string_view key, std::string_view value) {
  if (enabled_) {
    fields_.push_back(Field{std::string(key), JsonString(value)});
  }
  return *this;
}

LogEntry& LogEntry::Num(std::string_view key, double value) {
  if (enabled_) {
    fields_.push_back(Field{std::string(key), JsonNumber(value)});
  }
  return *this;
}

LogEntry& LogEntry::Bool(std::string_view key, bool value) {
  if (enabled_) {
    fields_.push_back(Field{std::string(key), value ? "true" : "false"});
  }
  return *this;
}

LogEntry& LogEntry::TraceId(std::string_view trace_id_hex) {
  return Str("trace_id", trace_id_hex);
}

LogEntry& LogEntry::RateLimit(LogRateLimiter& limiter) {
  if (!enabled_ || dropped_) return *this;
  if (!limiter.Allow()) {
    dropped_ = true;
    return *this;
  }
  suppressed_ = limiter.suppressed();
  return *this;
}

LogEntry::~LogEntry() {
  if (!enabled_ || dropped_) return;
  std::string line;
  line.reserve(96);
  line += "{\"ts\": ";
  line += util::StringPrintf("%.3f", UnixSeconds());
  line += ", \"level\": ";
  line += JsonString(LogLevelName(level_));
  line += ", \"msg\": ";
  line += JsonString(message_);
  if (suppressed_ > 0) {
    line += ", \"suppressed\": ";
    line += JsonNumber(static_cast<double>(suppressed_));
  }
  for (const Field& field : fields_) {
    line += ", ";
    line += JsonString(field.key);
    line += ": ";
    line += field.json_value;
  }
  line += "}";

  util::MutexLock lock(SinkMutex());
  const LogSink& sink = SinkSlot();
  if (sink) {
    sink(line);
  } else {
    DefaultSink(line);
  }
}

}  // namespace podium::obs
