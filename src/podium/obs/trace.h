#ifndef PODIUM_OBS_TRACE_H_
#define PODIUM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "podium/util/mutex.h"
#include "podium/util/thread_annotations.h"

namespace podium::obs {

/// 128-bit request trace identifier, rendered as 32 lowercase hex chars —
/// the W3C trace-context width, so ids can travel unmodified through
/// fronting proxies. Propagated over HTTP in the X-Podium-Trace-Id
/// request/response headers: a client-supplied id is adopted verbatim,
/// otherwise the server mints one.
struct TraceId {
  std::uint64_t high = 0;
  std::uint64_t low = 0;

  bool IsZero() const { return high == 0 && low == 0; }
  std::string ToHex() const;

  /// Parses exactly 32 hex characters (either case); nullopt otherwise.
  static std::optional<TraceId> FromHex(std::string_view hex);

  /// Mints a process-unique, unpredictable-enough id (seeded per process,
  /// mixed with an atomic counter). Never returns the zero id.
  static TraceId Generate();
};

/// One timed operation inside a request. Spans form a tree via
/// `parent` (index into the trace's span vector, -1 for roots); the serve
/// stack nests e.g. select → admission/cache.lookup/run.
struct TraceSpan {
  std::string name;
  int parent = -1;
  /// Offset from the trace's start, and duration, both in seconds.
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Per-request trace state: the id plus the span list. Created by the
/// HTTP server when a request arrives and installed as the calling
/// thread's current trace, so layers below (service, cache) can attach
/// spans without threading a context parameter through every signature.
/// NOT thread-safe — a request is handled by one thread; work fanned out
/// to pool threads is accounted to the span that launched it.
class TraceContext {
 public:
  explicit TraceContext(TraceId id);

  const TraceId& id() const { return id_; }

  /// Opens a span; returns its index (pass to EndSpan). Nested spans
  /// record the innermost open span as their parent.
  int BeginSpan(std::string_view name);
  void EndSpan(int index);

  /// Records an already-measured span (offset + duration in seconds,
  /// relative to the trace start) under the innermost open span. Used by
  /// layers that fan work out to pool threads — the sharded selector
  /// measures each shard's wall clock off-thread and projects it into the
  /// request trace, which the RAII Span cannot do from a non-request
  /// thread. Returns the span's index.
  int AddCompletedSpan(std::string_view name, double start_seconds,
                       double duration_seconds);

  double ElapsedSeconds() const;
  const std::vector<TraceSpan>& spans() const { return spans_; }

 private:
  TraceId id_;
  std::chrono::steady_clock::time_point start_;
  std::vector<TraceSpan> spans_;
  std::vector<int> open_stack_;  // indices of currently-open spans
};

/// The thread's current trace, or nullptr outside a request. Managed by
/// TraceScope; everything else only reads it.
TraceContext* CurrentTrace();

/// RAII installer: makes `context` the calling thread's current trace for
/// the scope's lifetime (restoring the previous one, so tests can nest).
class TraceScope {
 public:
  explicit TraceScope(TraceContext* context);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext* previous_;
};

/// RAII span against the thread's current trace; a no-op (one TLS read)
/// when no trace is installed, so library code can be instrumented
/// unconditionally.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceContext* trace_;
  int index_ = -1;
};

/// A completed request trace, as exported by GET /v1/traces.
struct FinishedTrace {
  std::string trace_id;  // 32 hex chars
  std::string method;
  std::string path;
  int http_status = 0;
  double start_unix_seconds = 0.0;
  double total_seconds = 0.0;
  std::vector<TraceSpan> spans;
};

/// Bounded in-memory ring of the most recent finished traces. One global
/// instance backs /v1/traces; capacity is fixed at construction and the
/// oldest trace is dropped when full, so memory stays bounded no matter
/// the request rate.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void Record(FinishedTrace trace) PODIUM_EXCLUDES(mutex_);

  /// Most recent first, at most `limit` (0 = everything retained).
  std::vector<FinishedTrace> Snapshot(std::size_t limit = 0) const
      PODIUM_EXCLUDES(mutex_);

  void Clear() PODIUM_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const PODIUM_EXCLUDES(mutex_);

  /// The process-wide ring (capacity 256) the serve stack records into.
  static TraceRing& Global();

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_{"obs.trace_ring"};
  std::deque<FinishedTrace> traces_ PODIUM_GUARDED_BY(mutex_);
};

}  // namespace podium::obs

#endif  // PODIUM_OBS_TRACE_H_
