#ifndef PODIUM_OBS_LOG_H_
#define PODIUM_OBS_LOG_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "podium/util/mutex.h"
#include "podium/util/thread_annotations.h"

namespace podium::obs {

/// Severity, ordered. The process-wide minimum level defaults to kWarn so
/// library code can log liberally without spamming test output; serving
/// binaries raise it to kInfo at startup (access logs are info-level).
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

std::string_view LogLevelName(LogLevel level);

/// Where finished log lines go. The line is a complete JSON object WITHOUT
/// a trailing newline; the default sink appends one and writes to stderr.
using LogSink = std::function<void(std::string_view line)>;

/// Process-wide logger configuration. Every setter is thread-safe and
/// takes effect for subsequent log statements.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// Replaces the sink; nullptr restores the stderr default. Returns
/// nothing — tests capture lines by installing a closure over their own
/// buffer and restoring nullptr in teardown.
void SetLogSink(LogSink sink);

/// Token-bucket rate limiter for log statements: at most `burst` events
/// instantly, refilled at `per_second`. Thread-safe; Allow() is one mutex
/// acquisition, cheap enough for warn/error paths (do not put it on a
/// per-request hot path at debug level).
class LogRateLimiter {
 public:
  LogRateLimiter(double per_second, double burst);

  /// True when this event is within budget; false when it should be
  /// dropped. Dropped counts accumulate and are reported by the next
  /// allowed event via suppressed().
  bool Allow() PODIUM_EXCLUDES(mutex_);

  /// Events dropped since the last allowed one (snapshot at the time
  /// Allow() last returned true).
  std::uint64_t suppressed() const PODIUM_EXCLUDES(mutex_);

 private:
  const double per_second_;
  const double burst_;
  mutable util::Mutex mutex_{"obs.log.rate_limiter"};
  double tokens_ PODIUM_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point last_refill_
      PODIUM_GUARDED_BY(mutex_);
  std::uint64_t dropped_since_allowed_ PODIUM_GUARDED_BY(mutex_) = 0;
  std::uint64_t last_suppressed_ PODIUM_GUARDED_BY(mutex_) = 0;
};

/// One structured log statement, emitted as a single JSON line when the
/// temporary dies:
///
///   {"ts": 1754650000.123, "level": "info", "msg": "request",
///    "trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "status": 200}
///
/// Usage:
///
///   obs::LogEntry(obs::LogLevel::kInfo, "request")
///       .Str("path", "/v1/select").Num("status", 200)
///       .TraceId(trace_hex);
///
/// Field values are escaped by the JSON writer, so messages may contain
/// quotes, control characters or non-ASCII bytes. A statement below the
/// minimum level costs one atomic load and builds nothing.
class LogEntry {
 public:
  LogEntry(LogLevel level, std::string_view message);
  ~LogEntry();
  LogEntry(const LogEntry&) = delete;
  LogEntry& operator=(const LogEntry&) = delete;

  LogEntry& Str(std::string_view key, std::string_view value);
  LogEntry& Num(std::string_view key, double value);
  LogEntry& Bool(std::string_view key, bool value);
  /// Sets the conventional "trace_id" field (32 hex chars; see trace.h).
  LogEntry& TraceId(std::string_view trace_id_hex);
  /// Attaches a rate limiter: when it rejects, the whole line is dropped;
  /// when it admits after drops, a "suppressed" count field is added.
  LogEntry& RateLimit(LogRateLimiter& limiter);

  bool enabled() const { return enabled_; }

 private:
  struct Field {
    std::string key;
    std::string json_value;  // pre-serialized (escaped string or number)
  };

  bool enabled_;
  bool dropped_ = false;
  LogLevel level_;
  std::string message_;
  std::uint64_t suppressed_ = 0;
  std::vector<Field> fields_;
};

/// Shorthand constructors, matching the fluent style above.
inline LogEntry LogDebug(std::string_view message) {
  return LogEntry(LogLevel::kDebug, message);
}
inline LogEntry LogInfo(std::string_view message) {
  return LogEntry(LogLevel::kInfo, message);
}
inline LogEntry LogWarn(std::string_view message) {
  return LogEntry(LogLevel::kWarn, message);
}
inline LogEntry LogError(std::string_view message) {
  return LogEntry(LogLevel::kError, message);
}

}  // namespace podium::obs

#endif  // PODIUM_OBS_LOG_H_
