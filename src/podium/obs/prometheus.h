#ifndef PODIUM_OBS_PROMETHEUS_H_
#define PODIUM_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "podium/telemetry/telemetry.h"

namespace podium::obs {

/// Renders a MetricsSnapshot in the Prometheus text exposition format
/// (version 0.0.4): one `# TYPE` line per metric family, then one sample
/// line per series. Histograms emit cumulative `_bucket{le="..."}` series
/// ending in `le="+Inf"`, plus `_sum` and `_count`.
///
/// Registry names map to Prometheus names by sanitization: characters
/// outside [a-zA-Z0-9_:] become '_' (so "serve.latency_seconds" renders
/// as "serve_latency_seconds") and a leading digit gets a '_' prefix.
///
/// A registry name may carry labels with the Prometheus-like convention
///   serve.http.responses{code="200"}
/// — the renderer splits the base name from the label set, sanitizes
/// label names, escapes label values (backslash, double quote, newline)
/// and merges the labels into every emitted series of that metric.
/// Malformed label syntax falls back to sanitizing the whole string as a
/// plain name, so no registry content can corrupt the exposition.
std::string RenderPrometheus(const telemetry::MetricsSnapshot& snapshot);

/// Sanitizes one metric name (without labels): [a-zA-Z0-9_:], '_' prefix
/// when the first character is a digit, "_" for an empty input.
std::string SanitizeMetricName(std::string_view name);

/// Sanitizes a label name: like metric names but ':' is also invalid.
std::string SanitizeLabelName(std::string_view name);

/// Escapes a label value per the exposition format: \\ , \" and \n.
std::string EscapeLabelValue(std::string_view value);

/// A registry name split into base name + label pairs (see above).
struct ParsedMetricName {
  std::string name;                                        // sanitized
  std::vector<std::pair<std::string, std::string>> labels; // name, raw value
};
ParsedMetricName ParseMetricName(std::string_view registry_name);

}  // namespace podium::obs

#endif  // PODIUM_OBS_PROMETHEUS_H_
