#include "podium/obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>

#include "podium/util/string_util.h"

namespace podium::obs {

namespace {

bool ValidNameChar(char c, bool allow_colon) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         (allow_colon && c == ':');
}

std::string Sanitize(std::string_view name, bool allow_colon) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out += ValidNameChar(c, allow_colon) ? c : '_';
  if (out.empty()) return "_";
  if (std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Formats a sample value. Prometheus accepts Go-style floats; counts are
/// integral so they render without an exponent or trailing zeros, and
/// fractional values use the shortest representation that round-trips
/// (so a 0.1 bucket bound reads "0.1", not "0.10000000000000001").
std::string FormatValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    return util::StringPrintf("%lld",
                              static_cast<long long>(value));
  }
  for (int precision = 1; precision < 17; ++precision) {
    std::string out = util::StringPrintf("%.*g", precision, value);
    if (std::strtod(out.c_str(), nullptr) == value) return out;
  }
  return util::StringPrintf("%.17g", value);
}

std::string RenderLabels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string* extra_name, const std::string* extra_value) {
  if (labels.empty() && extra_name == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += SanitizeLabelName(name);
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  if (extra_name != nullptr) {
    if (!first) out += ",";
    out += *extra_name;
    out += "=\"";
    out += *extra_value;  // bucket bounds need no escaping
    out += "\"";
  }
  out += "}";
  return out;
}

/// One metric family: every series that shares a sanitized base name gets
/// a single # TYPE header, as the format requires.
struct Family {
  std::string type;
  std::vector<std::string> lines;
};

void AddSample(std::map<std::string, Family>& families,
               const ParsedMetricName& parsed, const std::string& type,
               const std::string& suffix, const std::string& labels,
               double value) {
  Family& family = families[parsed.name];
  if (family.type.empty()) family.type = type;
  family.lines.push_back(parsed.name + suffix + labels + " " +
                         FormatValue(value));
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  return Sanitize(name, /*allow_colon=*/true);
}

std::string SanitizeLabelName(std::string_view name) {
  return Sanitize(name, /*allow_colon=*/false);
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

ParsedMetricName ParseMetricName(std::string_view registry_name) {
  ParsedMetricName parsed;
  const std::size_t open = registry_name.find('{');
  if (open == std::string_view::npos) {
    parsed.name = SanitizeMetricName(registry_name);
    return parsed;
  }
  // name{key="value",key2="value2"} — anything else falls back to treating
  // the full string as a (sanitized) plain name.
  if (registry_name.back() != '}') {
    parsed.name = SanitizeMetricName(registry_name);
    return parsed;
  }
  std::string_view inside =
      registry_name.substr(open + 1, registry_name.size() - open - 2);
  std::vector<std::pair<std::string, std::string>> labels;
  while (!inside.empty()) {
    const std::size_t eq = inside.find("=\"");
    if (eq == std::string_view::npos) {
      parsed.name = SanitizeMetricName(registry_name);
      return parsed;
    }
    const std::size_t close = inside.find('"', eq + 2);
    if (close == std::string_view::npos) {
      parsed.name = SanitizeMetricName(registry_name);
      return parsed;
    }
    labels.emplace_back(std::string(inside.substr(0, eq)),
                        std::string(inside.substr(eq + 2, close - eq - 2)));
    inside = inside.substr(close + 1);
    if (!inside.empty()) {
      if (inside.front() != ',') {
        parsed.name = SanitizeMetricName(registry_name);
        return parsed;
      }
      inside = inside.substr(1);
    }
  }
  parsed.name = SanitizeMetricName(registry_name.substr(0, open));
  parsed.labels = std::move(labels);
  return parsed;
}

std::string RenderPrometheus(const telemetry::MetricsSnapshot& snapshot) {
  // Families keyed by sanitized base name so label-variants of one metric
  // share a single # TYPE header; std::map keeps the output sorted and
  // deterministic.
  std::map<std::string, Family> families;

  for (const auto& [name, value] : snapshot.counters) {
    const ParsedMetricName parsed = ParseMetricName(name);
    AddSample(families, parsed, "counter", "",
              RenderLabels(parsed.labels, nullptr, nullptr),
              static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const ParsedMetricName parsed = ParseMetricName(name);
    AddSample(families, parsed, "gauge", "",
              RenderLabels(parsed.labels, nullptr, nullptr), value);
  }
  static const std::string kLe = "le";
  for (const auto& [name, histogram] : snapshot.histograms) {
    const ParsedMetricName parsed = ParseMetricName(name);
    Family& family = families[parsed.name];
    if (family.type.empty()) family.type = "histogram";
    // Buckets are cumulative: bucket i in the snapshot counts
    // observations in (bounds[i-1], bounds[i]]; the exposition format
    // wants counts of everything <= the bound.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      cumulative += i < histogram.counts.size() ? histogram.counts[i] : 0;
      const std::string bound = FormatValue(histogram.bounds[i]);
      family.lines.push_back(
          parsed.name + "_bucket" +
          RenderLabels(parsed.labels, &kLe, &bound) + " " +
          FormatValue(static_cast<double>(cumulative)));
    }
    static const std::string kInf = "+Inf";
    family.lines.push_back(parsed.name + "_bucket" +
                           RenderLabels(parsed.labels, &kLe, &kInf) + " " +
                           FormatValue(static_cast<double>(histogram.count)));
    const std::string labels = RenderLabels(parsed.labels, nullptr, nullptr);
    family.lines.push_back(parsed.name + "_sum" + labels + " " +
                           FormatValue(histogram.sum));
    family.lines.push_back(parsed.name + "_count" + labels + " " +
                           FormatValue(static_cast<double>(histogram.count)));
  }

  std::string out;
  for (const auto& [name, family] : families) {
    out += "# TYPE " + name + " " + family.type + "\n";
    for (const std::string& line : family.lines) {
      out += line;
      out += "\n";
    }
  }
  return out;
}

}  // namespace podium::obs
