#ifndef PODIUM_GROUPS_WEIGHT_H_
#define PODIUM_GROUPS_WEIGHT_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "podium/groups/group_index.h"
#include "podium/util/result.h"

namespace podium {

/// The weight functions wei(G) of Def. 3.6.
enum class WeightKind : std::uint8_t {
  kIden,  // Identical Group Importance: wei(G) = 1
  kLbs,   // Linearly By Size:           wei(G) = |G|
  kEbs,   // Enforced By Size:           wei(G) = (B+1)^ord(G)
};

std::string_view WeightKindName(WeightKind kind);
Result<WeightKind> ParseWeightKind(std::string_view name);

/// Evaluated weights for every group of an index.
///
/// Iden and LBS produce plain scalars. EBS's (B+1)^ord(G) overflows any
/// floating-point type for realistic group counts, so EBS keeps the exact
/// rank ord(G) per group; the greedy selector compares EBS marginal
/// contributions lexicographically over ranks (see core/greedy.h), which
/// realizes exactly the ordering the exponential weights induce. The
/// scalar() accessor still exposes an approximate long-double weight for
/// reporting, which may saturate to +inf.
class GroupWeighting {
 public:
  /// `budget` is the B used by EBS's base (B+1); ignored by Iden/LBS.
  static GroupWeighting Compute(const GroupIndex& index, WeightKind kind,
                                std::size_t budget = 0);

  /// As above, but over explicit group sizes instead of an index. The
  /// sharded engine computes weights from GLOBAL group sizes and injects
  /// them into every shard-local instance, so all shards optimize the
  /// same global objective.
  static GroupWeighting ComputeFromSizes(std::span<const std::uint32_t> sizes,
                                         WeightKind kind,
                                         std::size_t budget = 0);

  WeightKind kind() const { return kind_; }
  std::size_t group_count() const { return scalar_.size(); }

  /// Scalar weight of group g (exact for Iden/LBS; approximate for EBS).
  double scalar(GroupId g) const { return scalar_[g]; }
  const std::vector<double>& scalars() const { return scalar_; }

  /// EBS rank ord(G): 0 for the smallest group, |𝒢|-1 for the largest
  /// (ties broken by group id, matching the paper's "arbitrary" tie-break
  /// deterministically). Only meaningful when kind() == kEbs.
  std::uint32_t rank(GroupId g) const { return rank_[g]; }

 private:
  WeightKind kind_ = WeightKind::kIden;
  std::vector<double> scalar_;
  std::vector<std::uint32_t> rank_;
};

}  // namespace podium

#endif  // PODIUM_GROUPS_WEIGHT_H_
