#include "podium/groups/coverage.h"

#include <algorithm>

#include "podium/telemetry/telemetry.h"

namespace podium {

std::string_view CoverageKindName(CoverageKind kind) {
  switch (kind) {
    case CoverageKind::kSingle:
      return "Single";
    case CoverageKind::kProp:
      return "Prop";
  }
  return "unknown";
}

Result<CoverageKind> ParseCoverageKind(std::string_view name) {
  if (name == "Single" || name == "single") return CoverageKind::kSingle;
  if (name == "Prop" || name == "prop") return CoverageKind::kProp;
  return Status::InvalidArgument("unknown coverage kind: " +
                                 std::string(name));
}

std::vector<std::uint32_t> ComputeCoverage(const GroupIndex& index,
                                           CoverageKind kind,
                                           std::size_t budget,
                                           std::size_t population) {
  std::vector<std::uint32_t> sizes(index.group_count());
  for (GroupId g = 0; g < sizes.size(); ++g) {
    sizes[g] = static_cast<std::uint32_t>(index.group_size(g));
  }
  return ComputeCoverage(sizes, kind, budget, population);
}

std::vector<std::uint32_t> ComputeCoverage(std::span<const std::uint32_t> sizes,
                                           CoverageKind kind,
                                           std::size_t budget,
                                           std::size_t population) {
  std::vector<std::uint32_t> coverage(sizes.size(), 1);
  if (kind == CoverageKind::kProp && population > 0) {
    for (GroupId g = 0; g < sizes.size(); ++g) {
      const std::size_t proportional = budget * sizes[g] / population;
      coverage[g] =
          static_cast<std::uint32_t>(std::max<std::size_t>(proportional, 1));
    }
  }
  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.counter("coverage.computations").Add();
    std::uint64_t total = 0;
    for (std::uint32_t c : coverage) total += c;
    registry.gauge("coverage.total_required")
        .Set(static_cast<double>(total));
  }
  return coverage;
}

}  // namespace podium
