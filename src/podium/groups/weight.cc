#include "podium/groups/weight.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace podium {

std::string_view WeightKindName(WeightKind kind) {
  switch (kind) {
    case WeightKind::kIden:
      return "Iden";
    case WeightKind::kLbs:
      return "LBS";
    case WeightKind::kEbs:
      return "EBS";
  }
  return "unknown";
}

Result<WeightKind> ParseWeightKind(std::string_view name) {
  if (name == "Iden" || name == "iden") return WeightKind::kIden;
  if (name == "LBS" || name == "lbs") return WeightKind::kLbs;
  if (name == "EBS" || name == "ebs") return WeightKind::kEbs;
  return Status::InvalidArgument("unknown weight kind: " + std::string(name));
}

GroupWeighting GroupWeighting::Compute(const GroupIndex& index,
                                       WeightKind kind, std::size_t budget) {
  std::vector<std::uint32_t> sizes(index.group_count());
  for (GroupId g = 0; g < sizes.size(); ++g) {
    sizes[g] = static_cast<std::uint32_t>(index.group_size(g));
  }
  return ComputeFromSizes(sizes, kind, budget);
}

GroupWeighting GroupWeighting::ComputeFromSizes(
    std::span<const std::uint32_t> sizes, WeightKind kind,
    std::size_t budget) {
  GroupWeighting weighting;
  weighting.kind_ = kind;
  const std::size_t n = sizes.size();
  weighting.scalar_.resize(n);
  switch (kind) {
    case WeightKind::kIden:
      std::fill(weighting.scalar_.begin(), weighting.scalar_.end(), 1.0);
      break;
    case WeightKind::kLbs:
      for (GroupId g = 0; g < n; ++g) {
        weighting.scalar_[g] = static_cast<double>(sizes[g]);
      }
      break;
    case WeightKind::kEbs: {
      // ord(·): groups sorted from smallest to largest, ties by id.
      std::vector<GroupId> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::stable_sort(order.begin(), order.end(),
                       [sizes](GroupId a, GroupId b) {
                         if (sizes[a] != sizes[b]) return sizes[a] < sizes[b];
                         return a < b;
                       });
      weighting.rank_.resize(n);
      for (std::uint32_t r = 0; r < n; ++r) weighting.rank_[order[r]] = r;
      // Approximate scalars for reporting; saturates to +inf quickly.
      const long double base = static_cast<long double>(budget) + 1.0L;
      for (GroupId g = 0; g < n; ++g) {
        weighting.scalar_[g] = static_cast<double>(
            std::pow(base, static_cast<long double>(weighting.rank_[g])));
      }
      break;
    }
  }
  return weighting;
}

}  // namespace podium
