#include "podium/groups/group_index.h"

#include <algorithm>
#include <numeric>

#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"

namespace podium {

namespace {

/// Group label per Section 5: "<bucket label> <property label>" for score
/// properties; boolean "true" groups read as just the property label
/// ("lives in Tokyo"), "false" groups as "not <property label>".
std::string MakeLabel(const PropertyTable& table, PropertyId property,
                      const bucketing::Bucket& bucket) {
  const std::string& property_label = table.Label(property);
  if (table.Kind(property) == PropertyKind::kBoolean) {
    return bucket.label == "false" ? "not " + property_label : property_label;
  }
  return bucket.label + " " + property_label;
}

}  // namespace

Result<GroupIndex> GroupIndex::Build(const ProfileRepository& repository,
                                     const GroupingOptions& options) {
  telemetry::PhaseSpan span("group_index.build");
  Result<std::unique_ptr<bucketing::Bucketizer>> bucketizer =
      bucketing::MakeBucketizer(options.bucket_method);
  if (!bucketizer.ok()) return bucketizer.status();
  if (options.max_buckets < 1) {
    return Status::InvalidArgument("max_buckets must be >= 1");
  }

  const PropertyTable& table = repository.properties();
  const std::size_t num_properties = table.size();

  // Collect observed scores per property in one pass over the profiles.
  std::vector<std::vector<double>> scores(num_properties);
  for (UserId u = 0; u < repository.user_count(); ++u) {
    for (const PropertyScore& entry : repository.user(u).entries()) {
      scores[entry.property].push_back(entry.score);
    }
  }

  GroupIndex index;
  index.buckets_per_property_.resize(num_properties);
  index.groups_of_user_.resize(repository.user_count());

  // Bucket each property and pre-create one (possibly empty) member list
  // per (property, bucket) pair; `slot_of[p]` is the id of property p's
  // first bucket group, or kInvalidGroup when the bucket was skipped.
  auto passes_filter = [&options, &table](PropertyId p) {
    if (options.property_filters.empty()) return true;
    const std::string& label = table.Label(p);
    for (const std::string& filter : options.property_filters) {
      if (label.find(filter) != std::string::npos) return true;
    }
    return false;
  };

  std::vector<std::vector<GroupId>> slot_of(num_properties);
  std::vector<GroupDef> provisional_defs;
  std::vector<std::vector<UserId>> provisional_members;
  for (PropertyId p = 0; p < num_properties; ++p) {
    if (scores[p].empty() || !passes_filter(p)) continue;
    std::vector<bucketing::Bucket> buckets;
    if (table.Kind(p) == PropertyKind::kBoolean) {
      buckets = bucketing::FixedBooleanBuckets();
    } else {
      Result<std::vector<bucketing::Bucket>> split =
          bucketizer.value()->Split(scores[p], options.max_buckets);
      if (!split.ok()) return split.status();
      buckets = std::move(split).value();
    }
    index.buckets_per_property_[p] = buckets;
    slot_of[p].assign(buckets.size(), kInvalidGroup);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (!options.include_boolean_false_groups &&
          table.Kind(p) == PropertyKind::kBoolean &&
          buckets[b].label == "false") {
        continue;
      }
      slot_of[p][b] = static_cast<GroupId>(provisional_defs.size());
      provisional_defs.push_back(
          GroupDef{p, buckets[b], MakeLabel(table, p, buckets[b])});
      provisional_members.emplace_back();
    }
  }

  // Single pass over profiles assigns every (user, property, score) entry
  // to its bucket's group.
  for (UserId u = 0; u < repository.user_count(); ++u) {
    for (const PropertyScore& entry : repository.user(u).entries()) {
      const auto& buckets = index.buckets_per_property_[entry.property];
      if (buckets.empty()) continue;
      const int b = bucketing::FindBucket(buckets, entry.score);
      if (b < 0) continue;  // unreachable for valid partitions
      const GroupId slot = slot_of[entry.property][static_cast<std::size_t>(b)];
      if (slot == kInvalidGroup) continue;
      provisional_members[slot].push_back(u);
    }
  }

  // Compact away empty / undersized groups and build the reverse links.
  const std::size_t min_size = std::max<std::size_t>(options.min_group_size, 1);
  for (std::size_t slot = 0; slot < provisional_defs.size(); ++slot) {
    if (provisional_members[slot].size() < min_size) continue;
    const auto id = static_cast<GroupId>(index.defs_.size());
    for (UserId u : provisional_members[slot]) {
      index.groups_of_user_[u].push_back(id);
    }
    index.defs_.push_back(std::move(provisional_defs[slot]));
    index.members_.push_back(std::move(provisional_members[slot]));
  }
  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.counter("group_index.builds").Add();
    registry.counter("group_index.groups")
        .Add(static_cast<std::uint64_t>(index.defs_.size()));
    registry.counter("group_index.pruned_groups")
        .Add(static_cast<std::uint64_t>(provisional_defs.size() -
                                        index.defs_.size()));
    std::uint64_t links = 0;
    for (const auto& members : index.members_) links += members.size();
    registry.counter("group_index.links").Add(links);
  }
  return index;
}

Result<GroupIndex> GroupIndex::FromDefs(const ProfileRepository& repository,
                                        std::vector<GroupDef> defs) {
  GroupIndex index;
  index.groups_of_user_.resize(repository.user_count());
  index.buckets_per_property_.resize(repository.property_count());

  for (GroupDef& def : defs) {
    if (def.property >= repository.property_count()) {
      return Status::OutOfRange("group definition references unknown property");
    }
    std::vector<UserId> members;
    for (UserId u = 0; u < repository.user_count(); ++u) {
      const auto score = repository.user(u).Get(def.property);
      if (score.has_value() && def.bucket.Contains(*score)) {
        members.push_back(u);
      }
    }
    if (members.empty()) continue;  // empty groups can never be covered
    const auto id = static_cast<GroupId>(index.defs_.size());
    for (UserId u : members) index.groups_of_user_[u].push_back(id);
    index.defs_.push_back(std::move(def));
    index.members_.push_back(std::move(members));
  }
  return index;
}

std::size_t GroupIndex::MaxGroupSize() const {
  std::size_t best = 0;
  for (const auto& members : members_) best = std::max(best, members.size());
  return best;
}

std::size_t GroupIndex::MaxGroupsPerUser() const {
  std::size_t best = 0;
  for (const auto& groups : groups_of_user_) {
    best = std::max(best, groups.size());
  }
  return best;
}

bool GroupIndex::Contains(GroupId g, UserId u) const {
  const std::vector<UserId>& members = members_[g];
  return std::binary_search(members.begin(), members.end(), u);
}

std::vector<GroupId> GroupIndex::GroupsBySizeDescending() const {
  std::vector<GroupId> order(group_count());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [this](GroupId a, GroupId b) {
    if (members_[a].size() != members_[b].size()) {
      return members_[a].size() > members_[b].size();
    }
    return a < b;
  });
  return order;
}

}  // namespace podium
