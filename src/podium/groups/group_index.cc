#include "podium/groups/group_index.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>

#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/thread_pool.h"

namespace podium {

namespace {

/// Grain for loops chunked over users: profile entry lists are short, so
/// a chunk needs a few hundred users to amortize dispatch.
constexpr std::size_t kUserGrain = 256;

}  // namespace

std::string MakeGroupLabel(const PropertyTable& table, PropertyId property,
                           const bucketing::Bucket& bucket) {
  const std::string& property_label = table.Label(property);
  if (table.Kind(property) == PropertyKind::kBoolean) {
    return bucket.label == "false" ? "not " + property_label : property_label;
  }
  return bucket.label + " " + property_label;
}

Status GroupIndex::FinalizeAdjacency(
    const std::vector<std::vector<UserId>>& members,
    const std::vector<bool>& keep, std::size_t num_users) {
  std::size_t kept = 0;
  std::size_t links = 0;
  for (std::size_t slot = 0; slot < members.size(); ++slot) {
    if (!keep[slot]) continue;
    ++kept;
    links += members[slot].size();
  }
  if (links > std::numeric_limits<std::uint32_t>::max()) {
    return Status::InvalidArgument(
        "adjacency exceeds 2^32 links; uint32 CSR offsets overflow");
  }

  // One contiguous 64-byte-aligned block for all four CSR arrays, sized
  // exactly; the arena's guard bytes license the kernels' flag gathers.
  arena_ = std::make_shared<util::Arena>(
      util::Arena::BytesFor<std::uint32_t>(kept + 1) +
      util::Arena::BytesFor<UserId>(links) +
      util::Arena::BytesFor<std::uint32_t>(num_users + 1) +
      util::Arena::BytesFor<GroupId>(links));
  const std::span<std::uint32_t> member_offsets =
      arena_->AllocateSpan<std::uint32_t>(kept + 1);
  const std::span<UserId> member_values = arena_->AllocateSpan<UserId>(links);
  const std::span<std::uint32_t> user_offsets =
      arena_->AllocateSpan<std::uint32_t>(num_users + 1);
  const std::span<GroupId> user_values = arena_->AllocateSpan<GroupId>(links);

  // Single pass over the kept lists: flatten the member direction and
  // count user degrees (into user_offsets, shifted by one) as each link
  // streams through.
  std::uint32_t cursor = 0;
  std::size_t row = 0;
  for (std::size_t slot = 0; slot < members.size(); ++slot) {
    if (!keep[slot]) continue;
    for (UserId u : members[slot]) {
      member_values[cursor++] = u;
      ++user_offsets[u + 1];
    }
    member_offsets[++row] = cursor;
  }

  // Reverse direction: prefix-sum the degrees, then fill. Kept groups are
  // visited in ascending id order, so each user's group list comes out
  // ascending.
  for (std::size_t u = 1; u <= num_users; ++u) {
    user_offsets[u] += user_offsets[u - 1];
  }
  std::vector<std::uint32_t> fill_cursor(user_offsets.begin(),
                                         user_offsets.end() - 1);
  for (std::size_t g = 0; g < kept; ++g) {
    for (std::uint32_t i = member_offsets[g]; i < member_offsets[g + 1];
         ++i) {
      user_values[fill_cursor[member_values[i]]++] =
          static_cast<GroupId>(g);
    }
  }

  member_offsets_ = member_offsets;
  member_values_ = member_values;
  user_offsets_ = user_offsets;
  user_values_ = user_values;
  return Status::Ok();
}

Result<GroupIndex> GroupIndex::Build(const ProfileRepository& repository,
                                     const GroupingOptions& options) {
  telemetry::PhaseSpan span("group_index.build");
  Result<std::unique_ptr<bucketing::Bucketizer>> bucketizer =
      bucketing::MakeBucketizer(options.bucket_method);
  if (!bucketizer.ok()) return bucketizer.status();
  if (options.max_buckets < 1) {
    return Status::InvalidArgument("max_buckets must be >= 1");
  }

  const PropertyTable& table = repository.properties();
  const std::size_t num_properties = table.size();
  const std::size_t num_users = repository.user_count();

  // Collect observed scores per property: chunked over users into
  // per-chunk slices, then concatenated per property in chunk order —
  // identical to the old single pass in ascending user order.
  const util::ChunkPlan user_plan = util::PlanChunks(num_users, kUserGrain);
  std::vector<std::vector<std::vector<double>>> chunk_scores(
      user_plan.num_chunks);
  util::ParallelFor(
      "group_index.collect", num_users,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        auto& local = chunk_scores[chunk];
        local.resize(num_properties);
        for (UserId u = begin; u < end; ++u) {
          for (const PropertyScore& entry : repository.user(u).entries()) {
            local[entry.property].push_back(entry.score);
          }
        }
      },
      kUserGrain);
  std::vector<std::vector<double>> scores(num_properties);
  util::ParallelFor(
      "group_index.merge", num_properties,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (PropertyId p = begin; p < end; ++p) {
          std::size_t total = 0;
          for (const auto& local : chunk_scores) total += local[p].size();
          scores[p].reserve(total);
          for (const auto& local : chunk_scores) {
            scores[p].insert(scores[p].end(), local[p].begin(),
                             local[p].end());
          }
        }
      },
      16);
  chunk_scores.clear();
  chunk_scores.shrink_to_fit();

  GroupIndex index;
  index.buckets_per_property_.resize(num_properties);

  auto passes_filter = [&options, &table](PropertyId p) {
    if (options.property_filters.empty()) return true;
    const std::string& label = table.Label(p);
    for (const std::string& filter : options.property_filters) {
      if (label.find(filter) != std::string::npos) return true;
    }
    return false;
  };

  // Bucket the properties in parallel. Bucketizers are stateless (k-means
  // seeding is fixed), so a per-chunk instance splits identically to the
  // old shared one; errors land in per-property slots and the first one in
  // property order is returned, matching the serial early-exit.
  std::vector<Status> bucket_errors(num_properties);
  util::ParallelFor(
      "group_index.bucketize", num_properties,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        const auto local_bucketizer =
            bucketing::MakeBucketizer(options.bucket_method);
        for (PropertyId p = begin; p < end; ++p) {
          if (scores[p].empty() || !passes_filter(p)) continue;
          if (table.Kind(p) == PropertyKind::kBoolean) {
            index.buckets_per_property_[p] = bucketing::FixedBooleanBuckets();
            continue;
          }
          Result<std::vector<bucketing::Bucket>> split =
              local_bucketizer.value()->Split(scores[p], options.max_buckets);
          if (!split.ok()) {
            bucket_errors[p] = split.status();
            continue;
          }
          index.buckets_per_property_[p] = std::move(split).value();
        }
      },
      4);
  for (PropertyId p = 0; p < num_properties; ++p) {
    if (!bucket_errors[p].ok()) return bucket_errors[p];
  }

  // Provisional group ids are assigned serially in (property, bucket)
  // order; `slot_of[p][b]` is the id of property p's bucket-b group, or
  // kInvalidGroup when the bucket was skipped.
  std::vector<std::vector<GroupId>> slot_of(num_properties);
  std::vector<GroupDef> provisional_defs;
  for (PropertyId p = 0; p < num_properties; ++p) {
    const auto& buckets = index.buckets_per_property_[p];
    if (buckets.empty()) continue;
    slot_of[p].assign(buckets.size(), kInvalidGroup);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (!options.include_boolean_false_groups &&
          table.Kind(p) == PropertyKind::kBoolean &&
          buckets[b].label == "false") {
        continue;
      }
      slot_of[p][b] = static_cast<GroupId>(provisional_defs.size());
      provisional_defs.push_back(
          GroupDef{p, buckets[b], MakeGroupLabel(table, p, buckets[b])});
    }
  }

  // Assign every (user, property, score) entry to its bucket's group:
  // chunked over users into per-chunk per-slot lists, then merged per slot
  // in chunk order — ascending user id, as the old single pass produced.
  const std::size_t num_slots = provisional_defs.size();
  std::vector<std::vector<std::vector<UserId>>> chunk_members(
      user_plan.num_chunks);
  util::ParallelFor(
      "group_index.assign", num_users,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        auto& local = chunk_members[chunk];
        local.resize(num_slots);
        for (UserId u = begin; u < end; ++u) {
          for (const PropertyScore& entry : repository.user(u).entries()) {
            const auto& buckets = index.buckets_per_property_[entry.property];
            if (buckets.empty()) continue;
            const int b = bucketing::FindBucket(buckets, entry.score);
            if (b < 0) continue;  // unreachable for valid partitions
            const GroupId slot =
                slot_of[entry.property][static_cast<std::size_t>(b)];
            if (slot == kInvalidGroup) continue;
            local[slot].push_back(u);
          }
        }
      },
      kUserGrain);
  std::vector<std::vector<UserId>> provisional_members(num_slots);
  util::ParallelFor(
      "group_index.gather", num_slots,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t slot = begin; slot < end; ++slot) {
          std::size_t total = 0;
          for (const auto& local : chunk_members) total += local[slot].size();
          provisional_members[slot].reserve(total);
          for (const auto& local : chunk_members) {
            provisional_members[slot].insert(provisional_members[slot].end(),
                                             local[slot].begin(),
                                             local[slot].end());
          }
        }
      },
      16);
  chunk_members.clear();
  chunk_members.shrink_to_fit();

  // Compact away empty / undersized groups and flatten both directions.
  const std::size_t min_size = std::max<std::size_t>(options.min_group_size, 1);
  std::vector<bool> keep(num_slots, false);
  for (std::size_t slot = 0; slot < num_slots; ++slot) {
    if (provisional_members[slot].size() < min_size) continue;
    keep[slot] = true;
    index.defs_.push_back(std::move(provisional_defs[slot]));
  }
  if (Status s = index.FinalizeAdjacency(provisional_members, keep, num_users);
      !s.ok()) {
    return s;
  }

  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.counter("group_index.builds").Add();
    registry.counter("group_index.groups")
        .Add(static_cast<std::uint64_t>(index.defs_.size()));
    registry.counter("group_index.pruned_groups")
        .Add(static_cast<std::uint64_t>(num_slots - index.defs_.size()));
    registry.counter("group_index.links")
        .Add(static_cast<std::uint64_t>(index.link_count()));
  }
  return index;
}

Result<GroupIndex> GroupIndex::FromDefs(const ProfileRepository& repository,
                                        std::vector<GroupDef> defs) {
  for (const GroupDef& def : defs) {
    if (def.property >= repository.property_count()) {
      return Status::OutOfRange("group definition references unknown property");
    }
  }

  // Each definition scans the repository independently.
  std::vector<std::vector<UserId>> members(defs.size());
  util::ParallelFor(
      "group_index.from_defs", defs.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t d = begin; d < end; ++d) {
          for (UserId u = 0; u < repository.user_count(); ++u) {
            const auto score = repository.user(u).Get(defs[d].property);
            if (score.has_value() && defs[d].bucket.Contains(*score)) {
              members[d].push_back(u);
            }
          }
        }
      },
      1);

  GroupIndex index;
  index.buckets_per_property_.resize(repository.property_count());
  std::vector<bool> keep(defs.size(), false);
  for (std::size_t d = 0; d < defs.size(); ++d) {
    if (members[d].empty()) continue;  // empty groups can never be covered
    keep[d] = true;
    index.defs_.push_back(std::move(defs[d]));
  }
  if (Status s = index.FinalizeAdjacency(members, keep, repository.user_count());
      !s.ok()) {
    return s;
  }
  return index;
}

Result<GroupIndex> GroupIndex::FromMembership(
    std::vector<GroupDef> defs,
    const std::vector<std::vector<UserId>>& members, std::size_t num_users) {
  if (members.size() != defs.size()) {
    return Status::InvalidArgument(
        "FromMembership: defs and member lists disagree in size");
  }
  for (const std::vector<UserId>& list : members) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i] >= num_users || (i > 0 && list[i] <= list[i - 1])) {
        return Status::InvalidArgument(
            "FromMembership: member lists must be strictly ascending, "
            "in-range user ids");
      }
    }
  }
  GroupIndex index;
  index.defs_ = std::move(defs);
  const std::vector<bool> keep(members.size(), true);
  if (Status s = index.FinalizeAdjacency(members, keep, num_users); !s.ok()) {
    return s;
  }
  return index;
}

std::size_t GroupIndex::MaxGroupSize() const {
  std::size_t best = 0;
  for (GroupId g = 0; g < group_count(); ++g) {
    best = std::max(best, group_size(g));
  }
  return best;
}

std::size_t GroupIndex::MaxGroupsPerUser() const {
  std::size_t best = 0;
  for (UserId u = 0; u < user_count(); ++u) {
    best = std::max(best, groups_of(u).size());
  }
  return best;
}

bool GroupIndex::Contains(GroupId g, UserId u) const {
  const std::span<const UserId> m = members(g);
  return std::binary_search(m.begin(), m.end(), u);
}

std::vector<GroupId> GroupIndex::GroupsBySizeDescending() const {
  std::vector<GroupId> order(group_count());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [this](GroupId a, GroupId b) {
    if (group_size(a) != group_size(b)) return group_size(a) > group_size(b);
    return a < b;
  });
  return order;
}

}  // namespace podium
