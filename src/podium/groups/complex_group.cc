#include "podium/groups/complex_group.h"

#include <algorithm>
#include <span>

namespace podium {

std::vector<UserId> IntersectGroups(const GroupIndex& index,
                                    const std::vector<GroupId>& groups) {
  if (groups.empty()) return {};
  const std::span<const UserId> first = index.members(groups[0]);
  std::vector<UserId> current(first.begin(), first.end());
  std::vector<UserId> next;
  for (std::size_t i = 1; i < groups.size() && !current.empty(); ++i) {
    const std::span<const UserId> other = index.members(groups[i]);
    next.clear();
    std::set_intersection(current.begin(), current.end(), other.begin(),
                          other.end(), std::back_inserter(next));
    current.swap(next);
  }
  return current;
}

std::vector<UserId> UniteGroups(const GroupIndex& index,
                                const std::vector<GroupId>& groups) {
  std::vector<UserId> current;
  std::vector<UserId> next;
  for (GroupId g : groups) {
    const std::span<const UserId> other = index.members(g);
    next.clear();
    std::set_union(current.begin(), current.end(), other.begin(), other.end(),
                   std::back_inserter(next));
    current.swap(next);
  }
  return current;
}

std::string IntersectionLabel(const GroupIndex& index,
                              const std::vector<GroupId>& groups) {
  std::string label;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (i > 0) label += " ∩ ";
    label += index.label(groups[i]);
  }
  return label;
}

std::vector<ComplexGroup> LargePairIntersections(const GroupIndex& index,
                                                 std::size_t min_size,
                                                 std::size_t limit) {
  // Consider pairs among the largest simple groups only: an intersection
  // can never exceed its smaller operand, so groups below min_size are
  // irrelevant. Groups are scanned in decreasing size order.
  std::vector<GroupId> by_size = index.GroupsBySizeDescending();
  std::size_t eligible = 0;
  while (eligible < by_size.size() &&
         index.group_size(by_size[eligible]) >= min_size) {
    ++eligible;
  }
  by_size.resize(eligible);

  std::vector<ComplexGroup> found;
  for (std::size_t i = 0; i < by_size.size(); ++i) {
    for (std::size_t j = i + 1; j < by_size.size(); ++j) {
      const GroupId a = by_size[i];
      const GroupId b = by_size[j];
      if (index.def(a).property == index.def(b).property) continue;
      std::vector<UserId> members = IntersectGroups(index, {a, b});
      if (members.size() < min_size) continue;
      found.push_back(ComplexGroup{{a, b}, std::move(members)});
    }
  }
  std::stable_sort(found.begin(), found.end(),
                   [](const ComplexGroup& x, const ComplexGroup& y) {
                     return x.members.size() > y.members.size();
                   });
  if (found.size() > limit) found.resize(limit);
  return found;
}

}  // namespace podium
