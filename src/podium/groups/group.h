#ifndef PODIUM_GROUPS_GROUP_H_
#define PODIUM_GROUPS_GROUP_H_

#include <cstdint>
#include <string>

#include "podium/bucketing/bucket.h"
#include "podium/profile/property.h"

namespace podium {

/// Dense identifier of a user group within a GroupIndex.
using GroupId = std::uint32_t;
inline constexpr GroupId kInvalidGroup = 0xFFFFFFFFu;

/// Definition of a simple user group G_{p,b} (Def. 3.4): the users whose
/// score for property p falls in the bucket b.
struct GroupDef {
  PropertyId property = kInvalidProperty;
  bucketing::Bucket bucket;

  /// Human-readable group label (Section 5), e.g.
  /// "high avgRating Mexican" or "livesIn Tokyo".
  std::string label;
};

}  // namespace podium

#endif  // PODIUM_GROUPS_GROUP_H_
