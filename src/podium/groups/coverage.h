#ifndef PODIUM_GROUPS_COVERAGE_H_
#define PODIUM_GROUPS_COVERAGE_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "podium/groups/group_index.h"
#include "podium/util/result.h"

namespace podium {

/// The coverage functions cov(G) of Def. 3.7.
enum class CoverageKind : std::uint8_t {
  kSingle,  // cov(G) = 1
  kProp,    // cov(G) = max(floor(B * |G| / |U|), 1)
};

std::string_view CoverageKindName(CoverageKind kind);
Result<CoverageKind> ParseCoverageKind(std::string_view name);

/// Evaluates cov(G) for every group. `budget` is the |U| of Def. 3.7 (the
/// size of the subset to be selected) and `population` is |𝒰|.
std::vector<std::uint32_t> ComputeCoverage(const GroupIndex& index,
                                           CoverageKind kind,
                                           std::size_t budget,
                                           std::size_t population);

/// As above, but over explicit group sizes instead of an index. The
/// sharded engine evaluates cov from GLOBAL group sizes so every shard
/// answers against the same coverage requirements.
std::vector<std::uint32_t> ComputeCoverage(std::span<const std::uint32_t> sizes,
                                           CoverageKind kind,
                                           std::size_t budget,
                                           std::size_t population);

}  // namespace podium

#endif  // PODIUM_GROUPS_COVERAGE_H_
