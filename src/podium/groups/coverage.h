#ifndef PODIUM_GROUPS_COVERAGE_H_
#define PODIUM_GROUPS_COVERAGE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "podium/groups/group_index.h"
#include "podium/util/result.h"

namespace podium {

/// The coverage functions cov(G) of Def. 3.7.
enum class CoverageKind : std::uint8_t {
  kSingle,  // cov(G) = 1
  kProp,    // cov(G) = max(floor(B * |G| / |U|), 1)
};

std::string_view CoverageKindName(CoverageKind kind);
Result<CoverageKind> ParseCoverageKind(std::string_view name);

/// Evaluates cov(G) for every group. `budget` is the |U| of Def. 3.7 (the
/// size of the subset to be selected) and `population` is |𝒰|.
std::vector<std::uint32_t> ComputeCoverage(const GroupIndex& index,
                                           CoverageKind kind,
                                           std::size_t budget,
                                           std::size_t population);

}  // namespace podium

#endif  // PODIUM_GROUPS_COVERAGE_H_
