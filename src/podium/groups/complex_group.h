#ifndef PODIUM_GROUPS_COMPLEX_GROUP_H_
#define PODIUM_GROUPS_COMPLEX_GROUP_H_

#include <string>
#include <vector>

#include "podium/groups/group_index.h"

namespace podium {

/// Complex groups (Section 3.2): intersections or unions of simple groups,
/// e.g. "Tokyo residents who are also Mexican food lovers". Used both by
/// clients defining richer targets and by the Intersected-Property
/// Coverage metric (Section 8.2).

/// Members of the intersection of `groups` (ascending user ids).
/// The intersection of zero groups is empty by convention.
std::vector<UserId> IntersectGroups(const GroupIndex& index,
                                    const std::vector<GroupId>& groups);

/// Members of the union of `groups` (ascending user ids).
std::vector<UserId> UniteGroups(const GroupIndex& index,
                                const std::vector<GroupId>& groups);

/// " ∩ "-joined label of the member groups.
std::string IntersectionLabel(const GroupIndex& index,
                              const std::vector<GroupId>& groups);

/// Enumerates pairwise intersections of distinct simple groups over
/// *different* properties whose member count is at least `min_size`,
/// largest first, up to `limit` results. Pairs over the same property are
/// skipped (same-property buckets are disjoint by construction).
///
/// This is the candidate pool for the Intersected-Property Coverage
/// metric: complex groups at least as large as the k-th largest simple
/// group.
struct ComplexGroup {
  std::vector<GroupId> parts;
  std::vector<UserId> members;
};
std::vector<ComplexGroup> LargePairIntersections(const GroupIndex& index,
                                                 std::size_t min_size,
                                                 std::size_t limit);

}  // namespace podium

#endif  // PODIUM_GROUPS_COMPLEX_GROUP_H_
