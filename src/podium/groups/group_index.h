#ifndef PODIUM_GROUPS_GROUP_INDEX_H_
#define PODIUM_GROUPS_GROUP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "podium/bucketing/bucketizer.h"
#include "podium/groups/group.h"
#include "podium/profile/repository.h"
#include "podium/util/arena.h"
#include "podium/util/result.h"

namespace podium {

/// Options controlling how simple groups are derived from a repository.
struct GroupingOptions {
  /// Bucketizer method name ("equal-width", "quantile", "kmeans-1d",
  /// "jenks", "kde"); see bucketing::MakeBucketizer.
  std::string bucket_method = "quantile";

  /// Maximum buckets per score property (boolean properties always get the
  /// fixed false/true pair).
  int max_buckets = 3;

  /// Drop groups with fewer members than this (empty groups are always
  /// dropped — they can never be covered and would distort LBS/EBS ranks).
  std::size_t min_group_size = 1;

  /// Whether to materialize the "false" bucket of boolean properties as a
  /// group. The paper's examples treat boolean properties via their "true"
  /// side ("lives in Tokyo"); inferred falsehoods can still be grouped by
  /// enabling this.
  bool include_boolean_false_groups = false;

  /// When non-empty, only properties whose label contains at least one of
  /// these substrings produce groups. This is how the prototype's named
  /// configurations scope diversification ("only considers properties
  /// related to a restaurant in that name", Section 7) and how the
  /// opinion experiments restrict 𝒢 to cuisine- and location-related
  /// properties (Section 8.4).
  std::vector<std::string> property_filters;
};

/// Group label per Section 5: "<bucket label> <property label>" for score
/// properties; boolean "true" groups read as just the property label
/// ("lives in Tokyo"), "false" groups as "not <property label>". Shared
/// by GroupIndex::Build and the sharded GroupScheme so the two paths
/// cannot drift.
std::string MakeGroupLabel(const PropertyTable& table, PropertyId property,
                           const bucketing::Bucket& bucket);

/// The set of simple groups 𝒢 over a repository plus the bidirectional
/// user ↔ group adjacency that Algorithm 1's data-structure section calls
/// for ("links in both directions between the lists").
///
/// Both directions are stored in CSR (compressed sparse row) form: one
/// contiguous values array per direction plus a uint32 offsets array, so
/// the retirement inner loop walks cache-line-dense spans instead of
/// chasing per-group vector headers. All four CSR arrays live in ONE
/// 64-byte-aligned util::Arena block (offsets, values, both directions),
/// filled in a single pass by FinalizeAdjacency — a whole index is one
/// contiguous allocation, and the arena's guard bytes license the SIMD
/// flag gathers in core/kernels.h over member spans. Accessors hand out
/// spans; call sites that only iterate are unaffected.
///
/// Immutable after Build(); the greedy selector keeps its own mutable
/// per-run state. Copies share the arena block (it never mutates), so
/// copying an index — the serve path builds a per-request instance over
/// the snapshot's prebuilt index — costs the group definitions, not the
/// adjacency.
class GroupIndex {
 public:
  /// An empty index (no groups, no users); assign a Build()/FromDefs()
  /// result over it.
  GroupIndex() = default;

  /// Buckets every property of `repository` and materializes the simple
  /// groups. The repository must outlive the index (member lists refer to
  /// its user ids, not its storage).
  static Result<GroupIndex> Build(const ProfileRepository& repository,
                                  const GroupingOptions& options = {});

  /// Builds an index from explicit group definitions (used for manually
  /// crafted groups, as surveyors define them).
  static Result<GroupIndex> FromDefs(const ProfileRepository& repository,
                                     std::vector<GroupDef> defs);

  /// Builds an index from explicit definitions plus precomputed member
  /// lists (members[d] are the users of defs[d], strictly ascending by
  /// user id). Unlike Build()/FromDefs(), EVERY definition is kept —
  /// including empty ones — so callers can impose a shared group-id
  /// space across several indexes: the sharded engine builds one index
  /// per shard over the GLOBAL GroupScheme, where a locally-empty group
  /// simply contributes nothing. buckets_per_property() is left empty.
  static Result<GroupIndex> FromMembership(
      std::vector<GroupDef> defs,
      const std::vector<std::vector<UserId>>& members, std::size_t num_users);

  std::size_t group_count() const { return defs_.size(); }
  std::size_t user_count() const {
    return user_offsets_.empty() ? 0 : user_offsets_.size() - 1;
  }

  const GroupDef& def(GroupId g) const { return defs_[g]; }
  const std::string& label(GroupId g) const { return defs_[g].label; }

  /// Members of group g, ascending by user id.
  std::span<const UserId> members(GroupId g) const {
    return member_values_.subspan(member_offsets_[g],
                                  member_offsets_[g + 1] - member_offsets_[g]);
  }
  std::size_t group_size(GroupId g) const {
    return member_offsets_[g + 1] - member_offsets_[g];
  }

  /// Groups containing user u, ascending by group id.
  std::span<const GroupId> groups_of(UserId u) const {
    return user_values_.subspan(user_offsets_[u],
                                user_offsets_[u + 1] - user_offsets_[u]);
  }

  /// Total number of user↔group links (the CSR values length).
  std::size_t link_count() const { return member_values_.size(); }

  /// The arena block holding all four CSR arrays (null for a
  /// default-constructed index). Exposed for the memory-layout tests and
  /// footprint accounting; shared, unchanged, by every copy of the index.
  const util::Arena* adjacency_arena() const { return arena_.get(); }

  /// max_{G} |G| and max_u |{G : u in G}| (the complexity-bound factors of
  /// Prop. 4.4).
  std::size_t MaxGroupSize() const;
  std::size_t MaxGroupsPerUser() const;

  /// True if user u belongs to group g (binary search over members).
  bool Contains(GroupId g, UserId u) const;

  /// Group ids sorted by decreasing size (ties by id, so deterministic).
  std::vector<GroupId> GroupsBySizeDescending() const;

  /// The buckets β(p) computed per property during Build (empty for
  /// properties absent from the repository). Indexed by PropertyId.
  const std::vector<std::vector<bucketing::Bucket>>& buckets_per_property()
      const {
    return buckets_per_property_;
  }

 private:
  /// Builds both CSR directions from per-group member lists (each
  /// ascending by user id) into one freshly allocated arena block;
  /// `keep[slot]` selects which lists survive. InvalidArgument when the
  /// link count overflows the uint32 offsets.
  [[nodiscard]] Status FinalizeAdjacency(
      const std::vector<std::vector<UserId>>& members,
      const std::vector<bool>& keep, std::size_t num_users);

  std::vector<GroupDef> defs_;
  // CSR adjacency, both directions, all four arrays inside arena_.
  // offsets have size count + 1; the values of row i live in
  // [offsets[i], offsets[i + 1]).
  std::shared_ptr<util::Arena> arena_;
  std::span<const std::uint32_t> member_offsets_;  // per group
  std::span<const UserId> member_values_;
  std::span<const std::uint32_t> user_offsets_;    // per user
  std::span<const GroupId> user_values_;
  std::vector<std::vector<bucketing::Bucket>> buckets_per_property_;
};

}  // namespace podium

#endif  // PODIUM_GROUPS_GROUP_INDEX_H_
