#ifndef PODIUM_PROFILE_USER_PROFILE_H_
#define PODIUM_PROFILE_USER_PROFILE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "podium/profile/property.h"

namespace podium {

/// Dense identifier of a user within a ProfileRepository.
using UserId = std::uint32_t;
inline constexpr UserId kInvalidUser = 0xFFFFFFFFu;

/// One (property, score) observation in a profile.
struct PropertyScore {
  PropertyId property;
  double score;  // in [0, 1]

  friend bool operator==(const PropertyScore&, const PropertyScore&) = default;
};

/// The profile D_u = <P_u, S_u> of one user (Section 3.1): the set of
/// properties known for the user, each with a score normalized to [0, 1].
/// Properties absent from the profile are interpreted under the open-world
/// assumption — neither true nor false.
///
/// Entries are kept sorted by PropertyId for O(log n) lookup and cheap
/// set-style iteration (e.g. Jaccard distance in the baselines).
class UserProfile {
 public:
  UserProfile() = default;
  explicit UserProfile(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Inserts or overwrites the score of `property`. Caller guarantees the
  /// score is in [0, 1]; ProfileRepository::SetScore validates.
  void Set(PropertyId property, double score);

  /// Removes `property` if present; returns whether it was present.
  bool Remove(PropertyId property);

  /// Replaces the whole profile in one shot (sorts by property id; on
  /// duplicate properties the last entry wins). Much faster than repeated
  /// Set() when building profiles in bulk.
  void ReplaceEntries(std::vector<PropertyScore> entries);

  /// The score S_u(p), or nullopt when p is not in P_u.
  std::optional<double> Get(PropertyId property) const;

  bool Has(PropertyId property) const { return Get(property).has_value(); }

  /// |P_u| — the profile size.
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entries sorted ascending by PropertyId.
  const std::vector<PropertyScore>& entries() const { return entries_; }

 private:
  std::string name_;
  std::vector<PropertyScore> entries_;
};

}  // namespace podium

#endif  // PODIUM_PROFILE_USER_PROFILE_H_
