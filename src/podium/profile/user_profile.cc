#include "podium/profile/user_profile.h"

#include <algorithm>

namespace podium {

namespace {

auto LowerBound(std::vector<PropertyScore>& entries, PropertyId property) {
  return std::lower_bound(
      entries.begin(), entries.end(), property,
      [](const PropertyScore& e, PropertyId p) { return e.property < p; });
}

auto LowerBound(const std::vector<PropertyScore>& entries,
                PropertyId property) {
  return std::lower_bound(
      entries.begin(), entries.end(), property,
      [](const PropertyScore& e, PropertyId p) { return e.property < p; });
}

}  // namespace

void UserProfile::Set(PropertyId property, double score) {
  auto it = LowerBound(entries_, property);
  if (it != entries_.end() && it->property == property) {
    it->score = score;
  } else {
    entries_.insert(it, PropertyScore{property, score});
  }
}

bool UserProfile::Remove(PropertyId property) {
  auto it = LowerBound(entries_, property);
  if (it != entries_.end() && it->property == property) {
    entries_.erase(it);
    return true;
  }
  return false;
}

void UserProfile::ReplaceEntries(std::vector<PropertyScore> entries) {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const PropertyScore& a, const PropertyScore& b) {
                     return a.property < b.property;
                   });
  // Keep the last entry of each duplicate run.
  std::size_t write = 0;
  for (std::size_t read = 0; read < entries.size(); ++read) {
    if (read + 1 < entries.size() &&
        entries[read + 1].property == entries[read].property) {
      continue;
    }
    entries[write++] = entries[read];
  }
  entries.resize(write);
  entries_ = std::move(entries);
}

std::optional<double> UserProfile::Get(PropertyId property) const {
  auto it = LowerBound(entries_, property);
  if (it != entries_.end() && it->property == property) return it->score;
  return std::nullopt;
}

}  // namespace podium
