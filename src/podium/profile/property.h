#ifndef PODIUM_PROFILE_PROPERTY_H_
#define PODIUM_PROFILE_PROPERTY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace podium {

/// Dense identifier for an interned property label.
using PropertyId = std::uint32_t;
inline constexpr PropertyId kInvalidProperty = 0xFFFFFFFFu;

/// How a property's [0, 1] score is to be interpreted. This drives
/// bucketing (boolean properties get the trivial [1,1] bucket plus [0,0])
/// and explanation labels.
enum class PropertyKind : std::uint8_t {
  kBoolean,  // score is 0 (false) or 1 (true), e.g. "livesIn Tokyo"
  kScore,    // continuous in [0, 1], e.g. "avgRating Mexican"
};

std::string_view PropertyKindName(PropertyKind kind);

/// Interning table mapping human-readable property labels ("avgRating
/// Mexican") to dense PropertyIds and carrying per-property metadata.
///
/// Labels are the unit of explanation in Podium (Section 5 of the paper),
/// so they are kept verbatim and human-readable.
class PropertyTable {
 public:
  PropertyTable() = default;

  /// Returns the id for `label`, interning it with `kind` if new. If the
  /// label already exists its kind is left unchanged.
  PropertyId Intern(std::string_view label,
                    PropertyKind kind = PropertyKind::kScore);

  /// Returns the id for `label` or kInvalidProperty if never interned.
  PropertyId Find(std::string_view label) const;

  const std::string& Label(PropertyId id) const { return labels_[id]; }
  PropertyKind Kind(PropertyId id) const { return kinds_[id]; }
  void SetKind(PropertyId id, PropertyKind kind) { kinds_[id] = kind; }

  std::size_t size() const { return labels_.size(); }

 private:
  std::vector<std::string> labels_;
  std::vector<PropertyKind> kinds_;
  std::unordered_map<std::string, PropertyId> index_;
};

}  // namespace podium

#endif  // PODIUM_PROFILE_PROPERTY_H_
