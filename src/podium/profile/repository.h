#ifndef PODIUM_PROFILE_REPOSITORY_H_
#define PODIUM_PROFILE_REPOSITORY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "podium/profile/property.h"
#include "podium/profile/user_profile.h"
#include "podium/util/result.h"

namespace podium {

/// The user population U together with its property vocabulary P: the
/// central data object every other Podium module consumes.
///
/// Users and properties are addressed by dense ids; labels/names remain
/// available for explanations and I/O.
class ProfileRepository {
 public:
  ProfileRepository() = default;

  // Movable but not copyable: repositories are large; copy explicitly via
  // Clone() when a test really needs an independent instance.
  ProfileRepository(const ProfileRepository&) = delete;
  ProfileRepository& operator=(const ProfileRepository&) = delete;
  ProfileRepository(ProfileRepository&&) = default;
  ProfileRepository& operator=(ProfileRepository&&) = default;

  /// Deep copy.
  ProfileRepository Clone() const;

  /// Adds a user with a unique display name; returns the new id.
  /// Duplicate names get an error.
  Result<UserId> AddUser(std::string name);

  /// Id of the user named `name`, or kInvalidUser.
  UserId FindUser(std::string_view name) const;

  std::size_t user_count() const { return users_.size(); }
  const UserProfile& user(UserId id) const { return users_[id]; }
  UserProfile& mutable_user(UserId id) { return users_[id]; }

  PropertyTable& properties() { return properties_; }
  const PropertyTable& properties() const { return properties_; }
  std::size_t property_count() const { return properties_.size(); }

  /// Sets S_u(p) = score. Fails if the score is outside [0, 1] or the ids
  /// are out of range.
  Status SetScore(UserId user, PropertyId property, double score);

  /// Convenience: interns `label` (with `kind` if new) and sets the score.
  Status SetScore(UserId user, std::string_view label, double score,
                  PropertyKind kind = PropertyKind::kScore);

  /// |p| — the number of users whose profile contains `property`.
  std::size_t SupportCount(PropertyId property) const;

  /// Average |P_u| across users (0 for an empty repository).
  double MeanProfileSize() const;

 private:
  PropertyTable properties_;
  std::vector<UserProfile> users_;
  std::unordered_map<std::string, UserId> user_index_;
};

}  // namespace podium

#endif  // PODIUM_PROFILE_REPOSITORY_H_
