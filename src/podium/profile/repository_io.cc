#include "podium/profile/repository_io.h"

#include <cerrno>
#include <cstdlib>

#include "podium/csv/csv.h"
#include "podium/json/parser.h"
#include "podium/json/writer.h"
#include "podium/util/string_util.h"

namespace podium {

namespace {

Result<PropertyKind> ParseKind(std::string_view text) {
  if (text == "boolean") return PropertyKind::kBoolean;
  if (text == "score" || text.empty()) return PropertyKind::kScore;
  return Status::ParseError("unknown property kind: " + std::string(text));
}

Result<double> ParseScoreField(const std::string& field) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (errno == ERANGE || end != field.c_str() + field.size() ||
      field.empty()) {
    return Status::ParseError("invalid score: '" + field + "'");
  }
  return value;
}

}  // namespace

json::Value RepositoryToJson(const ProfileRepository& repository) {
  json::Object root;

  json::Array users;
  users.reserve(repository.user_count());
  const PropertyTable& table = repository.properties();
  for (UserId u = 0; u < repository.user_count(); ++u) {
    const UserProfile& profile = repository.user(u);
    json::Object user;
    user.Set("name", json::Value(profile.name()));
    json::Object props;
    for (const PropertyScore& entry : profile.entries()) {
      props.Set(table.Label(entry.property), json::Value(entry.score));
    }
    user.Set("properties", json::Value(std::move(props)));
    users.emplace_back(std::move(user));
  }
  root.Set("users", json::Value(std::move(users)));

  json::Object kinds;
  for (PropertyId p = 0; p < table.size(); ++p) {
    if (table.Kind(p) == PropertyKind::kBoolean) {
      kinds.Set(table.Label(p), json::Value("boolean"));
    }
  }
  if (!kinds.empty()) root.Set("kinds", json::Value(std::move(kinds)));
  return json::Value(std::move(root));
}

Result<ProfileRepository> RepositoryFromJson(const json::Value& document) {
  if (!document.is_object()) {
    return Status::ParseError("repository document must be a JSON object");
  }
  const json::Object& root = document.AsObject();

  // Kinds first so properties intern with the right kind.
  ProfileRepository repository;
  if (const json::Value* kinds = root.Find("kinds"); kinds != nullptr) {
    if (!kinds->is_object()) {
      return Status::ParseError("'kinds' must be an object");
    }
    for (const auto& [label, kind_value] : kinds->AsObject().entries()) {
      Result<std::string> kind_text = kind_value.GetString();
      if (!kind_text.ok()) return kind_text.status();
      Result<PropertyKind> kind = ParseKind(kind_text.value());
      if (!kind.ok()) return kind.status();
      repository.properties().Intern(label, kind.value());
    }
  }

  const json::Value* users = root.Find("users");
  if (users == nullptr || !users->is_array()) {
    return Status::ParseError("repository document must have a 'users' array");
  }
  for (const json::Value& user_value : users->AsArray()) {
    if (!user_value.is_object()) {
      return Status::ParseError("each user must be a JSON object");
    }
    const json::Object& user = user_value.AsObject();
    const json::Value* name = user.Find("name");
    if (name == nullptr || !name->is_string()) {
      return Status::ParseError("each user must have a string 'name'");
    }
    Result<UserId> id = repository.AddUser(name->AsString());
    if (!id.ok()) return id.status();

    const json::Value* props = user.Find("properties");
    if (props == nullptr) continue;  // a user with an empty profile
    if (!props->is_object()) {
      return Status::ParseError("'properties' must be an object for user " +
                                name->AsString());
    }
    for (const auto& [label, score_value] : props->AsObject().entries()) {
      double score;
      if (score_value.is_bool()) {
        score = score_value.AsBool() ? 1.0 : 0.0;
        repository.properties().Intern(label, PropertyKind::kBoolean);
      } else if (score_value.is_number()) {
        score = score_value.AsNumber();
      } else {
        return Status::ParseError("score of '" + label +
                                  "' must be a number or bool");
      }
      PODIUM_RETURN_IF_ERROR(repository.SetScore(id.value(), label, score));
    }
  }
  return repository;
}

Status SaveRepositoryJson(const ProfileRepository& repository,
                          const std::string& path) {
  json::WriteOptions options;
  options.indent = 2;
  return json::WriteFile(RepositoryToJson(repository), path, options);
}

Result<ProfileRepository> LoadRepositoryJson(const std::string& path) {
  Result<json::Value> document = json::ParseFile(path);
  if (!document.ok()) return document.status();
  return RepositoryFromJson(document.value());
}

Status SaveRepositoryCsv(const ProfileRepository& repository,
                         const std::string& path) {
  csv::Table table;
  table.header = {"user", "property", "score", "kind"};
  const PropertyTable& props = repository.properties();
  for (UserId u = 0; u < repository.user_count(); ++u) {
    const UserProfile& profile = repository.user(u);
    for (const PropertyScore& entry : profile.entries()) {
      table.rows.push_back(
          {profile.name(), props.Label(entry.property),
           util::FormatDouble(entry.score, 10),
           std::string(PropertyKindName(props.Kind(entry.property)))});
    }
  }
  return csv::WriteFile(table, path);
}

Result<ProfileRepository> LoadRepositoryCsv(const std::string& path) {
  Result<csv::Table> table = csv::ParseFile(path);
  if (!table.ok()) return table.status();

  const int user_col = table->ColumnIndex("user");
  const int property_col = table->ColumnIndex("property");
  const int score_col = table->ColumnIndex("score");
  const int kind_col = table->ColumnIndex("kind");  // optional
  if (user_col < 0 || property_col < 0 || score_col < 0) {
    return Status::ParseError(
        "CSV must have 'user', 'property' and 'score' columns");
  }

  ProfileRepository repository;
  for (const csv::Row& row : table->rows) {
    const std::string& name = row[static_cast<std::size_t>(user_col)];
    UserId id = repository.FindUser(name);
    if (id == kInvalidUser) {
      Result<UserId> added = repository.AddUser(name);
      if (!added.ok()) return added.status();
      id = added.value();
    }
    Result<double> score =
        ParseScoreField(row[static_cast<std::size_t>(score_col)]);
    if (!score.ok()) return score.status();
    PropertyKind kind = PropertyKind::kScore;
    if (kind_col >= 0) {
      Result<PropertyKind> parsed =
          ParseKind(row[static_cast<std::size_t>(kind_col)]);
      if (!parsed.ok()) return parsed.status();
      kind = parsed.value();
    }
    PODIUM_RETURN_IF_ERROR(repository.SetScore(
        id, row[static_cast<std::size_t>(property_col)], score.value(), kind));
  }
  return repository;
}

}  // namespace podium
