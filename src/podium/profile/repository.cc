#include "podium/profile/repository.h"

#include "podium/util/string_util.h"

namespace podium {

ProfileRepository ProfileRepository::Clone() const {
  ProfileRepository copy;
  copy.properties_ = properties_;
  copy.users_ = users_;
  copy.user_index_ = user_index_;
  return copy;
}

Result<UserId> ProfileRepository::AddUser(std::string name) {
  if (user_index_.contains(name)) {
    return Status::AlreadyExists("duplicate user name: " + name);
  }
  const auto id = static_cast<UserId>(users_.size());
  user_index_.emplace(name, id);
  users_.emplace_back(std::move(name));
  return id;
}

UserId ProfileRepository::FindUser(std::string_view name) const {
  auto it = user_index_.find(std::string(name));
  return it == user_index_.end() ? kInvalidUser : it->second;
}

Status ProfileRepository::SetScore(UserId user, PropertyId property,
                                   double score) {
  if (user >= users_.size()) {
    return Status::OutOfRange(util::StringPrintf("user id %u out of range",
                                                 user));
  }
  if (property >= properties_.size()) {
    return Status::OutOfRange(
        util::StringPrintf("property id %u out of range", property));
  }
  if (!(score >= 0.0 && score <= 1.0)) {  // also rejects NaN
    return Status::InvalidArgument(util::StringPrintf(
        "score %f for property '%s' outside [0, 1]", score,
        properties_.Label(property).c_str()));
  }
  users_[user].Set(property, score);
  return Status::Ok();
}

Status ProfileRepository::SetScore(UserId user, std::string_view label,
                                   double score, PropertyKind kind) {
  return SetScore(user, properties_.Intern(label, kind), score);
}

std::size_t ProfileRepository::SupportCount(PropertyId property) const {
  std::size_t count = 0;
  for (const UserProfile& profile : users_) {
    if (profile.Has(property)) ++count;
  }
  return count;
}

double ProfileRepository::MeanProfileSize() const {
  if (users_.empty()) return 0.0;
  std::size_t total = 0;
  for (const UserProfile& profile : users_) total += profile.size();
  return static_cast<double>(total) / static_cast<double>(users_.size());
}

}  // namespace podium
