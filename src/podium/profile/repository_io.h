#ifndef PODIUM_PROFILE_REPOSITORY_IO_H_
#define PODIUM_PROFILE_REPOSITORY_IO_H_

#include <string>

#include "podium/json/value.h"
#include "podium/profile/repository.h"
#include "podium/util/result.h"

namespace podium {

/// JSON exchange format (the prototype's input format, Section 7):
///
///   {
///     "users": [
///       {"name": "Alice",
///        "properties": {"livesIn Tokyo": 1, "avgRating Mexican": 0.95}},
///       ...
///     ],
///     "kinds": {"livesIn Tokyo": "boolean"}   // optional; default "score"
///   }
json::Value RepositoryToJson(const ProfileRepository& repository);
Result<ProfileRepository> RepositoryFromJson(const json::Value& document);

Status SaveRepositoryJson(const ProfileRepository& repository,
                          const std::string& path);
Result<ProfileRepository> LoadRepositoryJson(const std::string& path);

/// Long-form CSV exchange format, one observation per row:
///
///   user,property,score,kind
///   Alice,livesIn Tokyo,1,boolean
///   Alice,avgRating Mexican,0.95,score
///
/// The kind column is optional on input (defaults to "score").
Status SaveRepositoryCsv(const ProfileRepository& repository,
                         const std::string& path);
Result<ProfileRepository> LoadRepositoryCsv(const std::string& path);

}  // namespace podium

#endif  // PODIUM_PROFILE_REPOSITORY_IO_H_
