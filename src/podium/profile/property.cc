#include "podium/profile/property.h"

namespace podium {

std::string_view PropertyKindName(PropertyKind kind) {
  switch (kind) {
    case PropertyKind::kBoolean:
      return "boolean";
    case PropertyKind::kScore:
      return "score";
  }
  return "unknown";
}

PropertyId PropertyTable::Intern(std::string_view label, PropertyKind kind) {
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<PropertyId>(labels_.size());
  labels_.emplace_back(label);
  kinds_.push_back(kind);
  index_.emplace(labels_.back(), id);
  return id;
}

PropertyId PropertyTable::Find(std::string_view label) const {
  auto it = index_.find(std::string(label));
  return it == index_.end() ? kInvalidProperty : it->second;
}

}  // namespace podium
