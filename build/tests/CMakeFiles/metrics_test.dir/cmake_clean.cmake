file(REMOVE_RECURSE
  "CMakeFiles/metrics_test.dir/metrics/cd_sim_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/cd_sim_test.cc.o.d"
  "CMakeFiles/metrics_test.dir/metrics/intrinsic_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/intrinsic_test.cc.o.d"
  "CMakeFiles/metrics_test.dir/metrics/opinion_metrics_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/opinion_metrics_test.cc.o.d"
  "CMakeFiles/metrics_test.dir/metrics/procurement_experiment_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/procurement_experiment_test.cc.o.d"
  "metrics_test"
  "metrics_test.pdb"
  "metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
