
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/configuration_test.cc" "tests/CMakeFiles/core_test.dir/core/configuration_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/configuration_test.cc.o.d"
  "/root/repo/tests/core/customization_test.cc" "tests/CMakeFiles/core_test.dir/core/customization_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/customization_test.cc.o.d"
  "/root/repo/tests/core/exhaustive_test.cc" "tests/CMakeFiles/core_test.dir/core/exhaustive_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/exhaustive_test.cc.o.d"
  "/root/repo/tests/core/explanation_test.cc" "tests/CMakeFiles/core_test.dir/core/explanation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/explanation_test.cc.o.d"
  "/root/repo/tests/core/greedy_test.cc" "tests/CMakeFiles/core_test.dir/core/greedy_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/greedy_test.cc.o.d"
  "/root/repo/tests/core/html_report_test.cc" "tests/CMakeFiles/core_test.dir/core/html_report_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/html_report_test.cc.o.d"
  "/root/repo/tests/core/instance_test.cc" "tests/CMakeFiles/core_test.dir/core/instance_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/instance_test.cc.o.d"
  "/root/repo/tests/core/randomization_test.cc" "tests/CMakeFiles/core_test.dir/core/randomization_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/randomization_test.cc.o.d"
  "/root/repo/tests/core/refinement_test.cc" "tests/CMakeFiles/core_test.dir/core/refinement_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/refinement_test.cc.o.d"
  "/root/repo/tests/core/running_example_test.cc" "tests/CMakeFiles/core_test.dir/core/running_example_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/running_example_test.cc.o.d"
  "/root/repo/tests/core/threshold_test.cc" "tests/CMakeFiles/core_test.dir/core/threshold_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/threshold_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/podium.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
