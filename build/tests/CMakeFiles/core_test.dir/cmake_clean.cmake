file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/configuration_test.cc.o"
  "CMakeFiles/core_test.dir/core/configuration_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/customization_test.cc.o"
  "CMakeFiles/core_test.dir/core/customization_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/exhaustive_test.cc.o"
  "CMakeFiles/core_test.dir/core/exhaustive_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/explanation_test.cc.o"
  "CMakeFiles/core_test.dir/core/explanation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/greedy_test.cc.o"
  "CMakeFiles/core_test.dir/core/greedy_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/html_report_test.cc.o"
  "CMakeFiles/core_test.dir/core/html_report_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/instance_test.cc.o"
  "CMakeFiles/core_test.dir/core/instance_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/randomization_test.cc.o"
  "CMakeFiles/core_test.dir/core/randomization_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/refinement_test.cc.o"
  "CMakeFiles/core_test.dir/core/refinement_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/running_example_test.cc.o"
  "CMakeFiles/core_test.dir/core/running_example_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/threshold_test.cc.o"
  "CMakeFiles/core_test.dir/core/threshold_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
