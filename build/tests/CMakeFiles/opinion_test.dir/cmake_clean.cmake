file(REMOVE_RECURSE
  "CMakeFiles/opinion_test.dir/opinion/opinion_store_test.cc.o"
  "CMakeFiles/opinion_test.dir/opinion/opinion_store_test.cc.o.d"
  "opinion_test"
  "opinion_test.pdb"
  "opinion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opinion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
