# Empty dependencies file for opinion_test.
# This may be replaced when dependencies are built.
