# Empty compiler generated dependencies file for bucketing_test.
# This may be replaced when dependencies are built.
