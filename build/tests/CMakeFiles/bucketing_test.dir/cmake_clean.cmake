file(REMOVE_RECURSE
  "CMakeFiles/bucketing_test.dir/bucketing/bucket_test.cc.o"
  "CMakeFiles/bucketing_test.dir/bucketing/bucket_test.cc.o.d"
  "CMakeFiles/bucketing_test.dir/bucketing/bucketizer_test.cc.o"
  "CMakeFiles/bucketing_test.dir/bucketing/bucketizer_test.cc.o.d"
  "bucketing_test"
  "bucketing_test.pdb"
  "bucketing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucketing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
