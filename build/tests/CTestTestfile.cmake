# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build/tests/bucketing_test[1]_include.cmake")
include("/root/repo/build/tests/groups_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/opinion_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/ingest_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/bench_common_test[1]_include.cmake")
