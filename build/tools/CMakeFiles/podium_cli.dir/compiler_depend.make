# Empty compiler generated dependencies file for podium_cli.
# This may be replaced when dependencies are built.
