file(REMOVE_RECURSE
  "CMakeFiles/podium_cli.dir/podium_cli.cc.o"
  "CMakeFiles/podium_cli.dir/podium_cli.cc.o.d"
  "podium"
  "podium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/podium_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
