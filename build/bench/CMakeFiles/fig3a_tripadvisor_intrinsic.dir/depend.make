# Empty dependencies file for fig3a_tripadvisor_intrinsic.
# This may be replaced when dependencies are built.
