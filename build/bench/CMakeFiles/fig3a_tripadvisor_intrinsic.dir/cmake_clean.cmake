file(REMOVE_RECURSE
  "CMakeFiles/fig3a_tripadvisor_intrinsic.dir/fig3a_tripadvisor_intrinsic.cc.o"
  "CMakeFiles/fig3a_tripadvisor_intrinsic.dir/fig3a_tripadvisor_intrinsic.cc.o.d"
  "fig3a_tripadvisor_intrinsic"
  "fig3a_tripadvisor_intrinsic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_tripadvisor_intrinsic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
