file(REMOVE_RECURSE
  "CMakeFiles/fig3d_yelp_opinion.dir/fig3d_yelp_opinion.cc.o"
  "CMakeFiles/fig3d_yelp_opinion.dir/fig3d_yelp_opinion.cc.o.d"
  "fig3d_yelp_opinion"
  "fig3d_yelp_opinion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_yelp_opinion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
