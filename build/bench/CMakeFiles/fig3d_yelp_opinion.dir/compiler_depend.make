# Empty compiler generated dependencies file for fig3d_yelp_opinion.
# This may be replaced when dependencies are built.
