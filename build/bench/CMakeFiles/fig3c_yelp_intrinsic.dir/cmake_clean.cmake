file(REMOVE_RECURSE
  "CMakeFiles/fig3c_yelp_intrinsic.dir/fig3c_yelp_intrinsic.cc.o"
  "CMakeFiles/fig3c_yelp_intrinsic.dir/fig3c_yelp_intrinsic.cc.o.d"
  "fig3c_yelp_intrinsic"
  "fig3c_yelp_intrinsic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_yelp_intrinsic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
