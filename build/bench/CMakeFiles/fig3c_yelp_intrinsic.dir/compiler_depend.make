# Empty compiler generated dependencies file for fig3c_yelp_intrinsic.
# This may be replaced when dependencies are built.
