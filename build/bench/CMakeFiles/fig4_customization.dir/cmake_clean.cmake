file(REMOVE_RECURSE
  "CMakeFiles/fig4_customization.dir/fig4_customization.cc.o"
  "CMakeFiles/fig4_customization.dir/fig4_customization.cc.o.d"
  "fig4_customization"
  "fig4_customization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_customization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
