# Empty dependencies file for fig4_customization.
# This may be replaced when dependencies are built.
