# Empty dependencies file for fig3b_tripadvisor_opinion.
# This may be replaced when dependencies are built.
