file(REMOVE_RECURSE
  "CMakeFiles/fig3b_tripadvisor_opinion.dir/fig3b_tripadvisor_opinion.cc.o"
  "CMakeFiles/fig3b_tripadvisor_opinion.dir/fig3b_tripadvisor_opinion.cc.o.d"
  "fig3b_tripadvisor_opinion"
  "fig3b_tripadvisor_opinion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_tripadvisor_opinion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
