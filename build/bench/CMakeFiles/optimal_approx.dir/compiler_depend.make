# Empty compiler generated dependencies file for optimal_approx.
# This may be replaced when dependencies are built.
