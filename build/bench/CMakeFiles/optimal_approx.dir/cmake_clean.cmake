file(REMOVE_RECURSE
  "CMakeFiles/optimal_approx.dir/optimal_approx.cc.o"
  "CMakeFiles/optimal_approx.dir/optimal_approx.cc.o.d"
  "optimal_approx"
  "optimal_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
