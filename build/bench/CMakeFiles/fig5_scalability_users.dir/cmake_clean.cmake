file(REMOVE_RECURSE
  "CMakeFiles/fig5_scalability_users.dir/fig5_scalability_users.cc.o"
  "CMakeFiles/fig5_scalability_users.dir/fig5_scalability_users.cc.o.d"
  "fig5_scalability_users"
  "fig5_scalability_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scalability_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
