# Empty compiler generated dependencies file for fig5_scalability_users.
# This may be replaced when dependencies are built.
