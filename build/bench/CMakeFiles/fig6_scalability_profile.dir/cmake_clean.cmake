file(REMOVE_RECURSE
  "CMakeFiles/fig6_scalability_profile.dir/fig6_scalability_profile.cc.o"
  "CMakeFiles/fig6_scalability_profile.dir/fig6_scalability_profile.cc.o.d"
  "fig6_scalability_profile"
  "fig6_scalability_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scalability_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
