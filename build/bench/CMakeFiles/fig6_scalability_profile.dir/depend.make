# Empty dependencies file for fig6_scalability_profile.
# This may be replaced when dependencies are built.
