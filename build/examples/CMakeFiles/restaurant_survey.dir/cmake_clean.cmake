file(REMOVE_RECURSE
  "CMakeFiles/restaurant_survey.dir/restaurant_survey.cc.o"
  "CMakeFiles/restaurant_survey.dir/restaurant_survey.cc.o.d"
  "restaurant_survey"
  "restaurant_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restaurant_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
