# Empty compiler generated dependencies file for restaurant_survey.
# This may be replaced when dependencies are built.
