file(REMOVE_RECURSE
  "CMakeFiles/travel_tips.dir/travel_tips.cc.o"
  "CMakeFiles/travel_tips.dir/travel_tips.cc.o.d"
  "travel_tips"
  "travel_tips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_tips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
