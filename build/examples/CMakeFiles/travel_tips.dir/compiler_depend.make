# Empty compiler generated dependencies file for travel_tips.
# This may be replaced when dependencies are built.
