# Empty compiler generated dependencies file for panel_planner.
# This may be replaced when dependencies are built.
