file(REMOVE_RECURSE
  "CMakeFiles/panel_planner.dir/panel_planner.cc.o"
  "CMakeFiles/panel_planner.dir/panel_planner.cc.o.d"
  "panel_planner"
  "panel_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/panel_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
