# Empty dependencies file for profile_io.
# This may be replaced when dependencies are built.
