file(REMOVE_RECURSE
  "CMakeFiles/profile_io.dir/profile_io.cc.o"
  "CMakeFiles/profile_io.dir/profile_io.cc.o.d"
  "profile_io"
  "profile_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
