# Empty compiler generated dependencies file for podium.
# This may be replaced when dependencies are built.
