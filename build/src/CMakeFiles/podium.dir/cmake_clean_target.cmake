file(REMOVE_RECURSE
  "libpodium.a"
)
