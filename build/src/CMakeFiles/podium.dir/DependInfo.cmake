
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/podium/baselines/distance_selector.cc" "src/CMakeFiles/podium.dir/podium/baselines/distance_selector.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/baselines/distance_selector.cc.o.d"
  "/root/repo/src/podium/baselines/kmeans_selector.cc" "src/CMakeFiles/podium.dir/podium/baselines/kmeans_selector.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/baselines/kmeans_selector.cc.o.d"
  "/root/repo/src/podium/baselines/mmr_selector.cc" "src/CMakeFiles/podium.dir/podium/baselines/mmr_selector.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/baselines/mmr_selector.cc.o.d"
  "/root/repo/src/podium/baselines/random_selector.cc" "src/CMakeFiles/podium.dir/podium/baselines/random_selector.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/baselines/random_selector.cc.o.d"
  "/root/repo/src/podium/baselines/stratified_selector.cc" "src/CMakeFiles/podium.dir/podium/baselines/stratified_selector.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/baselines/stratified_selector.cc.o.d"
  "/root/repo/src/podium/baselines/tmodel_selector.cc" "src/CMakeFiles/podium.dir/podium/baselines/tmodel_selector.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/baselines/tmodel_selector.cc.o.d"
  "/root/repo/src/podium/bucketing/bucket.cc" "src/CMakeFiles/podium.dir/podium/bucketing/bucket.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/bucketing/bucket.cc.o.d"
  "/root/repo/src/podium/bucketing/bucketizer.cc" "src/CMakeFiles/podium.dir/podium/bucketing/bucketizer.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/bucketing/bucketizer.cc.o.d"
  "/root/repo/src/podium/bucketing/jenks.cc" "src/CMakeFiles/podium.dir/podium/bucketing/jenks.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/bucketing/jenks.cc.o.d"
  "/root/repo/src/podium/bucketing/kde.cc" "src/CMakeFiles/podium.dir/podium/bucketing/kde.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/bucketing/kde.cc.o.d"
  "/root/repo/src/podium/bucketing/kmeans1d.cc" "src/CMakeFiles/podium.dir/podium/bucketing/kmeans1d.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/bucketing/kmeans1d.cc.o.d"
  "/root/repo/src/podium/core/configuration.cc" "src/CMakeFiles/podium.dir/podium/core/configuration.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/configuration.cc.o.d"
  "/root/repo/src/podium/core/customization.cc" "src/CMakeFiles/podium.dir/podium/core/customization.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/customization.cc.o.d"
  "/root/repo/src/podium/core/exhaustive.cc" "src/CMakeFiles/podium.dir/podium/core/exhaustive.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/exhaustive.cc.o.d"
  "/root/repo/src/podium/core/explanation.cc" "src/CMakeFiles/podium.dir/podium/core/explanation.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/explanation.cc.o.d"
  "/root/repo/src/podium/core/greedy.cc" "src/CMakeFiles/podium.dir/podium/core/greedy.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/greedy.cc.o.d"
  "/root/repo/src/podium/core/html_report.cc" "src/CMakeFiles/podium.dir/podium/core/html_report.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/html_report.cc.o.d"
  "/root/repo/src/podium/core/instance.cc" "src/CMakeFiles/podium.dir/podium/core/instance.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/instance.cc.o.d"
  "/root/repo/src/podium/core/refinement.cc" "src/CMakeFiles/podium.dir/podium/core/refinement.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/refinement.cc.o.d"
  "/root/repo/src/podium/core/score.cc" "src/CMakeFiles/podium.dir/podium/core/score.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/score.cc.o.d"
  "/root/repo/src/podium/core/threshold.cc" "src/CMakeFiles/podium.dir/podium/core/threshold.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/core/threshold.cc.o.d"
  "/root/repo/src/podium/csv/csv.cc" "src/CMakeFiles/podium.dir/podium/csv/csv.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/csv/csv.cc.o.d"
  "/root/repo/src/podium/datagen/config.cc" "src/CMakeFiles/podium.dir/podium/datagen/config.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/datagen/config.cc.o.d"
  "/root/repo/src/podium/datagen/generator.cc" "src/CMakeFiles/podium.dir/podium/datagen/generator.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/datagen/generator.cc.o.d"
  "/root/repo/src/podium/datagen/persona.cc" "src/CMakeFiles/podium.dir/podium/datagen/persona.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/datagen/persona.cc.o.d"
  "/root/repo/src/podium/datagen/vocabularies.cc" "src/CMakeFiles/podium.dir/podium/datagen/vocabularies.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/datagen/vocabularies.cc.o.d"
  "/root/repo/src/podium/groups/complex_group.cc" "src/CMakeFiles/podium.dir/podium/groups/complex_group.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/groups/complex_group.cc.o.d"
  "/root/repo/src/podium/groups/coverage.cc" "src/CMakeFiles/podium.dir/podium/groups/coverage.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/groups/coverage.cc.o.d"
  "/root/repo/src/podium/groups/group_index.cc" "src/CMakeFiles/podium.dir/podium/groups/group_index.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/groups/group_index.cc.o.d"
  "/root/repo/src/podium/groups/weight.cc" "src/CMakeFiles/podium.dir/podium/groups/weight.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/groups/weight.cc.o.d"
  "/root/repo/src/podium/ingest/yelp.cc" "src/CMakeFiles/podium.dir/podium/ingest/yelp.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/ingest/yelp.cc.o.d"
  "/root/repo/src/podium/json/parser.cc" "src/CMakeFiles/podium.dir/podium/json/parser.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/json/parser.cc.o.d"
  "/root/repo/src/podium/json/value.cc" "src/CMakeFiles/podium.dir/podium/json/value.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/json/value.cc.o.d"
  "/root/repo/src/podium/json/writer.cc" "src/CMakeFiles/podium.dir/podium/json/writer.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/json/writer.cc.o.d"
  "/root/repo/src/podium/metrics/cd_sim.cc" "src/CMakeFiles/podium.dir/podium/metrics/cd_sim.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/metrics/cd_sim.cc.o.d"
  "/root/repo/src/podium/metrics/intrinsic.cc" "src/CMakeFiles/podium.dir/podium/metrics/intrinsic.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/metrics/intrinsic.cc.o.d"
  "/root/repo/src/podium/metrics/opinion_metrics.cc" "src/CMakeFiles/podium.dir/podium/metrics/opinion_metrics.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/metrics/opinion_metrics.cc.o.d"
  "/root/repo/src/podium/metrics/procurement_experiment.cc" "src/CMakeFiles/podium.dir/podium/metrics/procurement_experiment.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/metrics/procurement_experiment.cc.o.d"
  "/root/repo/src/podium/opinion/opinion_store.cc" "src/CMakeFiles/podium.dir/podium/opinion/opinion_store.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/opinion/opinion_store.cc.o.d"
  "/root/repo/src/podium/profile/property.cc" "src/CMakeFiles/podium.dir/podium/profile/property.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/profile/property.cc.o.d"
  "/root/repo/src/podium/profile/repository.cc" "src/CMakeFiles/podium.dir/podium/profile/repository.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/profile/repository.cc.o.d"
  "/root/repo/src/podium/profile/repository_io.cc" "src/CMakeFiles/podium.dir/podium/profile/repository_io.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/profile/repository_io.cc.o.d"
  "/root/repo/src/podium/profile/user_profile.cc" "src/CMakeFiles/podium.dir/podium/profile/user_profile.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/profile/user_profile.cc.o.d"
  "/root/repo/src/podium/taxonomy/inference.cc" "src/CMakeFiles/podium.dir/podium/taxonomy/inference.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/taxonomy/inference.cc.o.d"
  "/root/repo/src/podium/taxonomy/taxonomy.cc" "src/CMakeFiles/podium.dir/podium/taxonomy/taxonomy.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/taxonomy/taxonomy.cc.o.d"
  "/root/repo/src/podium/util/math_util.cc" "src/CMakeFiles/podium.dir/podium/util/math_util.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/util/math_util.cc.o.d"
  "/root/repo/src/podium/util/rng.cc" "src/CMakeFiles/podium.dir/podium/util/rng.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/util/rng.cc.o.d"
  "/root/repo/src/podium/util/status.cc" "src/CMakeFiles/podium.dir/podium/util/status.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/util/status.cc.o.d"
  "/root/repo/src/podium/util/string_util.cc" "src/CMakeFiles/podium.dir/podium/util/string_util.cc.o" "gcc" "src/CMakeFiles/podium.dir/podium/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
