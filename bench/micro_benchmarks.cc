// google-benchmark microbenchmarks for the hot paths: greedy selection,
// group-index construction, the bucketizers, JSON parsing, Jaccard
// distance, and CD-sim.
//
// Custom main: all google-benchmark flags work as usual, plus
//   --bench-out=PATH       write the run as a canonical BENCH_*.json perf
//                          artifact (bench/common/bench_report.h) with
//                          median/p95 per benchmark
//   --bench-repeats=N      repetitions feeding those percentiles (default
//                          3; implies --benchmark_repetitions=N)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bench/common/bench_report.h"
#include "podium/obs/log.h"
#include "podium/util/parse.h"
#include "podium/util/string_util.h"

#include "podium/baselines/distance_selector.h"
#include "podium/bucketing/bucketizer.h"
#include "podium/core/greedy.h"
#include "podium/core/instance.h"
#include "podium/core/kernels.h"
#include "podium/datagen/generator.h"
#include "podium/json/parser.h"
#include "podium/json/writer.h"
#include "podium/metrics/cd_sim.h"
#include "podium/profile/repository_io.h"
#include "podium/telemetry/export.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/rng.h"
#include "podium/util/thread_pool.h"

namespace podium {
namespace {

const datagen::Dataset& SharedDataset() {
  static const datagen::Dataset* dataset = [] {
    datagen::DatasetConfig config;
    config.num_users = 2000;
    config.num_restaurants = 4000;
    config.leaf_categories = 60;
    config.holdout_destinations = 0;
    config.seed = 3;
    // Leaked on purpose: shared across benchmarks for the process
    // lifetime.  podium-lint: allow(raw-new)
    return new datagen::Dataset(
        std::move(datagen::GenerateDataset(config)).value());
  }();
  return *dataset;
}

const DiversificationInstance& SharedInstance() {
  static const DiversificationInstance* instance = [] {
    InstanceOptions options;
    options.budget = 8;
    // podium-lint: allow(raw-new) -- same leaked-singleton pattern.
    return new DiversificationInstance(
        DiversificationInstance::Build(SharedDataset().repository, options)
            .value());
  }();
  return *instance;
}

void BM_GroupIndexBuild(benchmark::State& state) {
  const ProfileRepository& repo = SharedDataset().repository;
  GroupingOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupIndex::Build(repo, options));
  }
}
BENCHMARK(BM_GroupIndexBuild)->Unit(benchmark::kMillisecond);

// Thread scaling of the parallel instance build. The arg is the pool
// size; results are byte-identical across rows (the determinism
// contract), only the wall clock moves.
void BM_GroupIndexBuildThreads(benchmark::State& state) {
  const ProfileRepository& repo = SharedDataset().repository;
  GroupingOptions options;
  util::ThreadPool::SetGlobalThreadCount(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupIndex::Build(repo, options));
  }
  util::ThreadPool::SetGlobalThreadCount(0);
}
BENCHMARK(BM_GroupIndexBuildThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Thread scaling of the greedy Line-2 initialization (marginal gains +
// heap). A budget of 1 makes the selection loop negligible, so the run is
// dominated by setup + init.
void BM_GreedyInitThreads(benchmark::State& state) {
  const DiversificationInstance& instance = SharedInstance();
  GreedyOptions options;
  options.mode = GreedyMode::kLazyHeap;
  GreedySelector selector(options);
  util::ThreadPool::SetGlobalThreadCount(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(instance, 1));
  }
  util::ThreadPool::SetGlobalThreadCount(0);
}
BENCHMARK(BM_GreedyInitThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The retirement inner loop's memory layout: walk every group's member
// list and count alive members, via nested per-group vectors with a
// per-user byte test (arg 0, the pre-CSR layout) vs the CSR spans fed to
// the dispatched counting kernel (arg 1, the layout + kernel the greedy
// actually runs). CSR reads one contiguous values array instead of
// chasing per-group vector headers; the kernel gathers 8 flags per step
// on AVX2 hardware.
void BM_CsrVsNestedRetirement(benchmark::State& state) {
  const GroupIndex& index = SharedInstance().groups();
  std::vector<std::vector<UserId>> nested(index.group_count());
  for (GroupId g = 0; g < index.group_count(); ++g) {
    const auto members = index.members(g);
    nested[g].assign(members.begin(), members.end());
  }
  // The kernel's gather overreads up to kFlagPadding bytes past the
  // largest id (vectors are not arena-backed).
  std::vector<std::uint8_t> in_pool(
      SharedDataset().repository.user_count() + kernels::kFlagPadding, 1);
  const bool use_csr = state.range(0) == 1;
  for (auto _ : state) {
    std::size_t alive = 0;
    if (use_csr) {
      for (GroupId g = 0; g < index.group_count(); ++g) {
        alive += kernels::CountAlive(index.members(g), in_pool.data());
      }
    } else {
      for (GroupId g = 0; g < index.group_count(); ++g) {
        for (UserId u : nested[g]) alive += in_pool[u];
      }
    }
    benchmark::DoNotOptimize(alive);
  }
  state.SetLabel(use_csr ? "csr" : "nested");
}
BENCHMARK(BM_CsrVsNestedRetirement)->Arg(0)->Arg(1);

// Synthetic span for the kernel benchmarks: `length` ids ascending over a
// universe ~8x the span (the density of a mid-size group's member list),
// flags half-retired in a fixed pattern.
struct KernelFixture {
  std::vector<std::uint32_t> ids;
  std::vector<std::uint8_t> flags;
  std::vector<double> gains;
  std::vector<double> w0;
  std::vector<double> w1;

  explicit KernelFixture(std::size_t length) {
    const std::size_t universe = length * 8 + 16;
    util::Rng rng(17);
    ids.resize(length);
    for (std::uint32_t& id : ids) {
      id = static_cast<std::uint32_t>(rng.NextBounded(universe));
    }
    std::sort(ids.begin(), ids.end());
    flags.assign(universe + kernels::kFlagPadding, 0);
    for (std::size_t u = 0; u < universe; ++u) flags[u] = (u % 2 == 0) ? 1 : 0;
    gains.assign(universe, 100.0);
    w0.assign(universe, 2.0);
    w1.assign(universe, 3.0);
  }
};

// Retirement counting over a member span in isolation (the alive tally
// RetireSpan fuses into its update, and the CSR row of
// BM_CsrVsNestedRetirement). Arg 0 is the span length, arg 1 pins the
// kernel variant (0 scalar, 1 AVX2 — demoted to scalar when the CPU
// lacks it, so the rows just coincide there).
void BM_RetireKernel(benchmark::State& state) {
  const KernelFixture fixture(static_cast<std::size_t>(state.range(0)));
  const kernels::Variant variant = state.range(1) == 0
                                       ? kernels::Variant::kScalar
                                       : kernels::Variant::kAvx2;
  kernels::ForceVariant(variant);
  const kernels::Variant ran = kernels::ActiveVariant();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::CountAlive(fixture.ids, fixture.flags.data()));
  }
  kernels::ForceVariant(std::nullopt);
  state.SetLabel(std::string(kernels::VariantName(ran)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RetireKernel)->ArgsProduct({{64, 512, 4096}, {0, 1}});

// The marginal-gain accumulation in isolation: fold two tier-split weight
// arrays over a user's group span. Same args as BM_RetireKernel.
void BM_MarginalGainKernel(benchmark::State& state) {
  const KernelFixture fixture(static_cast<std::size_t>(state.range(0)));
  const kernels::Variant variant = state.range(1) == 0
                                       ? kernels::Variant::kScalar
                                       : kernels::Variant::kAvx2;
  kernels::ForceVariant(variant);
  const kernels::Variant ran = kernels::ActiveVariant();
  for (auto _ : state) {
    double gain0 = 0.0;
    double gain1 = 0.0;
    kernels::AccumulateTieredGains(fixture.ids, fixture.w0.data(),
                                   fixture.w1.data(),
                                   /*allow_reassociation=*/true, &gain0,
                                   &gain1);
    benchmark::DoNotOptimize(gain0);
    benchmark::DoNotOptimize(gain1);
  }
  kernels::ForceVariant(std::nullopt);
  state.SetLabel(std::string(kernels::VariantName(ran)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MarginalGainKernel)->ArgsProduct({{64, 512, 4096}, {0, 1}});

void BM_GreedySelect(benchmark::State& state) {
  const DiversificationInstance& instance = SharedInstance();
  GreedyOptions options;
  options.mode = state.range(0) == 0 ? GreedyMode::kPlainScan
                                     : GreedyMode::kLazyHeap;
  GreedySelector selector(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        selector.Select(instance, static_cast<std::size_t>(state.range(1))));
  }
}
BENCHMARK(BM_GreedySelect)
    ->ArgsProduct({{0, 1}, {8, 32}})
    ->Unit(benchmark::kMillisecond);

// Telemetry overhead on the greedy hot path: arg 0 runs with telemetry
// disabled (the library default — one relaxed atomic load per
// instrumented site), arg 1 with phase spans + counters + tracing live.
// The disabled row must stay within noise of BM_GreedySelect.
void BM_GreedySelectTelemetry(benchmark::State& state) {
  const DiversificationInstance& instance = SharedInstance();
  GreedyOptions options;
  options.mode = GreedyMode::kLazyHeap;
  GreedySelector selector(options);
  telemetry::SetEnabled(state.range(0) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(instance, 8));
  }
  telemetry::SetEnabled(false);
  telemetry::ResetAllTelemetry();
  state.SetLabel(state.range(0) == 1 ? "telemetry:on" : "telemetry:off");
}
BENCHMARK(BM_GreedySelectTelemetry)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_DistanceSelect(benchmark::State& state) {
  const DiversificationInstance& instance = SharedInstance();
  baselines::DistanceSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(instance, 8));
  }
}
BENCHMARK(BM_DistanceSelect)->Unit(benchmark::kMillisecond);

void BM_Bucketizer(benchmark::State& state) {
  static const std::vector<std::string> kMethods = {
      "equal-width", "quantile", "kmeans-1d", "jenks", "kde"};
  const std::string& method = kMethods[static_cast<std::size_t>(
      state.range(0))];
  auto bucketizer = bucketing::MakeBucketizer(method).value();
  util::Rng rng(5);
  std::vector<double> values(10000);
  for (double& v : values) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucketizer->Split(values, 3));
  }
  state.SetLabel(method);
}
BENCHMARK(BM_Bucketizer)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_JsonParseRepository(benchmark::State& state) {
  // Serialize a repository slice once, then benchmark parsing it back.
  datagen::DatasetConfig config;
  config.num_users = 200;
  config.num_restaurants = 400;
  config.leaf_categories = 30;
  config.holdout_destinations = 0;
  config.seed = 9;
  const datagen::Dataset data =
      std::move(datagen::GenerateDataset(config)).value();
  const std::string text = json::Write(RepositoryToJson(data.repository));
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::Parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParseRepository)->Unit(benchmark::kMillisecond);

void BM_JaccardDistance(benchmark::State& state) {
  const ProfileRepository& repo = SharedDataset().repository;
  util::Rng rng(11);
  for (auto _ : state) {
    const UserId a = static_cast<UserId>(rng.NextBounded(repo.user_count()));
    const UserId b = static_cast<UserId>(rng.NextBounded(repo.user_count()));
    benchmark::DoNotOptimize(baselines::JaccardDistance(repo, a, b));
  }
}
BENCHMARK(BM_JaccardDistance);

void BM_CdSim(benchmark::State& state) {
  util::Rng rng(13);
  std::vector<double> f_all(64);
  std::vector<double> f_subset(64);
  for (std::size_t i = 0; i < f_all.size(); ++i) {
    f_all[i] = rng.NextDouble();
    f_subset[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::CdSim(f_subset, f_all));
  }
}
BENCHMARK(BM_CdSim);

/// Console output as usual, plus per-repetition real times collected for
/// the BENCH_micro.json artifact (aggregate rows are skipped — medians
/// are recomputed from the raw samples).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Series {
    std::string unit;
    std::vector<double> samples;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Series& series = series_[run.benchmark_name()];
      series.unit = benchmark::GetTimeUnitString(run.time_unit);
      series.samples.push_back(run.GetAdjustedRealTime());
    }
  }

  const std::map<std::string, Series>& series() const { return series_; }

 private:
  std::map<std::string, Series> series_;
};

}  // namespace
}  // namespace podium

int main(int argc, char** argv) {
  std::string bench_out;
  std::size_t repeats = 3;
  // Strip our flags before handing argv to google-benchmark (which
  // rejects flags it does not know).
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (podium::util::StartsWith(arg, "--bench-out=")) {
      bench_out = arg.substr(12);
    } else if (podium::util::StartsWith(arg, "--bench-repeats=")) {
      const podium::Result<std::size_t> parsed =
          podium::util::ParseSize(arg.substr(16));
      if (!parsed.ok() || parsed.value() == 0) {
        podium::obs::LogError("--bench-repeats must be a positive integer")
            .Str("value", std::string(arg.substr(16)));
        return 2;
      }
      repeats = parsed.value();
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string repetitions_flag;
  if (!bench_out.empty()) {
    repetitions_flag =
        podium::util::StringPrintf("--benchmark_repetitions=%zu", repeats);
    args.push_back(repetitions_flag.data());
  }

  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  podium::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (bench_out.empty()) return 0;
  podium::bench::BenchReport report = podium::bench::NewBenchReport("micro");
  report.repeats = repeats;
  for (const auto& [name, series] : reporter.series()) {
    report.metrics[name] = podium::bench::MakeBenchMetric(
        series.unit, "lower", series.samples);
  }
  const podium::Status written =
      podium::bench::WriteBenchReport(report, bench_out);
  if (!written.ok()) {
    podium::obs::LogError("cannot write bench report")
        .Str("path", bench_out)
        .Str("error", written.ToString());
    return 2;
  }
  std::printf("micro_benchmarks: wrote %s\n", bench_out.c_str());
  return 0;
}
