// google-benchmark microbenchmarks for the hot paths: greedy selection,
// group-index construction, the bucketizers, JSON parsing, Jaccard
// distance, and CD-sim.

#include <benchmark/benchmark.h>

#include "podium/baselines/distance_selector.h"
#include "podium/bucketing/bucketizer.h"
#include "podium/core/greedy.h"
#include "podium/core/instance.h"
#include "podium/datagen/generator.h"
#include "podium/json/parser.h"
#include "podium/json/writer.h"
#include "podium/metrics/cd_sim.h"
#include "podium/profile/repository_io.h"
#include "podium/telemetry/export.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/rng.h"

namespace podium {
namespace {

const datagen::Dataset& SharedDataset() {
  static const datagen::Dataset* dataset = [] {
    datagen::DatasetConfig config;
    config.num_users = 2000;
    config.num_restaurants = 4000;
    config.leaf_categories = 60;
    config.holdout_destinations = 0;
    config.seed = 3;
    return new datagen::Dataset(
        std::move(datagen::GenerateDataset(config)).value());
  }();
  return *dataset;
}

const DiversificationInstance& SharedInstance() {
  static const DiversificationInstance* instance = [] {
    InstanceOptions options;
    options.budget = 8;
    return new DiversificationInstance(
        DiversificationInstance::Build(SharedDataset().repository, options)
            .value());
  }();
  return *instance;
}

void BM_GroupIndexBuild(benchmark::State& state) {
  const ProfileRepository& repo = SharedDataset().repository;
  GroupingOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupIndex::Build(repo, options));
  }
}
BENCHMARK(BM_GroupIndexBuild)->Unit(benchmark::kMillisecond);

void BM_GreedySelect(benchmark::State& state) {
  const DiversificationInstance& instance = SharedInstance();
  GreedyOptions options;
  options.mode = state.range(0) == 0 ? GreedyMode::kPlainScan
                                     : GreedyMode::kLazyHeap;
  GreedySelector selector(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        selector.Select(instance, static_cast<std::size_t>(state.range(1))));
  }
}
BENCHMARK(BM_GreedySelect)
    ->ArgsProduct({{0, 1}, {8, 32}})
    ->Unit(benchmark::kMillisecond);

// Telemetry overhead on the greedy hot path: arg 0 runs with telemetry
// disabled (the library default — one relaxed atomic load per
// instrumented site), arg 1 with phase spans + counters + tracing live.
// The disabled row must stay within noise of BM_GreedySelect.
void BM_GreedySelectTelemetry(benchmark::State& state) {
  const DiversificationInstance& instance = SharedInstance();
  GreedyOptions options;
  options.mode = GreedyMode::kLazyHeap;
  GreedySelector selector(options);
  telemetry::SetEnabled(state.range(0) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(instance, 8));
  }
  telemetry::SetEnabled(false);
  telemetry::ResetAllTelemetry();
  state.SetLabel(state.range(0) == 1 ? "telemetry:on" : "telemetry:off");
}
BENCHMARK(BM_GreedySelectTelemetry)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_DistanceSelect(benchmark::State& state) {
  const DiversificationInstance& instance = SharedInstance();
  baselines::DistanceSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(instance, 8));
  }
}
BENCHMARK(BM_DistanceSelect)->Unit(benchmark::kMillisecond);

void BM_Bucketizer(benchmark::State& state) {
  static const std::vector<std::string> kMethods = {
      "equal-width", "quantile", "kmeans-1d", "jenks", "kde"};
  const std::string& method = kMethods[static_cast<std::size_t>(
      state.range(0))];
  auto bucketizer = bucketing::MakeBucketizer(method).value();
  util::Rng rng(5);
  std::vector<double> values(10000);
  for (double& v : values) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucketizer->Split(values, 3));
  }
  state.SetLabel(method);
}
BENCHMARK(BM_Bucketizer)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_JsonParseRepository(benchmark::State& state) {
  // Serialize a repository slice once, then benchmark parsing it back.
  datagen::DatasetConfig config;
  config.num_users = 200;
  config.num_restaurants = 400;
  config.leaf_categories = 30;
  config.holdout_destinations = 0;
  config.seed = 9;
  const datagen::Dataset data =
      std::move(datagen::GenerateDataset(config)).value();
  const std::string text = json::Write(RepositoryToJson(data.repository));
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::Parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParseRepository)->Unit(benchmark::kMillisecond);

void BM_JaccardDistance(benchmark::State& state) {
  const ProfileRepository& repo = SharedDataset().repository;
  util::Rng rng(11);
  for (auto _ : state) {
    const UserId a = static_cast<UserId>(rng.NextBounded(repo.user_count()));
    const UserId b = static_cast<UserId>(rng.NextBounded(repo.user_count()));
    benchmark::DoNotOptimize(baselines::JaccardDistance(repo, a, b));
  }
}
BENCHMARK(BM_JaccardDistance);

void BM_CdSim(benchmark::State& state) {
  util::Rng rng(13);
  std::vector<double> f_all(64);
  std::vector<double> f_subset(64);
  for (std::size_t i = 0; i < f_all.size(); ++i) {
    f_all[i] = rng.NextDouble();
    f_subset[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::CdSim(f_subset, f_all));
  }
}
BENCHMARK(BM_CdSim);

}  // namespace
}  // namespace podium
