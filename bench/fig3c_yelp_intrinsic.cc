// Figure 3c: Yelp intrinsic diversity.
//
// As Figure 3a but over the Yelp-like dataset: more users, fewer
// properties ("less room for manoeuvre" — the paper observes Podium's
// lead widens here). The paper uses the 60K most-active users; the
// default is 20000 so the whole harness stays minutes-scale on one core —
// pass --users=60000 to match the paper.
//
// Flags: --users --restaurants --leaves --budget --topk --seed --bucket --reps --telemetry-out

#include "bench/common/experiments.h"
#include "bench/common/flags.h"
#include "bench/common/harness.h"

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  podium::datagen::DatasetConfig config =
      podium::datagen::DatasetConfig::YelpLike();
  config.num_users =
      static_cast<std::size_t>(flags.Int("users", config.num_users));
  config.num_restaurants = static_cast<std::size_t>(
      flags.Int("restaurants", config.num_restaurants));
  config.leaf_categories =
      static_cast<std::size_t>(flags.Int("leaves", config.leaf_categories));
  config.seed = static_cast<std::uint64_t>(flags.Int("seed", config.seed));
  const auto budget = static_cast<std::size_t>(flags.Int("budget", 8));
  const auto top_k = static_cast<std::size_t>(flags.Int("topk", 200));
  const std::string bucket_method = flags.String("bucket", "quantile");
  const auto reps = static_cast<std::size_t>(flags.Int("reps", 3));
  const bool parallel_selectors = flags.Bool("parallel-selectors", false);
  const std::string telemetry_out = podium::bench::InitTelemetry(flags);
  podium::bench::InitThreads(flags);
  flags.CheckConsumed();

  podium::bench::PrintBanner(
      "Figure 3c — Yelp intrinsic diversity",
      "Podium vs. Random / Clustering / Distance-based, LBS weights, "
      "Single coverage");
  podium::bench::RunIntrinsicExperiment(config, budget, top_k,
                                        /*selector_seed=*/config.seed + 1,
                                        bucket_method, reps,
                                        parallel_selectors);
  podium::bench::FinishTelemetry(telemetry_out);
  return 0;
}
