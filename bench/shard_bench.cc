// Sharded-engine scalability: partitioned snapshot build + two-round
// distributed selection (podium::shard, DESIGN.md §13) over a synthetic
// population of --users, swept across shard counts.
//
//   shard_bench [--users=200000] [--shards=1,2,4,8] [--budget=16]
//               [--strategy=hash|group-affine] [--repeats=3] [--seed=7]
//               [--threads=N] [--bench-out=BENCH_shard.json]
//               [--telemetry-out=PATH]
//
// Per shard count the table reports the parallel snapshot build (scheme +
// partition + K arena-backed shard instances), the two-round selection
// (median of --repeats), the merge-round candidate count, the first-round
// skew (slowest shard / mean shard seconds), and the merged score's ratio
// to the K=1 score — the observed counterpart of the proven
// (1−1/e)²/min(K,B) floor. --bench-out writes the canonical BENCH_*.json
// artifact (bench/common/bench_report.h) for tools/podium_benchdiff.
//
// K=1 is the single-snapshot engine reproduced byte for byte, so the
// K=1 column doubles as the unsharded baseline.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common/bench_report.h"
#include "bench/common/flags.h"
#include "bench/common/harness.h"
#include "podium/datagen/generator.h"
#include "podium/shard/sharded_selector.h"
#include "podium/shard/sharded_snapshot.h"
#include "podium/util/parse.h"
#include "podium/util/stopwatch.h"
#include "podium/util/string_util.h"

namespace {

template <typename T>
T Unwrap(podium::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

std::vector<std::size_t> ParseShardList(const std::string& spec) {
  std::vector<std::size_t> counts;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (!token.empty()) {
      const podium::Result<std::size_t> value =
          podium::util::ParseSize(token);
      if (!value.ok() || value.value() == 0) {
        std::fprintf(stderr, "--shards: bad shard count '%s'\n",
                     token.c_str());
        std::exit(2);
      }
      counts.push_back(value.value());
    }
    pos = comma + 1;
  }
  if (counts.empty()) {
    std::fprintf(stderr, "--shards: at least one shard count required\n");
    std::exit(2);
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  const auto users = static_cast<std::size_t>(flags.Int("users", 200000));
  const std::vector<std::size_t> shard_counts =
      ParseShardList(flags.String("shards", "1,2,4,8"));
  const auto budget = static_cast<std::size_t>(flags.Int("budget", 16));
  const auto seed = static_cast<std::uint64_t>(flags.Int("seed", 7));
  const auto repeats =
      std::max<std::size_t>(1, static_cast<std::size_t>(flags.Int("repeats", 3)));
  const podium::shard::PartitionStrategy strategy = Unwrap(
      podium::shard::ParsePartitionStrategy(flags.String("strategy", "hash")));
  const std::string bench_out = flags.String("bench-out", "");
  const std::string telemetry_out = podium::bench::InitTelemetry(flags);
  const std::size_t threads = podium::bench::InitThreads(flags);
  flags.CheckConsumed();

  podium::bench::PrintBanner(
      "podium::shard — partitioned build + two-round selection",
      podium::util::StringPrintf(
          "%zu users, budget %zu, %s partition, %zu threads", users, budget,
          std::string(podium::shard::PartitionStrategyName(strategy)).c_str(),
          threads));

  podium::datagen::DatasetConfig config;
  config.num_users = users;
  config.num_restaurants = std::max<std::size_t>(users / 8, 64);
  config.leaf_categories = 60;
  config.num_cities = 30;
  config.min_reviews_per_user = 3;
  config.max_reviews_per_user = 12;
  config.derive_enthusiasm = false;
  config.holdout_destinations = 0;
  config.seed = seed;
  podium::util::Stopwatch datagen_watch;
  const podium::datagen::Dataset data =
      Unwrap(podium::datagen::GenerateDataset(config));
  std::printf("dataset: %zu users / %.0f mean props (generated in %.2fs)\n\n",
              data.repository.user_count(),
              data.repository.MeanProfileSize(),
              datagen_watch.ElapsedSeconds());

  podium::InstanceOptions instance_options;
  instance_options.budget = budget;

  podium::bench::BenchReport report = podium::bench::NewBenchReport("shard");
  report.threads = threads;
  report.repeats = repeats;
  report.notes["users"] = static_cast<double>(users);
  report.notes["budget"] = static_cast<double>(budget);

  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> cells;
  double k1_score = 0.0;
  for (const std::size_t num_shards : shard_counts) {
    podium::shard::ShardOptions shard_options;
    shard_options.num_shards = num_shards;
    shard_options.strategy = strategy;

    podium::util::Stopwatch build_watch;
    const std::shared_ptr<const podium::shard::ShardedSnapshot> snapshot =
        Unwrap(podium::shard::ShardedSnapshot::Build(
            data.repository, instance_options, shard_options));
    const double build_seconds = build_watch.ElapsedSeconds();

    podium::shard::ShardedSelector selector;
    std::vector<double> select_ms;
    select_ms.reserve(repeats);
    podium::shard::ShardedSelection last;
    for (std::size_t r = 0; r < repeats; ++r) {
      podium::util::Stopwatch select_watch;
      last = Unwrap(selector.Select(*snapshot, budget));
      select_ms.push_back(select_watch.ElapsedMillis());
    }

    // Round-1 skew: slowest shard over the mean — the quantity that caps
    // the fan-out speedup.
    double slowest = 0.0;
    double total = 0.0;
    for (const double s : last.shard_seconds) {
      slowest = std::max(slowest, s);
      total += s;
    }
    const double mean = last.shard_seconds.empty()
                            ? 0.0
                            : total / static_cast<double>(
                                          last.shard_seconds.size());
    const double skew = mean > 0.0 ? slowest / mean : 1.0;
    if (num_shards == 1) k1_score = last.merged.score;
    const double score_ratio =
        k1_score > 0.0 ? last.merged.score / k1_score : 1.0;

    std::sort(select_ms.begin(), select_ms.end());
    const std::string suffix = std::to_string(num_shards);
    report.metrics["shard_build_s/" + suffix] = podium::bench::BenchMetric{
        "s", "lower", build_seconds, build_seconds};
    report.metrics["shard_select_ms/" + suffix] =
        podium::bench::MakeBenchMetric("ms", "lower", select_ms);
    report.notes["candidates/" + suffix] =
        static_cast<double>(last.candidate_count);
    report.notes["memory_bytes/" + suffix] =
        static_cast<double>(snapshot->MemoryBytes());
    report.notes["score_ratio/" + suffix] = score_ratio;

    cells.push_back({build_seconds,
                     podium::bench::Percentile(select_ms, 0.50),
                     static_cast<double>(last.candidate_count), skew,
                     score_ratio});
    row_labels.push_back(podium::util::StringPrintf(
        "K=%zu (%zu groups)", num_shards, snapshot->group_count()));
  }

  podium::bench::PrintAbsoluteTable(
      "shards",
      {"build s", "select ms", "candidates", "r1 skew", "score vs K=1"},
      row_labels, cells, 4);
  std::printf(
      "\nExpected shape: build and select drop with K while score vs K=1 "
      "stays near 1.0 (the proven floor is (1-1/e)^2/min(K,B)); r1 skew "
      "near 1.0 means balanced shards.\n");

  if (!bench_out.empty()) {
    const podium::Status written =
        podium::bench::WriteBenchReport(report, bench_out);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", bench_out.c_str(),
                   written.ToString().c_str());
      return 2;
    }
    std::printf("shard_bench: wrote %s\n", bench_out.c_str());
  }
  podium::bench::FinishTelemetry(telemetry_out);
  return 0;
}
