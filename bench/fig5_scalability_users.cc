// Figure 5: the effect of |U| on execution time.
//
// Sweeps the population size with profiles capped near 200 properties
// (the paper's setting) and times Podium, the distance-based baseline and
// the clustering baseline. Expected shape: Podium and Distance scale
// linearly and sit well below Clustering (the paper reports ~9x).
// The Optimal baseline is exponential and reported separately by
// bench/optimal_approx.
//
// Flags: --budget --seed --max_users --telemetry-out

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/common/flags.h"
#include "bench/common/harness.h"
#include "podium/datagen/generator.h"
#include "podium/util/stopwatch.h"
#include "podium/util/string_util.h"

namespace {

template <typename T>
T Unwrap(podium::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  const auto budget = static_cast<std::size_t>(flags.Int("budget", 8));
  const auto seed = static_cast<std::uint64_t>(flags.Int("seed", 7));
  const auto max_users =
      static_cast<std::size_t>(flags.Int("max_users", 16000));
  const std::string telemetry_out = podium::bench::InitTelemetry(flags);
  podium::bench::InitThreads(flags);
  flags.CheckConsumed();

  podium::bench::PrintBanner(
      "Figure 5 — execution time vs. population size",
      "Profiles capped near 200 properties; selection time per algorithm "
      "(seconds)");

  std::vector<std::size_t> sweep;
  for (std::size_t n = 1000; n <= max_users; n *= 2) sweep.push_back(n);

  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> cells;
  for (std::size_t users : sweep) {
    podium::datagen::DatasetConfig config;
    config.num_users = users;
    config.num_restaurants = users * 2;
    // ~60 leaves keeps per-user property counts near the paper's 200 cap.
    config.leaf_categories = 60;
    config.num_cities = 30;
    config.min_reviews_per_user = 8;
    config.max_reviews_per_user = 60;
    config.derive_enthusiasm = false;
    config.holdout_destinations = 0;
    config.seed = seed;
    const podium::datagen::Dataset data =
        Unwrap(podium::datagen::GenerateDataset(config));

    podium::InstanceOptions options;
    options.budget = budget;
    podium::util::Stopwatch grouping_watch;
    const podium::DiversificationInstance instance = Unwrap(
        podium::DiversificationInstance::Build(data.repository, options));
    const double grouping_seconds = grouping_watch.ElapsedSeconds();

    const auto selectors = podium::bench::StandardSelectors(seed + 1);
    const auto runs =
        podium::bench::RunSelectors(selectors, instance, budget);
    // Column order: Podium, Random, Clustering, Distance (per
    // StandardSelectors), plus the offline grouping time for context.
    // select_seconds excludes selector-internal setup (pool and rank-table
    // construction) so the column tracks the selection loop itself.
    std::vector<double> row;
    for (const auto& run : runs) row.push_back(run.select_seconds);
    row.push_back(grouping_seconds);
    cells.push_back(row);
    row_labels.push_back(podium::util::StringPrintf(
        "%zu users / %.0f props", users,
        data.repository.MeanProfileSize()));
  }

  podium::bench::PrintAbsoluteTable(
      "population",
      {"Podium", "Random", "Clustering", "Distance", "(grouping)"},
      row_labels, cells, 4);
  std::printf(
      "\nExpected shape (paper): Podium and Distance grow linearly in |U| "
      "and run well below Clustering.\n");
  podium::bench::FinishTelemetry(telemetry_out);
  return 0;
}
