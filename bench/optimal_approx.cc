// Greedy vs. Optimal (Section 8.4 text + scalability remarks).
//
// On restricted populations small enough for exhaustive search, compares
// the greedy selection's total score with the true optimum and times
// both. The paper reports a ~0.998 approximation ratio for selecting 5 of
// 40 users — far above the (1 - 1/e) ≈ 0.632 guarantee — and exponential
// blow-up of the optimal baseline (443 s at |U| = 40, B = 5 on their
// hardware; absolute numbers differ here, the blow-up shape is the
// point).
//
// Flags: --seed --max_users --max_budget --telemetry-out

#include <cstdio>
#include <cstdlib>

#include "bench/common/flags.h"
#include "bench/common/harness.h"
#include "podium/core/exhaustive.h"
#include "podium/core/greedy.h"
#include "podium/datagen/generator.h"
#include "podium/util/stopwatch.h"

namespace {

template <typename T>
T Unwrap(podium::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.Int("seed", 7));
  const auto max_users = static_cast<std::size_t>(flags.Int("max_users", 40));
  const auto max_budget =
      static_cast<std::size_t>(flags.Int("max_budget", 5));
  const std::string telemetry_out = podium::bench::InitTelemetry(flags);
  podium::bench::InitThreads(flags);
  flags.CheckConsumed();

  podium::bench::PrintBanner(
      "Greedy vs. Optimal (Section 8.4)",
      "Approximation ratio and wall-clock on restricted populations");

  std::printf("%8s %4s %14s %14s %8s %12s %12s\n", "|U|", "B", "greedy score",
              "optimal score", "ratio", "greedy (s)", "optimal (s)");
  double worst_ratio = 1.0;
  for (std::size_t users : {20, 30, 40}) {
    if (users > max_users) continue;
    podium::datagen::DatasetConfig config;
    config.num_users = users;
    config.num_restaurants = 200;
    config.leaf_categories = 20;
    config.num_cities = 6;
    config.min_reviews_per_user = 5;
    config.max_reviews_per_user = 25;
    config.holdout_destinations = 0;
    config.seed = seed + users;
    const podium::datagen::Dataset data =
        Unwrap(podium::datagen::GenerateDataset(config));

    for (std::size_t budget = 2; budget <= max_budget; ++budget) {
      podium::InstanceOptions options;
      options.budget = budget;
      const podium::DiversificationInstance instance = Unwrap(
          podium::DiversificationInstance::Build(data.repository, options));

      podium::GreedySelector greedy;
      podium::util::Stopwatch greedy_watch;
      const podium::Selection greedy_selection =
          Unwrap(greedy.Select(instance, budget));
      const double greedy_seconds = greedy_watch.ElapsedSeconds();

      podium::ExhaustiveSelector optimal;
      podium::util::Stopwatch optimal_watch;
      const podium::Selection optimal_selection =
          Unwrap(optimal.Select(instance, budget));
      const double optimal_seconds = optimal_watch.ElapsedSeconds();

      const double ratio = optimal_selection.score > 0.0
                               ? greedy_selection.score /
                                     optimal_selection.score
                               : 1.0;
      worst_ratio = std::min(worst_ratio, ratio);
      std::printf("%8zu %4zu %14.1f %14.1f %8.4f %12.4f %12.4f\n", users,
                  budget, greedy_selection.score, optimal_selection.score,
                  ratio, greedy_seconds, optimal_seconds);
    }
  }
  std::printf(
      "\nworst observed ratio: %.4f (guarantee: %.4f; paper observes "
      "~0.998 at 5-of-40)\n",
      worst_ratio, 1.0 - 1.0 / 2.718281828459045);
  podium::bench::FinishTelemetry(telemetry_out);
  return 0;
}
