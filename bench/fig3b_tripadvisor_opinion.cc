// Figure 3b: TripAdvisor opinion diversity.
//
// Simulated opinion procurement over the hold-out destinations (the paper
// examines 50 destinations with ~90 reviews each): for every destination,
// each algorithm selects B = 8 of its reviewers from profiles that
// exclude the destination's data; the selected users' ground-truth
// reviews are scored for topic+sentiment coverage, rating-distribution
// similarity (CD-sim) and rating variance, averaged over destinations.
//
// Flags: --users --restaurants --leaves --budget --holdout --seed --bucket --reps --telemetry-out

#include "bench/common/experiments.h"
#include "bench/common/flags.h"
#include "bench/common/harness.h"

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  podium::datagen::DatasetConfig config =
      podium::datagen::DatasetConfig::TripAdvisorLike();
  config.num_users =
      static_cast<std::size_t>(flags.Int("users", config.num_users));
  config.num_restaurants = static_cast<std::size_t>(
      flags.Int("restaurants", config.num_restaurants));
  config.leaf_categories =
      static_cast<std::size_t>(flags.Int("leaves", config.leaf_categories));
  config.holdout_destinations = static_cast<std::size_t>(
      flags.Int("holdout", config.holdout_destinations));
  config.seed = static_cast<std::uint64_t>(flags.Int("seed", config.seed));
  const auto budget = static_cast<std::size_t>(flags.Int("budget", 8));
  const std::string bucket_method = flags.String("bucket", "quantile");
  const auto reps = static_cast<std::size_t>(flags.Int("reps", 3));
  const bool parallel_selectors = flags.Bool("parallel-selectors", false);
  const std::string telemetry_out = podium::bench::InitTelemetry(flags);
  podium::bench::InitThreads(flags);
  flags.CheckConsumed();

  podium::bench::PrintBanner(
      "Figure 3b — TripAdvisor opinion diversity",
      "Simulated procurement from hold-out destinations; metrics averaged "
      "per destination");
  podium::bench::RunOpinionExperiment(config, budget,
                                      /*report_usefulness=*/false,
                                      /*selector_seed=*/config.seed + 1,
                                      bucket_method, reps,
                                      parallel_selectors);
  podium::bench::FinishTelemetry(telemetry_out);
  return 0;
}
