// Figure 4: Yelp intrinsic diversity with customization.
//
// From the Yelp-like dataset the paper samples nested priority-coverage
// sets 𝒢₂₀ ⊆ 𝒢₄₀ ⊆ 𝒢₆₀ ⊆ 𝒢₈₀ uniformly at random, feeds each to Podium
// as 𝒢_d, selects B = 8 users in the customized setting, and reports the
// intrinsic metrics plus the new Feedback Group Coverage metric,
// averaged over 20 repetitions. The "none" row is the uncustomized
// baseline for comparison. The paper runs this at 30K users; the default
// is 8000 for runtime (pass --users=30000 to match).
//
// Flags: --users --restaurants --leaves --budget --reps --seed --telemetry-out

#include <cstdio>
#include <cstdlib>

#include "bench/common/flags.h"
#include "bench/common/harness.h"
#include "podium/core/customization.h"
#include "podium/core/greedy.h"
#include "podium/datagen/generator.h"
#include "podium/metrics/intrinsic.h"
#include "podium/util/rng.h"
#include "podium/util/string_util.h"
#include "podium/util/thread_pool.h"

namespace {

template <typename T>
T Unwrap(podium::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  podium::datagen::DatasetConfig config =
      podium::datagen::DatasetConfig::YelpLike();
  config.num_users = static_cast<std::size_t>(flags.Int("users", 8000));
  config.num_restaurants = static_cast<std::size_t>(
      flags.Int("restaurants", 16000));
  config.leaf_categories =
      static_cast<std::size_t>(flags.Int("leaves", config.leaf_categories));
  config.seed = static_cast<std::uint64_t>(flags.Int("seed", config.seed));
  const auto budget = static_cast<std::size_t>(flags.Int("budget", 8));
  const auto reps = static_cast<std::size_t>(flags.Int("reps", 20));
  const std::string telemetry_out = podium::bench::InitTelemetry(flags);
  podium::bench::InitThreads(flags);
  flags.CheckConsumed();

  podium::bench::PrintBanner(
      "Figure 4 — Yelp intrinsic diversity with customization",
      "Random priority sets of 20/40/60/80 groups; metrics averaged over "
      "repetitions");

  const podium::datagen::Dataset data =
      Unwrap(podium::datagen::GenerateDataset(config));
  std::printf("dataset: %zu users, %zu properties\n",
              data.repository.user_count(),
              data.repository.property_count());

  podium::InstanceOptions options;
  options.budget = budget;
  const podium::DiversificationInstance instance = Unwrap(
      podium::DiversificationInstance::Build(data.repository, options));
  const std::size_t num_groups = instance.groups().group_count();
  std::printf("instance: %zu groups, B = %zu, %zu repetitions\n\n",
              num_groups, budget, reps);

  const std::vector<std::size_t> sizes = {0, 20, 40, 60, 80};
  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> cells;
  podium::util::Rng rng(config.seed + 17);

  for (std::size_t size : sizes) {
    const std::size_t runs = size == 0 ? 1 : reps;
    // The per-repetition streams are forked serially, in the order the
    // old sequential loop forked them, so the sampled priority sets — and
    // every number below — are independent of the thread count.
    std::vector<podium::util::Rng> rep_rngs;
    if (size > 0) {
      rep_rngs.reserve(runs);
      for (std::size_t rep = 0; rep < runs; ++rep) {
        rep_rngs.push_back(rng.Fork(rep + 1));
      }
    }
    struct RepMetrics {
      double total_score = 0.0;
      double top_k = 0.0;
      double intersected = 0.0;
      double similarity = 0.0;
      double feedback_cov = 0.0;
    };
    std::vector<RepMetrics> rep_metrics(runs);
    podium::util::ParallelFor(
        "fig4.reps", runs,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t rep = begin; rep < end; ++rep) {
            podium::CustomizationFeedback feedback;
            if (size > 0) {
              // Nested sampling: draw 80 groups once per repetition and
              // use the first `size` of them, realizing 𝒢₂₀ ⊆ ... ⊆ 𝒢₈₀
              // per repetition.
              const auto sample = rep_rngs[rep].SampleWithoutReplacement(
                  num_groups, std::max<std::size_t>(sizes.back(), size));
              for (std::size_t i = 0; i < size; ++i) {
                feedback.priority.push_back(
                    static_cast<podium::GroupId>(sample[i]));
              }
            }
            const podium::CustomSelection custom = Unwrap(
                podium::SelectCustomized(instance, feedback, budget));
            const podium::metrics::IntrinsicMetrics m =
                podium::metrics::ComputeIntrinsicMetrics(
                    instance, custom.selection.users, 200);
            RepMetrics& out = rep_metrics[rep];
            out.total_score = m.total_score;
            out.top_k = m.top_k_coverage;
            out.intersected = m.intersected_coverage;
            out.similarity = m.distribution_similarity;
            out.feedback_cov = podium::metrics::FeedbackGroupCoverage(
                instance, custom.selection.users, feedback.priority);
          }
        },
        1);
    double total_score = 0.0;
    double top_k = 0.0;
    double intersected = 0.0;
    double similarity = 0.0;
    double feedback_cov = 0.0;
    for (const RepMetrics& m : rep_metrics) {
      total_score += m.total_score;
      top_k += m.top_k;
      intersected += m.intersected;
      similarity += m.similarity;
      feedback_cov += m.feedback_cov;
    }
    const auto n = static_cast<double>(runs);
    row_labels.push_back(size == 0 ? "none"
                                   : podium::util::StringPrintf(
                                         "|Gd| = %zu", size));
    cells.push_back({total_score / n, top_k / n, intersected / n,
                     similarity / n, feedback_cov / n});
  }

  podium::bench::PrintAbsoluteTable(
      "priority set",
      {"total score", "top-200 cov", "intersect cov", "dist sim",
       "feedback cov"},
      row_labels, cells);
  std::printf(
      "\nExpected shape (paper): intrinsic metrics dip only slightly as "
      "|Gd| grows; feedback coverage drops significantly with more "
      "priority groups.\n");
  podium::bench::FinishTelemetry(telemetry_out);
  return 0;
}
