#ifndef PODIUM_BENCH_COMMON_HARNESS_H_
#define PODIUM_BENCH_COMMON_HARNESS_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/common/flags.h"
#include "podium/core/instance.h"
#include "podium/core/selection.h"

namespace podium::bench {

/// Experiment-binary telemetry wiring: enables podium::telemetry (phase
/// spans, counters, greedy tracing) and consumes the --telemetry-out flag.
/// Returns the flag's value — the path the JSON export should be written
/// to — or "" when the flag was absent. Call before CheckConsumed().
std::string InitTelemetry(Flags& flags);

/// When `path` is non-empty, writes the telemetry JSON export (schema in
/// DESIGN.md §"Telemetry & profiling") to it and prints a note. Call at
/// the end of main().
void FinishTelemetry(const std::string& path);

/// Consumes --threads (0 = automatic: PODIUM_THREADS env, then
/// hardware_concurrency) and sizes the global thread pool accordingly.
/// Returns the pool size in effect. Call before CheckConsumed().
std::size_t InitThreads(Flags& flags);

/// The four standard selectors of Section 8.3 (Podium + the baselines),
/// ready to run over one instance.
std::vector<std::unique_ptr<Selector>> StandardSelectors(std::uint64_t seed);

/// Selection plus wall-clock time for one algorithm.
struct TimedSelection {
  std::string name;
  Selection selection;
  /// Whole Select() call, wall clock.
  double seconds = 0.0;
  /// The selector's internal pre-algorithm work (pool materialization,
  /// rank tables, marginal-gain initialization), measured via phase spans.
  /// 0 for uninstrumented selectors or when telemetry is disabled.
  double setup_seconds = 0.0;
  /// `seconds - setup_seconds`: the algorithm proper. Scalability figures
  /// report this so instance-construction cost is not attributed to the
  /// selection loop.
  double select_seconds = 0.0;
};

/// Runs every selector on the instance; aborts on error (experiment
/// binaries treat selector failures as fatal). With `concurrent` set, the
/// selectors run as one parallel loop over the pool — results stay in
/// selector order and selections are unchanged, but per-selector wall
/// clocks overlap and the phase-based setup/select split is unavailable
/// (setup_seconds stays 0), so quality sweeps use it and timing figures
/// must not.
std::vector<TimedSelection> RunSelectors(
    const std::vector<std::unique_ptr<Selector>>& selectors,
    const DiversificationInstance& instance, std::size_t budget,
    bool concurrent = false);

/// Figure-style table: rows are metrics, columns are algorithms, scores
/// normalized to the per-metric leader (as in the paper's Figure 3, which
/// shows "scores normalized relative to the leading algorithm's score"
/// and annotates the leader's absolute value).
struct MetricRow {
  std::string metric;
  std::vector<double> values;  // one per algorithm, absolute
};
void PrintNormalizedTable(const std::vector<std::string>& algorithms,
                          const std::vector<MetricRow>& rows);

/// Plain table of absolute values.
void PrintAbsoluteTable(const std::string& row_header,
                        const std::vector<std::string>& columns,
                        const std::vector<std::string>& row_labels,
                        const std::vector<std::vector<double>>& cells,
                        int precision = 3);

/// Prints the experiment banner (name + dataset stats line).
void PrintBanner(const std::string& title, const std::string& subtitle);

}  // namespace podium::bench

#endif  // PODIUM_BENCH_COMMON_HARNESS_H_
