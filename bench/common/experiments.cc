#include "bench/common/experiments.h"

#include <cstdio>
#include <cstdlib>

#include "bench/common/harness.h"
#include "podium/metrics/intrinsic.h"
#include "podium/metrics/procurement_experiment.h"
#include "podium/util/stopwatch.h"
#include "podium/util/string_util.h"
#include "podium/util/thread_pool.h"

namespace podium::bench {

namespace {

datagen::Dataset MustGenerate(const datagen::DatasetConfig& config,
                              bool print_stats) {
  util::Stopwatch stopwatch;
  Result<datagen::Dataset> dataset = datagen::GenerateDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  if (print_stats) {
    std::printf(
        "dataset: %zu users, %zu properties, %zu reviews, %zu hold-out "
        "destinations (generated in %.1fs)\n",
        dataset->repository.user_count(),
        dataset->repository.property_count(),
        dataset->opinions.review_count(), dataset->holdout.size(),
        stopwatch.ElapsedSeconds());
  }
  return std::move(dataset).value();
}

void AddInto(std::vector<MetricRow>& totals,
             const std::vector<std::vector<double>>& values) {
  for (std::size_t r = 0; r < totals.size(); ++r) {
    if (totals[r].values.empty()) {
      totals[r].values.assign(values[r].size(), 0.0);
    }
    for (std::size_t c = 0; c < values[r].size(); ++c) {
      totals[r].values[c] += values[r][c];
    }
  }
}

void DivideBy(std::vector<MetricRow>& totals, double n) {
  for (MetricRow& row : totals) {
    for (double& value : row.values) value /= n;
  }
}

}  // namespace

void RunIntrinsicExperiment(const datagen::DatasetConfig& base_config,
                            std::size_t budget, std::size_t top_k,
                            std::uint64_t selector_seed,
                            const std::string& bucket_method,
                            std::size_t repetitions,
                            bool parallel_selectors) {
  std::vector<std::string> names;
  std::vector<MetricRow> totals = {
      {"total score (LBS/Single)", {}},
      {util::StringPrintf("top-%zu coverage", top_k), {}},
      {"intersected-property cov.", {}},
      {"distribution similarity", {}}};
  std::vector<double> total_seconds;

  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    datagen::DatasetConfig config = base_config;
    config.seed = base_config.seed + rep;
    const datagen::Dataset data = MustGenerate(config, rep == 0);

    InstanceOptions options;
    options.grouping.bucket_method = bucket_method;
    options.weight_kind = WeightKind::kLbs;
    options.coverage_kind = CoverageKind::kSingle;
    options.budget = budget;
    util::Stopwatch build_watch;
    Result<DiversificationInstance> instance =
        DiversificationInstance::Build(data.repository, options);
    if (!instance.ok()) {
      std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
      std::exit(1);
    }
    if (rep == 0) {
      std::printf(
          "instance: %zu groups (grouping in %.1fs), B = %zu, %zu dataset "
          "seeds\n\n",
          instance->groups().group_count(), build_watch.ElapsedSeconds(),
          budget, repetitions);
    }

    const auto selectors = StandardSelectors(selector_seed + rep);
    const auto runs =
        RunSelectors(selectors, instance.value(), budget, parallel_selectors);
    std::vector<std::vector<double>> values(totals.size());
    if (names.empty()) {
      for (const TimedSelection& run : runs) names.push_back(run.name);
      total_seconds.assign(runs.size(), 0.0);
    }
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const metrics::IntrinsicMetrics m = metrics::ComputeIntrinsicMetrics(
          instance.value(), runs[i].selection.users, top_k);
      values[0].push_back(m.total_score);
      values[1].push_back(m.top_k_coverage);
      values[2].push_back(m.intersected_coverage);
      values[3].push_back(m.distribution_similarity);
      total_seconds[i] += runs[i].seconds;
    }
    AddInto(totals, values);
  }
  DivideBy(totals, static_cast<double>(repetitions));
  PrintNormalizedTable(names, totals);

  std::printf("\nmean selection wall-clock seconds:");
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("  %s %.2f", names[i].c_str(),
                total_seconds[i] / static_cast<double>(repetitions));
  }
  std::printf("\n");
}

void RunOpinionExperiment(const datagen::DatasetConfig& base_config,
                          std::size_t budget, bool report_usefulness,
                          std::uint64_t selector_seed,
                          const std::string& bucket_method,
                          std::size_t repetitions,
                          bool parallel_selectors) {
  std::vector<std::string> names;
  std::vector<MetricRow> totals = {{"topic+sentiment coverage", {}},
                                   {"usefulness (votes/dest)", {}},
                                   {"rating dist. similarity", {}},
                                   {"rating variance", {}}};

  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    datagen::DatasetConfig config = base_config;
    config.seed = base_config.seed + rep;
    const datagen::Dataset data = MustGenerate(config, rep == 0);
    if (data.holdout.empty()) {
      std::fprintf(stderr,
                   "no hold-out destinations were produced; raise review "
                   "volume or lower min_holdout_reviews\n");
      std::exit(1);
    }
    if (rep == 0) {
      std::size_t total_reviews = 0;
      for (opinion::DestinationId d : data.holdout) {
        total_reviews += data.opinions.reviews_of(d).size();
      }
      std::printf(
          "hold-out: %zu destinations, %.0f reviews on average, B = %zu, "
          "%zu dataset seeds\n\n",
          data.holdout.size(),
          static_cast<double>(total_reviews) /
              static_cast<double>(data.holdout.size()),
          budget, repetitions);
    }

    metrics::ProcurementOptions options;
    options.budget = budget;
    options.instance.budget = budget;
    options.instance.grouping.bucket_method = bucket_method;

    const auto selectors = StandardSelectors(selector_seed + rep);
    std::vector<std::vector<double>> values(totals.size());
    // Each selector's experiment is independent; with parallel_selectors
    // they run as one chunk-per-selector loop. Failures and the rep-0
    // progress lines are reported after the loop, in selector order.
    std::vector<metrics::ProcurementResult> results(selectors.size());
    std::vector<Status> failures(selectors.size());
    std::vector<double> seconds(selectors.size(), 0.0);
    auto run_one = [&](std::size_t i) {
      util::Stopwatch stopwatch;
      Result<metrics::ProcurementResult> result =
          metrics::RunProcurementExperiment(data.repository, data.opinions,
                                            data.holdout, *selectors[i],
                                            options);
      seconds[i] = stopwatch.ElapsedSeconds();
      if (!result.ok()) {
        failures[i] = result.status();
        return;
      }
      results[i] = std::move(result).value();
    };
    if (parallel_selectors) {
      util::ParallelFor(
          "bench.selectors", selectors.size(),
          [&](std::size_t begin, std::size_t end, std::size_t) {
            for (std::size_t i = begin; i < end; ++i) run_one(i);
          },
          1);
    } else {
      for (std::size_t i = 0; i < selectors.size(); ++i) run_one(i);
    }
    for (std::size_t i = 0; i < selectors.size(); ++i) {
      if (!failures[i].ok()) {
        std::fprintf(stderr, "%s failed: %s\n", selectors[i]->Name().c_str(),
                     failures[i].ToString().c_str());
        std::exit(1);
      }
      if (names.size() < selectors.size()) {
        names.push_back(selectors[i]->Name());
      }
      values[0].push_back(results[i].average.topic_sentiment_coverage);
      values[1].push_back(results[i].average.usefulness);
      values[2].push_back(results[i].average.rating_distribution_similarity);
      values[3].push_back(results[i].average.rating_variance);
      if (rep == 0) {
        std::printf("%s: evaluated %zu destinations in %.1fs\n",
                    selectors[i]->Name().c_str(),
                    results[i].per_destination.size(), seconds[i]);
      }
    }
    AddInto(totals, values);
  }
  DivideBy(totals, static_cast<double>(repetitions));
  std::printf("\n");

  std::vector<MetricRow> rows = {totals[0]};
  if (report_usefulness) rows.push_back(totals[1]);
  rows.push_back(totals[2]);
  rows.push_back(totals[3]);
  PrintNormalizedTable(names, rows);
}

}  // namespace podium::bench
