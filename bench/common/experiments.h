#ifndef PODIUM_BENCH_COMMON_EXPERIMENTS_H_
#define PODIUM_BENCH_COMMON_EXPERIMENTS_H_

#include <string>

#include "podium/datagen/generator.h"

namespace podium::bench {

/// The intrinsic-diversity experiment behind Figures 3a and 3c: generate
/// the dataset, build the LBS/Single instance, run Podium and the three
/// baselines, and print every intrinsic metric normalized to the leader.
/// `parallel_selectors` runs the four selectors of each repetition
/// concurrently on the thread pool (quality metrics are unchanged; the
/// per-selector wall clocks overlap, so leave it off when timing).
void RunIntrinsicExperiment(const datagen::DatasetConfig& config,
                            std::size_t budget, std::size_t top_k,
                            std::uint64_t selector_seed,
                            const std::string& bucket_method = "quantile",
                            std::size_t repetitions = 3,
                            bool parallel_selectors = false);

/// The opinion-diversity experiment behind Figures 3b and 3d: per hold-out
/// destination, select `budget` of its reviewers by profile, procure their
/// ground-truth reviews and print the opinion metrics normalized to the
/// leader. `report_usefulness` adds the Yelp-only usefulness metric.
///
/// Both experiments repeat over `repetitions` dataset seeds (config.seed,
/// config.seed+1, ...) and report metric means, damping the single-draw
/// noise of the synthetic data.
void RunOpinionExperiment(const datagen::DatasetConfig& config,
                          std::size_t budget, bool report_usefulness,
                          std::uint64_t selector_seed,
                          const std::string& bucket_method = "quantile",
                          std::size_t repetitions = 3,
                          bool parallel_selectors = false);

}  // namespace podium::bench

#endif  // PODIUM_BENCH_COMMON_EXPERIMENTS_H_
