#ifndef PODIUM_BENCH_COMMON_FLAGS_H_
#define PODIUM_BENCH_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace podium::bench {

/// Minimal --key=value command-line parsing for the experiment binaries.
/// Unknown flags abort with a message listing what was seen, so typos in
/// sweep scripts fail loudly.
class Flags {
 public:
  Flags(int argc, char** argv);

  std::int64_t Int(const std::string& key, std::int64_t default_value);
  double Double(const std::string& key, double default_value);
  std::string String(const std::string& key, std::string default_value);
  bool Bool(const std::string& key, bool default_value);

  /// Call after all flags were read; aborts if any provided flag was never
  /// consumed.
  void CheckConsumed() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
};

}  // namespace podium::bench

#endif  // PODIUM_BENCH_COMMON_FLAGS_H_
