#include "bench/common/bench_report.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "podium/json/parser.h"
#include "podium/json/writer.h"
#include "podium/util/thread_pool.h"

// Provenance captured at configure time (see bench/CMakeLists.txt); a
// build outside CMake still compiles with the fallbacks.
#ifndef PODIUM_GIT_DESCRIBE
#define PODIUM_GIT_DESCRIBE "unknown"
#endif
#ifndef PODIUM_BUILD_TYPE
#define PODIUM_BUILD_TYPE "unknown"
#endif

namespace podium::bench {

namespace {

std::string CompilerString() {
#if defined(__clang__)
  return "Clang " __clang_version__;
#elif defined(__GNUC__)
  return "GNU " __VERSION__;
#else
  return "unknown";
#endif
}

Result<double> RequireNumber(const json::Object& object,
                             std::string_view key,
                             std::string_view where) {
  const json::Value* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    return Status::InvalidArgument(std::string(where) + ": missing numeric '" +
                                   std::string(key) + "'");
  }
  return value->AsNumber();
}

Result<std::string> RequireString(const json::Object& object,
                                  std::string_view key,
                                  std::string_view where) {
  const json::Value* value = object.Find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument(std::string(where) + ": missing string '" +
                                   std::string(key) + "'");
  }
  return value->AsString();
}

}  // namespace

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

BenchMetric MakeBenchMetric(std::string unit, std::string better,
                            std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  BenchMetric metric;
  metric.unit = std::move(unit);
  metric.better = std::move(better);
  metric.median = Percentile(samples, 0.50);
  metric.p95 = Percentile(samples, 0.95);
  return metric;
}

BenchReport NewBenchReport(std::string bench) {
  BenchReport report;
  report.bench = std::move(bench);
  report.git = PODIUM_GIT_DESCRIBE;
  report.build_type = PODIUM_BUILD_TYPE;
  report.compiler = CompilerString();
  report.threads = util::ThreadPool::GlobalThreadCount();
  return report;
}

json::Value BenchReportToJson(const BenchReport& report) {
  json::Object root;
  json::Object schema;
  schema.Set("name", json::Value("podium.bench"));
  schema.Set("version", json::Value(kBenchReportSchemaVersion));
  root.Set("schema", json::Value(std::move(schema)));
  root.Set("bench", json::Value(report.bench));
  root.Set("git", json::Value(report.git));
  json::Object build;
  build.Set("type", json::Value(report.build_type));
  build.Set("compiler", json::Value(report.compiler));
  root.Set("build", json::Value(std::move(build)));
  root.Set("threads", json::Value(report.threads));
  root.Set("repeats", json::Value(report.repeats));
  json::Object metrics;
  for (const auto& [name, metric] : report.metrics) {
    json::Object entry;
    entry.Set("unit", json::Value(metric.unit));
    entry.Set("better", json::Value(metric.better));
    entry.Set("median", json::Value(metric.median));
    entry.Set("p95", json::Value(metric.p95));
    metrics.Set(name, json::Value(std::move(entry)));
  }
  root.Set("metrics", json::Value(std::move(metrics)));
  if (!report.notes.empty()) {
    json::Object notes;
    for (const auto& [name, value] : report.notes) {
      notes.Set(name, json::Value(value));
    }
    root.Set("notes", json::Value(std::move(notes)));
  }
  return json::Value(std::move(root));
}

Result<BenchReport> BenchReportFromJson(const json::Value& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("bench report: document is not an object");
  }
  const json::Object& object = root.AsObject();

  const json::Value* schema = object.Find("schema");
  if (schema == nullptr || !schema->is_object()) {
    return Status::InvalidArgument("bench report: missing 'schema' object");
  }
  PODIUM_ASSIGN_OR_RETURN(
      const std::string schema_name,
      RequireString(schema->AsObject(), "name", "schema"));
  if (schema_name != "podium.bench") {
    return Status::InvalidArgument("bench report: schema name '" +
                                   schema_name + "' != 'podium.bench'");
  }
  PODIUM_ASSIGN_OR_RETURN(
      const double version,
      RequireNumber(schema->AsObject(), "version", "schema"));
  if (version != kBenchReportSchemaVersion) {
    return Status::InvalidArgument(
        "bench report: unsupported schema version");
  }

  BenchReport report;
  PODIUM_ASSIGN_OR_RETURN(report.bench,
                          RequireString(object, "bench", "bench report"));
  if (const json::Value* git = object.Find("git");
      git != nullptr && git->is_string()) {
    report.git = git->AsString();
  }
  if (const json::Value* build = object.Find("build");
      build != nullptr && build->is_object()) {
    if (const json::Value* type = build->AsObject().Find("type");
        type != nullptr && type->is_string()) {
      report.build_type = type->AsString();
    }
    if (const json::Value* compiler = build->AsObject().Find("compiler");
        compiler != nullptr && compiler->is_string()) {
      report.compiler = compiler->AsString();
    }
  }
  if (const json::Value* threads = object.Find("threads");
      threads != nullptr && threads->is_number()) {
    report.threads = static_cast<std::size_t>(threads->AsNumber());
  }
  if (const json::Value* repeats = object.Find("repeats");
      repeats != nullptr && repeats->is_number()) {
    report.repeats = static_cast<std::size_t>(repeats->AsNumber());
  }

  const json::Value* metrics = object.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return Status::InvalidArgument("bench report: missing 'metrics' object");
  }
  for (const auto& [name, entry] : metrics->AsObject().entries()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("bench report: metric '" + name +
                                     "' is not an object");
    }
    const json::Object& fields = entry.AsObject();
    BenchMetric metric;
    PODIUM_ASSIGN_OR_RETURN(metric.unit,
                            RequireString(fields, "unit", "metric " + name));
    PODIUM_ASSIGN_OR_RETURN(metric.better,
                            RequireString(fields, "better", "metric " + name));
    if (metric.better != "lower" && metric.better != "higher") {
      return Status::InvalidArgument("bench report: metric '" + name +
                                     "': 'better' must be lower|higher");
    }
    PODIUM_ASSIGN_OR_RETURN(metric.median,
                            RequireNumber(fields, "median", "metric " + name));
    PODIUM_ASSIGN_OR_RETURN(metric.p95,
                            RequireNumber(fields, "p95", "metric " + name));
    report.metrics.emplace(name, std::move(metric));
  }

  if (const json::Value* notes = object.Find("notes");
      notes != nullptr && notes->is_object()) {
    for (const auto& [name, value] : notes->AsObject().entries()) {
      if (value.is_number()) report.notes.emplace(name, value.AsNumber());
    }
  }
  return report;
}

Status WriteBenchReport(const BenchReport& report, const std::string& path) {
  json::WriteOptions options;
  options.indent = 2;
  return json::WriteFile(BenchReportToJson(report), path, options);
}

Result<BenchReport> LoadBenchReport(const std::string& path) {
  PODIUM_ASSIGN_OR_RETURN(const json::Value document, json::ParseFile(path));
  Result<BenchReport> report = BenchReportFromJson(document);
  if (!report.ok()) {
    return Status(report.status().code(),
                  path + ": " + report.status().message());
  }
  return report;
}

BenchDiff CompareBenchReports(const BenchReport& old_report,
                              const BenchReport& new_report,
                              double threshold) {
  return CompareBenchReports(old_report, new_report, threshold, {});
}

BenchDiff CompareBenchReports(
    const BenchReport& old_report, const BenchReport& new_report,
    double threshold, const std::map<std::string, double>& metric_thresholds) {
  BenchDiff diff;
  for (const auto& [name, old_metric] : old_report.metrics) {
    const auto it = new_report.metrics.find(name);
    if (it == new_report.metrics.end()) {
      diff.warnings.push_back("metric '" + name +
                              "' missing from the new report");
      continue;
    }
    const BenchMetric& new_metric = it->second;
    if (old_metric.unit != new_metric.unit) {
      diff.warnings.push_back("metric '" + name + "': unit changed " +
                              old_metric.unit + " -> " + new_metric.unit);
      continue;
    }
    if (old_metric.better != new_metric.better) {
      diff.warnings.push_back("metric '" + name + "': direction changed " +
                              old_metric.better + " -> " + new_metric.better);
      continue;
    }
    MetricDelta delta;
    delta.name = name;
    delta.unit = old_metric.unit;
    delta.old_median = old_metric.median;
    delta.new_median = new_metric.median;
    delta.ratio = old_metric.median != 0.0
                      ? (new_metric.median - old_metric.median) /
                            std::abs(old_metric.median)
                      : (new_metric.median != 0.0 ? 1.0 : 0.0);
    const auto override_it = metric_thresholds.find(name);
    delta.threshold =
        override_it != metric_thresholds.end() ? override_it->second : threshold;
    delta.regression = old_metric.better == "lower"
                           ? delta.ratio > delta.threshold
                           : delta.ratio < -delta.threshold;
    diff.has_regression = diff.has_regression || delta.regression;
    diff.deltas.push_back(std::move(delta));
  }
  for (const auto& [name, metric] : new_report.metrics) {
    (void)metric;
    if (old_report.metrics.find(name) == old_report.metrics.end()) {
      diff.warnings.push_back("metric '" + name +
                              "' is new (no baseline to compare)");
    }
  }
  // A per-metric override that matches nothing on either side is a stale
  // gate (the benchmark was renamed or removed) — surface it.
  for (const auto& [name, value] : metric_thresholds) {
    (void)value;
    if (old_report.metrics.find(name) == old_report.metrics.end() &&
        new_report.metrics.find(name) == new_report.metrics.end()) {
      diff.warnings.push_back("threshold override for unknown metric '" +
                              name + "'");
    }
  }
  return diff;
}

std::vector<std::string> ProvenanceWarnings(const BenchReport& old_report,
                                            const BenchReport& new_report) {
  std::vector<std::string> warnings;
  const auto check = [&warnings](const char* side, const BenchReport& report) {
    if (report.git.empty()) {
      warnings.push_back(std::string(side) + " report has no git provenance");
      return;
    }
    if (report.git.size() >= 6 &&
        report.git.compare(report.git.size() - 6, 6, "-dirty") == 0) {
      warnings.push_back(std::string(side) + " report was built from a dirty "
                         "tree (git " + report.git +
                         "); regenerate it from a clean checkout");
    }
  };
  check("baseline", old_report);
  check("new", new_report);
  return warnings;
}

}  // namespace podium::bench
