#include "bench/common/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "podium/baselines/distance_selector.h"
#include "podium/baselines/kmeans_selector.h"
#include "podium/baselines/random_selector.h"
#include "podium/core/greedy.h"
#include "podium/telemetry/export.h"
#include "podium/telemetry/phase.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/stopwatch.h"
#include "podium/util/thread_pool.h"

namespace podium::bench {

namespace {

/// Selector-internal setup seconds recorded in `tree` (the phase names the
/// GreedySelector emits before its selection loop).
double SetupSeconds(const telemetry::PhaseStats& tree) {
  return telemetry::SumPhaseSeconds(tree, "greedy.setup") +
         telemetry::SumPhaseSeconds(tree, "greedy.init");
}

}  // namespace

std::string InitTelemetry(Flags& flags) {
  telemetry::SetEnabled(true);
  return flags.String("telemetry-out", "");
}

void FinishTelemetry(const std::string& path) {
  if (path.empty()) return;
  const Status status = telemetry::WriteTelemetryJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "telemetry export failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("\nwrote telemetry to %s\n", path.c_str());
}

std::size_t InitThreads(Flags& flags) {
  const std::int64_t threads = flags.Int("threads", 0);
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0 (0 = automatic)\n");
    std::exit(1);
  }
  util::ThreadPool::SetGlobalThreadCount(static_cast<std::size_t>(threads));
  return util::ThreadPool::GlobalThreadCount();
}

std::vector<std::unique_ptr<Selector>> StandardSelectors(std::uint64_t seed) {
  std::vector<std::unique_ptr<Selector>> selectors;
  selectors.push_back(std::make_unique<GreedySelector>());
  selectors.push_back(std::make_unique<baselines::RandomSelector>(seed));
  baselines::KMeansSelector::Options kmeans;
  kmeans.seed = seed;
  selectors.push_back(std::make_unique<baselines::KMeansSelector>(kmeans));
  selectors.push_back(std::make_unique<baselines::DistanceSelector>());
  return selectors;
}

std::vector<TimedSelection> RunSelectors(
    const std::vector<std::unique_ptr<Selector>>& selectors,
    const DiversificationInstance& instance, std::size_t budget,
    bool concurrent) {
  if (concurrent) {
    // One chunk per selector; failures are collected and reported in
    // selector order after the loop so the abort is deterministic.
    std::vector<TimedSelection> results(selectors.size());
    std::vector<Status> failures(selectors.size());
    util::ParallelFor(
        "bench.selectors", selectors.size(),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t i = begin; i < end; ++i) {
            util::Stopwatch stopwatch;
            Result<Selection> selection = [&] {
              telemetry::PhaseSpan span("select." + selectors[i]->Name());
              return selectors[i]->Select(instance, budget);
            }();
            const double seconds = stopwatch.ElapsedSeconds();
            if (!selection.ok()) {
              failures[i] = selection.status();
              continue;
            }
            results[i] = TimedSelection{selectors[i]->Name(),
                                        std::move(selection).value(), seconds,
                                        0.0, seconds};
          }
        },
        1);
    for (std::size_t i = 0; i < selectors.size(); ++i) {
      if (failures[i].ok()) continue;
      std::fprintf(stderr, "%s failed: %s\n", selectors[i]->Name().c_str(),
                   failures[i].ToString().c_str());
      std::exit(1);
    }
    return results;
  }

  std::vector<TimedSelection> results;
  for (const auto& selector : selectors) {
    const bool split_phases = telemetry::Enabled();
    double setup_before = 0.0;
    if (split_phases) setup_before = SetupSeconds(telemetry::PhaseTreeSnapshot());
    util::Stopwatch stopwatch;
    Result<Selection> selection = [&] {
      telemetry::PhaseSpan span("select." + selector->Name());
      return selector->Select(instance, budget);
    }();
    const double seconds = stopwatch.ElapsedSeconds();
    if (!selection.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", selector->Name().c_str(),
                   selection.status().ToString().c_str());
      std::exit(1);
    }
    TimedSelection timed{selector->Name(), std::move(selection).value(),
                         seconds, 0.0, seconds};
    if (split_phases) {
      timed.setup_seconds =
          SetupSeconds(telemetry::PhaseTreeSnapshot()) - setup_before;
      timed.select_seconds = seconds - timed.setup_seconds;
    }
    results.push_back(std::move(timed));
  }
  return results;
}

void PrintNormalizedTable(const std::vector<std::string>& algorithms,
                          const std::vector<MetricRow>& rows) {
  std::printf("%-34s", "metric (leader absolute value)");
  for (const std::string& name : algorithms) {
    std::printf(" %12s", name.c_str());
  }
  std::printf("\n");
  for (const MetricRow& row : rows) {
    const double leader =
        *std::max_element(row.values.begin(), row.values.end());
    char label[64];
    std::snprintf(label, sizeof(label), "%s (%.4g)", row.metric.c_str(),
                  leader);
    std::printf("%-34s", label);
    for (double value : row.values) {
      if (leader > 0.0) {
        std::printf(" %12.3f", value / leader);
      } else {
        std::printf(" %12.3f", 0.0);
      }
    }
    std::printf("\n");
  }
}

void PrintAbsoluteTable(const std::string& row_header,
                        const std::vector<std::string>& columns,
                        const std::vector<std::string>& row_labels,
                        const std::vector<std::vector<double>>& cells,
                        int precision) {
  std::printf("%-24s", row_header.c_str());
  for (const std::string& column : columns) {
    std::printf(" %12s", column.c_str());
  }
  std::printf("\n");
  for (std::size_t r = 0; r < row_labels.size(); ++r) {
    std::printf("%-24s", row_labels[r].c_str());
    for (double cell : cells[r]) {
      std::printf(" %12.*f", precision, cell);
    }
    std::printf("\n");
  }
}

void PrintBanner(const std::string& title, const std::string& subtitle) {
  std::printf("=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
}

}  // namespace podium::bench
