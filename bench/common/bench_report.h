#ifndef PODIUM_BENCH_COMMON_BENCH_REPORT_H_
#define PODIUM_BENCH_COMMON_BENCH_REPORT_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "podium/json/value.h"
#include "podium/util/result.h"

namespace podium::bench {

/// Canonical cross-PR benchmark artifact ("BENCH_<area>.json"): every
/// bench/load binary emits this one schema so tools/podium_benchdiff can
/// compare any two runs — including runs from different PRs — and CI can
/// archive the trajectory. Schema (version 1):
///
/// {
///   "schema": {"name": "podium.bench", "version": 1},
///   "bench": "micro",
///   "git": "<git describe --always --dirty at configure time>",
///   "build": {"type": "RelWithDebInfo", "compiler": "GNU 13.2.0"},
///   "threads": 8,
///   "repeats": 3,
///   "metrics": {
///     "BM_GreedySelect/1/8": {"unit": "ms", "better": "lower",
///                              "median": 1.23, "p95": 1.31}
///   },
///   "notes": {"status.200": 2000}
/// }
///
/// Bump the version on any incompatible change; additive changes keep it.
inline constexpr int kBenchReportSchemaVersion = 1;

/// One measured metric: median and p95 over `repeats` samples, plus the
/// direction in which improvement points ("lower" for times, "higher"
/// for throughput) so a diff knows what a regression is.
struct BenchMetric {
  std::string unit;    // "ms", "s", "req/s", ...
  std::string better;  // "lower" | "higher"
  double median = 0.0;
  double p95 = 0.0;
};

struct BenchReport {
  std::string bench;  // "micro", "serve", ...
  std::string git;
  std::string build_type;
  std::string compiler;
  std::size_t threads = 0;
  std::size_t repeats = 1;
  std::map<std::string, BenchMetric> metrics;
  /// Free-form scalar annotations (e.g. per-status-code request counts).
  /// Ignored by the regression check.
  std::map<std::string, double> notes;
};

/// Linear-interpolation percentile over an ASCENDING-sorted sample list
/// (the same estimator the load generator reports); 0 for an empty list.
double Percentile(const std::vector<double>& sorted, double p);

/// Builds a metric from raw samples (any order): sorts, then fills
/// median/p95.
BenchMetric MakeBenchMetric(std::string unit, std::string better,
                            std::vector<double> samples);

/// A report pre-filled with environment provenance: `bench` name, git
/// describe and build info (captured at configure time), and the global
/// thread-pool width.
BenchReport NewBenchReport(std::string bench);

json::Value BenchReportToJson(const BenchReport& report);

/// Strict schema validation: wrong schema name/version, missing or
/// mistyped required fields, and malformed metric entries are all
/// InvalidArgument — podium_benchdiff turns those into a hard failure
/// even in warn-only mode.
[[nodiscard]] Result<BenchReport> BenchReportFromJson(const json::Value& root);

[[nodiscard]] Status WriteBenchReport(const BenchReport& report,
                                      const std::string& path);
[[nodiscard]] Result<BenchReport> LoadBenchReport(const std::string& path);

/// One compared metric. `ratio` is (new - old) / old of the medians;
/// `regression` applies the metric's `better` direction to it, against
/// `threshold` (the per-metric override when one matched, else the
/// default).
struct MetricDelta {
  std::string name;
  std::string unit;
  double old_median = 0.0;
  double new_median = 0.0;
  double ratio = 0.0;
  double threshold = 0.0;
  bool regression = false;
};

struct BenchDiff {
  std::vector<MetricDelta> deltas;
  /// Structural mismatches that are not regressions: metrics missing on
  /// one side, unit/direction disagreements.
  std::vector<std::string> warnings;
  bool has_regression = false;
};

/// Compares shared metrics of two reports; a metric regresses when its
/// median moved against its `better` direction by more than `threshold`
/// (fractional, e.g. 0.10 = 10%).
BenchDiff CompareBenchReports(const BenchReport& old_report,
                              const BenchReport& new_report,
                              double threshold);

/// As above, with per-metric threshold overrides: a metric named in
/// `metric_thresholds` is judged against its own threshold instead of the
/// default. Overrides naming metrics absent from both reports are
/// reported as warnings (a renamed benchmark must not silently loosen the
/// gate).
BenchDiff CompareBenchReports(
    const BenchReport& old_report, const BenchReport& new_report,
    double threshold, const std::map<std::string, double>& metric_thresholds);

/// Provenance hygiene for a comparison: a warning per side whose `git`
/// field carries a "-dirty" suffix (the artifact was produced from an
/// uncommitted tree) or is empty. Baselines must come from clean
/// checkouts or the trajectory is untraceable.
std::vector<std::string> ProvenanceWarnings(const BenchReport& old_report,
                                            const BenchReport& new_report);

}  // namespace podium::bench

#endif  // PODIUM_BENCH_COMMON_BENCH_REPORT_H_
