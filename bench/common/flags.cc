#include "bench/common/flags.h"

#include <cstdio>
#include <cstdlib>

#include "podium/util/parse.h"

namespace podium::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s' (use --key=value)\n",
                   arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";  // bare --flag means boolean true
      consumed_[arg] = false;
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      consumed_[arg.substr(0, eq)] = false;
    }
  }
}

std::int64_t Flags::Int(const std::string& key, std::int64_t default_value) {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  consumed_[key] = true;
  // Checked parse: "--users=10k" used to strtoll-salvage into 10; now a
  // malformed value aborts the run instead of silently shrinking it.
  const Result<std::int64_t> parsed = util::ParseInt64(it->second);
  if (!parsed.ok()) {
    std::fprintf(stderr, "--%s: %s\n", key.c_str(),
                 parsed.status().message().c_str());
    std::exit(2);
  }
  return parsed.value();
}

double Flags::Double(const std::string& key, double default_value) {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  consumed_[key] = true;
  const Result<double> parsed = util::ParseDouble(it->second);
  if (!parsed.ok()) {
    std::fprintf(stderr, "--%s: %s\n", key.c_str(),
                 parsed.status().message().c_str());
    std::exit(2);
  }
  return parsed.value();
}

std::string Flags::String(const std::string& key, std::string default_value) {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  consumed_[key] = true;
  return it->second;
}

bool Flags::Bool(const std::string& key, bool default_value) {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  consumed_[key] = true;
  return it->second == "true" || it->second == "1";
}

void Flags::CheckConsumed() const {
  bool bad = false;
  for (const auto& [key, consumed] : consumed_) {
    if (!consumed) {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      bad = true;
    }
  }
  if (bad) std::exit(2);
}

}  // namespace podium::bench
