// Figure 6: the effect of profile size on execution time.
//
// Fixes the population at 8K users (the paper's setting) and sweeps the
// category vocabulary, which drives the average profile size. Expected
// shape: running time linear in the average profile size; Clustering well
// above Podium and Distance.
//
// Flags: --users --budget --seed --telemetry-out

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/common/flags.h"
#include "bench/common/harness.h"
#include "podium/datagen/generator.h"
#include "podium/util/stopwatch.h"
#include "podium/util/string_util.h"

namespace {

template <typename T>
T Unwrap(podium::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  const auto users = static_cast<std::size_t>(flags.Int("users", 8000));
  const auto budget = static_cast<std::size_t>(flags.Int("budget", 8));
  const auto seed = static_cast<std::uint64_t>(flags.Int("seed", 7));
  const std::string telemetry_out = podium::bench::InitTelemetry(flags);
  podium::bench::InitThreads(flags);
  flags.CheckConsumed();

  podium::bench::PrintBanner(
      "Figure 6 — execution time vs. profile size",
      podium::util::StringPrintf(
          "%zu users; category vocabulary sweep drives the mean profile "
          "size (seconds)",
          users));

  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> cells;
  for (std::size_t leaves : {15, 30, 60, 120, 240}) {
    podium::datagen::DatasetConfig config;
    config.num_users = users;
    config.num_restaurants = users * 2;
    config.leaf_categories = leaves;
    config.num_cities = 30;
    config.min_reviews_per_user = 10;
    config.max_reviews_per_user = 80;
    config.holdout_destinations = 0;
    config.seed = seed;
    const podium::datagen::Dataset data =
        Unwrap(podium::datagen::GenerateDataset(config));

    podium::InstanceOptions options;
    options.budget = budget;
    podium::util::Stopwatch grouping_watch;
    const podium::DiversificationInstance instance = Unwrap(
        podium::DiversificationInstance::Build(data.repository, options));
    const double grouping_seconds = grouping_watch.ElapsedSeconds();

    const auto selectors = podium::bench::StandardSelectors(seed + 1);
    const auto runs =
        podium::bench::RunSelectors(selectors, instance, budget);
    // select_seconds excludes selector-internal setup so the column
    // tracks the selection loop itself (see TimedSelection).
    std::vector<double> row;
    for (const auto& run : runs) row.push_back(run.select_seconds);
    row.push_back(grouping_seconds);
    cells.push_back(row);
    row_labels.push_back(podium::util::StringPrintf(
        "%.0f props/user", data.repository.MeanProfileSize()));
  }

  podium::bench::PrintAbsoluteTable(
      "profile size",
      {"Podium", "Random", "Clustering", "Distance", "(grouping)"},
      row_labels, cells, 4);
  std::printf(
      "\nExpected shape (paper): running time linear in the average "
      "profile size; Clustering well above Podium and Distance.\n");
  podium::bench::FinishTelemetry(telemetry_out);
  return 0;
}
