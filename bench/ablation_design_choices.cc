// Ablation of Podium's design choices on the TripAdvisor-like dataset:
//
//   1. weight function (Iden / LBS / EBS) x coverage function (Single /
//      Prop) — Def. 3.6/3.7; the paper's Example 3.8 predicts Iden leans
//      to "eccentric" users (fewer large groups covered) while LBS/EBS
//      prefer large-group representatives;
//   2. bucketing method (Section 3.2 lists equal-width / quantile /
//      1-d k-means / Jenks / KDE as alternatives for computing β(p));
//   3. plain-scan vs. lazy-heap greedy (identical output, different
//      argmax cost);
//   4. extra comparison-space baselines beyond the paper's three:
//      stratified sampling (Table 1's survey row), MMR (related-work
//      [20]) and the T-Model (Table 1's predicted-coverage row), against
//      Podium on the intrinsic metrics.
//
// Flags: --users --restaurants --leaves --budget --seed --telemetry-out

#include <cstdio>
#include <cstdlib>

#include "bench/common/flags.h"
#include "bench/common/harness.h"
#include "podium/baselines/mmr_selector.h"
#include "podium/baselines/stratified_selector.h"
#include "podium/baselines/tmodel_selector.h"
#include "podium/core/greedy.h"
#include "podium/datagen/generator.h"
#include "podium/metrics/intrinsic.h"
#include "podium/util/stopwatch.h"
#include "podium/util/string_util.h"

namespace {

template <typename T>
T Unwrap(podium::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  podium::datagen::DatasetConfig config =
      podium::datagen::DatasetConfig::TripAdvisorLike();
  config.num_users = static_cast<std::size_t>(flags.Int("users", 4475));
  config.num_restaurants = static_cast<std::size_t>(
      flags.Int("restaurants", 20000));
  config.leaf_categories =
      static_cast<std::size_t>(flags.Int("leaves", 160));
  config.seed = static_cast<std::uint64_t>(flags.Int("seed", 7));
  const auto budget = static_cast<std::size_t>(flags.Int("budget", 8));
  const std::string telemetry_out = podium::bench::InitTelemetry(flags);
  podium::bench::InitThreads(flags);
  flags.CheckConsumed();

  podium::bench::PrintBanner("Ablation — Podium design choices",
                             "TripAdvisor-like dataset; B = 8");
  const podium::datagen::Dataset data =
      Unwrap(podium::datagen::GenerateDataset(config));
  std::printf("dataset: %zu users, %zu properties\n\n",
              data.repository.user_count(),
              data.repository.property_count());

  // --- 1. weight x coverage ------------------------------------------------
  std::printf("[1] weight function x coverage function\n");
  {
    std::vector<std::string> row_labels;
    std::vector<std::vector<double>> cells;
    for (podium::WeightKind weight :
         {podium::WeightKind::kIden, podium::WeightKind::kLbs,
          podium::WeightKind::kEbs}) {
      for (podium::CoverageKind coverage :
           {podium::CoverageKind::kSingle, podium::CoverageKind::kProp}) {
        podium::InstanceOptions options;
        options.weight_kind = weight;
        options.coverage_kind = coverage;
        options.budget = budget;
        const podium::DiversificationInstance instance =
            Unwrap(podium::DiversificationInstance::Build(data.repository,
                                                          options));
        const podium::Selection selection =
            Unwrap(podium::GreedySelector().Select(instance, budget));
        // Metrics are evaluated against a common reference instance so
        // numbers are comparable: LBS/Single, the experiment default.
        podium::InstanceOptions reference_options;
        reference_options.budget = budget;
        const podium::DiversificationInstance reference =
            Unwrap(podium::DiversificationInstance::Build(data.repository,
                                                          reference_options));
        const podium::metrics::IntrinsicMetrics m =
            podium::metrics::ComputeIntrinsicMetrics(reference,
                                                     selection.users, 200);
        row_labels.push_back(podium::util::StringPrintf(
            "%s/%s", podium::WeightKindName(weight).data(),
            podium::CoverageKindName(coverage).data()));
        cells.push_back({m.total_score, m.top_k_coverage,
                         m.intersected_coverage, m.distribution_similarity});
      }
    }
    podium::bench::PrintAbsoluteTable(
        "weights/coverage",
        {"LBS score", "top-200 cov", "intersect cov", "dist sim"},
        row_labels, cells);
  }

  // --- 2. bucketing method --------------------------------------------------
  std::printf("\n[2] bucketing method for beta(p)\n");
  {
    std::vector<std::string> row_labels;
    std::vector<std::vector<double>> cells;
    for (const char* method :
         {"equal-width", "quantile", "kmeans-1d", "jenks", "kde"}) {
      podium::InstanceOptions options;
      options.grouping.bucket_method = method;
      options.budget = budget;
      podium::util::Stopwatch watch;
      const podium::DiversificationInstance instance =
          Unwrap(podium::DiversificationInstance::Build(data.repository,
                                                        options));
      const double grouping_seconds = watch.ElapsedSeconds();
      const podium::Selection selection =
          Unwrap(podium::GreedySelector().Select(instance, budget));
      const podium::metrics::IntrinsicMetrics m =
          podium::metrics::ComputeIntrinsicMetrics(instance, selection.users,
                                                   200);
      row_labels.push_back(method);
      cells.push_back({static_cast<double>(instance.groups().group_count()),
                       m.total_score, m.top_k_coverage,
                       m.distribution_similarity, grouping_seconds});
    }
    podium::bench::PrintAbsoluteTable(
        "bucketizer",
        {"groups", "score", "top-200 cov", "dist sim", "group (s)"},
        row_labels, cells);
  }

  // --- 3. plain vs. lazy greedy ----------------------------------------------
  std::printf("\n[3] greedy argmax strategy (identical output required)\n");
  {
    podium::InstanceOptions options;
    options.budget = budget;
    const podium::DiversificationInstance instance = Unwrap(
        podium::DiversificationInstance::Build(data.repository, options));
    podium::GreedyOptions plain;
    plain.mode = podium::GreedyMode::kPlainScan;
    podium::GreedyOptions lazy;
    lazy.mode = podium::GreedyMode::kLazyHeap;

    podium::util::Stopwatch plain_watch;
    const podium::Selection plain_selection =
        Unwrap(podium::GreedySelector(plain).Select(instance, budget));
    const double plain_seconds = plain_watch.ElapsedSeconds();
    podium::util::Stopwatch lazy_watch;
    const podium::Selection lazy_selection =
        Unwrap(podium::GreedySelector(lazy).Select(instance, budget));
    const double lazy_seconds = lazy_watch.ElapsedSeconds();

    std::printf("  plain-scan: %.4fs, lazy-heap: %.4fs, outputs %s\n",
                plain_seconds, lazy_seconds,
                plain_selection.users == lazy_selection.users ? "IDENTICAL"
                                                              : "DIFFER!");
    if (!(plain_selection.users == lazy_selection.users)) return 1;
  }

  // --- 4. extra baselines -----------------------------------------------------
  std::printf("\n[4] extra baselines (stratified, MMR, T-Model) vs. Podium\n");
  {
    podium::InstanceOptions options;
    options.budget = budget;
    const podium::DiversificationInstance instance = Unwrap(
        podium::DiversificationInstance::Build(data.repository, options));
    std::vector<std::string> row_labels;
    std::vector<std::vector<double>> cells;
    podium::GreedySelector podium_selector;
    podium::baselines::StratifiedSelector stratified("livesIn ");
    podium::baselines::MmrSelector mmr(0.5);
    // T-Model diversifies on the single most-supported score property.
    podium::baselines::TModelSelector::Options tmodel_options;
    {
      std::size_t best_support = 0;
      const podium::PropertyTable& table = data.repository.properties();
      for (podium::PropertyId p = 0; p < table.size(); ++p) {
        if (table.Kind(p) != podium::PropertyKind::kScore) continue;
        const std::size_t support = data.repository.SupportCount(p);
        if (support > best_support) {
          best_support = support;
          tmodel_options.property_label = table.Label(p);
        }
      }
    }
    podium::baselines::TModelSelector tmodel(tmodel_options);
    const podium::Selector* selectors[] = {&podium_selector, &stratified,
                                           &mmr, &tmodel};
    for (const podium::Selector* selector : selectors) {
      const podium::Selection selection =
          Unwrap(selector->Select(instance, budget));
      const podium::metrics::IntrinsicMetrics m =
          podium::metrics::ComputeIntrinsicMetrics(instance,
                                                   selection.users, 200);
      row_labels.push_back(selector->Name());
      cells.push_back({m.total_score, m.top_k_coverage,
                       m.intersected_coverage, m.distribution_similarity});
    }
    podium::bench::PrintAbsoluteTable(
        "selector",
        {"LBS score", "top-200 cov", "intersect cov", "dist sim"},
        row_labels, cells);
    std::printf(
        "\nExpected shape (Table 1): stratified sampling is proportional "
        "on its single demographic axis and the T-Model realizes its\n"
        "target distribution in its one category, but neither covers the "
        "high-dimensional groups; MMR diversifies by distance and\n"
        "misses coverage, like the distance-based baseline.\n");
  }
  podium::bench::FinishTelemetry(telemetry_out);
  return 0;
}
