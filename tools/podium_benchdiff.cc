// podium_benchdiff — compares two canonical BENCH_*.json artifacts (see
// bench/common/bench_report.h) and fails on perf regressions, so every
// PR's benchmark delta is machine-checked against the committed baseline.
//
//   podium_benchdiff OLD.json NEW.json [--threshold=0.10] [--warn-only]
//                    [--metric-threshold=NAME=0.25 ...]
//   podium_benchdiff --self-test
//
// A metric regresses when its median moved against its "better" direction
// by more than --threshold (fraction; default 0.10 = 10%). Repeatable
// --metric-threshold flags override the default for individual metrics —
// CI uses them to keep noisy microbenchmarks from flapping the enforcing
// gate while holding stable ones tight.
//
// Either side built from a dirty tree (a "-dirty" git provenance) prints
// a note; baselines must be regenerated from clean checkouts.
//
// Exit codes:
//   0  no regression (or --warn-only and only regressions were found)
//   1  regression beyond the threshold
//   2  usage error, unreadable input, or schema violation (NEVER downgraded
//      by --warn-only: a malformed artifact must fail CI loudly)
//
// --self-test builds two in-memory reports with a synthetic 20%
// regression and verifies the comparison flags it (and that a 5% wobble
// passes), proving the gate can actually fail.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/common/bench_report.h"
#include "podium/obs/log.h"
#include "podium/util/parse.h"

namespace {

using podium::bench::BenchDiff;
using podium::bench::BenchMetric;
using podium::bench::BenchReport;
using podium::bench::CompareBenchReports;

void PrintUsage() {
  // Usage text is for humans on a terminal, not log pipelines.
  // podium-lint: allow(raw-stderr)
  std::fprintf(stderr,
               "usage: podium_benchdiff OLD.json NEW.json "
               "[--threshold=0.10] [--warn-only]\n"
               "                       [--metric-threshold=NAME=0.25 ...]\n"
               "       podium_benchdiff --self-test\n");
}

int SelfTest() {
  BenchReport baseline;
  baseline.bench = "self-test";
  baseline.metrics["select_ms"] = BenchMetric{"ms", "lower", 100.0, 110.0};
  baseline.metrics["throughput_rps"] =
      BenchMetric{"req/s", "higher", 5000.0, 5200.0};

  // 20% slower and 20% less throughput: both must be flagged.
  BenchReport regressed = baseline;
  regressed.metrics["select_ms"].median = 120.0;
  regressed.metrics["throughput_rps"].median = 4000.0;
  const BenchDiff bad = CompareBenchReports(baseline, regressed, 0.10);
  std::size_t flagged = 0;
  for (const auto& delta : bad.deltas) flagged += delta.regression ? 1 : 0;
  if (!bad.has_regression || flagged != 2) {
    podium::obs::LogError("self-test failed: 20% regression not flagged")
        .Num("flagged", static_cast<double>(flagged));
    return 1;
  }

  // 5% wobble stays under a 10% threshold.
  BenchReport wobble = baseline;
  wobble.metrics["select_ms"].median = 105.0;
  wobble.metrics["throughput_rps"].median = 4800.0;
  if (CompareBenchReports(baseline, wobble, 0.10).has_regression) {
    podium::obs::LogError("self-test failed: 5% wobble flagged at 10%");
    return 1;
  }

  // A per-metric override tightens just its metric: the same 5% wobble
  // must regress under a 2% override on select_ms while the other metric
  // keeps the 10% default.
  const BenchDiff tightened =
      CompareBenchReports(baseline, wobble, 0.10, {{"select_ms", 0.02}});
  std::size_t tight_flagged = 0;
  for (const auto& delta : tightened.deltas) {
    tight_flagged += delta.regression ? 1 : 0;
  }
  if (!tightened.has_regression || tight_flagged != 1) {
    podium::obs::LogError(
        "self-test failed: per-metric 2% override not applied")
        .Num("flagged", static_cast<double>(tight_flagged));
    return 1;
  }

  // Dirty provenance on either side must produce exactly one warning for
  // that side; two clean hashes produce none.
  BenchReport clean = baseline;
  clean.git = "abc1234";
  BenchReport dirty = baseline;
  dirty.git = "abc1234-dirty";
  if (podium::bench::ProvenanceWarnings(clean, dirty).size() != 1 ||
      !podium::bench::ProvenanceWarnings(clean, clean).empty()) {
    podium::obs::LogError("self-test failed: dirty provenance not flagged");
    return 1;
  }

  // Round-trip through the JSON schema must preserve the verdict.
  const podium::Result<BenchReport> reparsed =
      podium::bench::BenchReportFromJson(
          podium::bench::BenchReportToJson(regressed));
  if (!reparsed.ok() ||
      !CompareBenchReports(baseline, reparsed.value(), 0.10).has_regression) {
    podium::obs::LogError("self-test failed: JSON round-trip lost the "
                          "regression");
    return 1;
  }
  std::printf("podium_benchdiff self-test: ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  podium::obs::SetMinLogLevel(podium::obs::LogLevel::kInfo);
  std::vector<std::string> paths;
  double threshold = 0.10;
  std::map<std::string, double> metric_thresholds;
  bool warn_only = false;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      const podium::Result<double> parsed =
          podium::util::ParseDouble(arg.substr(12));
      if (!parsed.ok() || parsed.value() < 0.0) {
        podium::obs::LogError("bad --threshold").Str("value", arg.substr(12));
        return 2;
      }
      threshold = parsed.value();
    } else if (arg.rfind("--metric-threshold=", 0) == 0) {
      const std::string spec = arg.substr(19);
      const std::size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) {
        podium::obs::LogError("bad --metric-threshold (want NAME=FRACTION)")
            .Str("value", spec);
        return 2;
      }
      const podium::Result<double> parsed =
          podium::util::ParseDouble(spec.substr(eq + 1));
      if (!parsed.ok() || parsed.value() < 0.0) {
        podium::obs::LogError("bad --metric-threshold fraction")
            .Str("value", spec);
        return 2;
      }
      metric_thresholds[spec.substr(0, eq)] = parsed.value();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 2;
    } else if (!arg.empty() && arg.front() == '-') {
      podium::obs::LogError("unknown option").Str("option", arg);
      PrintUsage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (self_test) return SelfTest();
  if (paths.size() != 2) {
    PrintUsage();
    return 2;
  }

  // Schema violations and unreadable files exit 2 regardless of
  // --warn-only: CI treats them as hard failures.
  const podium::Result<BenchReport> old_report =
      podium::bench::LoadBenchReport(paths[0]);
  if (!old_report.ok()) {
    podium::obs::LogError("cannot load baseline report")
        .Str("path", paths[0])
        .Str("error", old_report.status().ToString());
    return 2;
  }
  const podium::Result<BenchReport> new_report =
      podium::bench::LoadBenchReport(paths[1]);
  if (!new_report.ok()) {
    podium::obs::LogError("cannot load new report")
        .Str("path", paths[1])
        .Str("error", new_report.status().ToString());
    return 2;
  }

  const BenchDiff diff = CompareBenchReports(
      old_report.value(), new_report.value(), threshold, metric_thresholds);
  std::printf("benchdiff: %s (%s) vs %s (%s), threshold %.0f%%\n",
              paths[0].c_str(), old_report->git.c_str(), paths[1].c_str(),
              new_report->git.c_str(), threshold * 100.0);
  for (const auto& delta : diff.deltas) {
    std::printf("  %-44s %12.4g -> %12.4g %-6s %+7.1f%% (gate %.0f%%)%s\n",
                delta.name.c_str(), delta.old_median, delta.new_median,
                delta.unit.c_str(), delta.ratio * 100.0,
                delta.threshold * 100.0,
                delta.regression ? "  REGRESSION" : "");
  }
  for (const std::string& warning : diff.warnings) {
    std::printf("  note: %s\n", warning.c_str());
  }
  for (const std::string& warning : podium::bench::ProvenanceWarnings(
           old_report.value(), new_report.value())) {
    std::printf("  note: %s\n", warning.c_str());
    podium::obs::LogWarn("bench provenance").Str("warning", warning);
  }
  if (diff.has_regression) {
    if (warn_only) {
      podium::obs::LogWarn("perf regression beyond threshold (warn-only)")
          .Num("threshold", threshold);
      return 0;
    }
    podium::obs::LogError("perf regression beyond threshold")
        .Num("threshold", threshold);
    return 1;
  }
  std::printf("benchdiff: no regression beyond %.0f%%\n", threshold * 100.0);
  return 0;
}
