// podium — command-line front end to the library (the prototype's back
// end without the web UI).
//
// Commands:
//   podium groups  --profiles=FILE [--bucket=METHOD] [--buckets=K]
//       List the derived simple groups with their sizes.
//   podium select  --profiles=FILE [--budget=B] [--weights=Iden|LBS|EBS]
//                  [--coverage=Single|Prop] [--bucket=METHOD]
//                  [--must-have=LABEL;...] [--must-not=LABEL;...]
//                  [--priority=LABEL;...] [--json] [--html=FILE]
//                  [--timing] [--telemetry-out=FILE]
//       Select a diverse user subset and print the explanation report
//       (or a JSON document with --json). The customization lists take
//       group labels as printed by `podium groups`, ';'-separated.
//       --timing prints a human-readable phase/counter summary after the
//       report; --telemetry-out writes the full telemetry JSON export
//       (schema in DESIGN.md §"Telemetry & profiling").
//   podium suggest --profiles=FILE [--budget=B] [--max=N]
//       Select, then print refinement suggestions (groups to prioritize,
//       exclude or stop diversifying on) with rationales.
//   podium run-config --profiles=FILE --configs=FILE [--name=CONFIG]
//       Run a named diversification configuration (Section 7's
//       administrator-provided configs; see core/configuration.h for the
//       JSON schema). Without --name, every configuration runs.
//   podium ingest-yelp --business=FILE --review=FILE --user=FILE
//                      --out=FILE [--max-users=N]
//       Build a profile repository from a copy of the Yelp Open Dataset
//       (the paper's real evaluation data) and save it as JSON/CSV.
//   podium convert --profiles=FILE --out=FILE
//       Convert between the JSON and CSV repository formats (direction
//       inferred from the file extensions).
//
// Profiles are read from JSON (see RepositoryFromJson) or CSV (long form)
// depending on the extension.
//
// Every command accepts --threads=N to size the parallel execution
// engine's thread pool (0 = automatic: the PODIUM_THREADS environment
// variable, then the hardware concurrency).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/common/flags.h"
#include "podium/core/podium.h"
#include "podium/ingest/yelp.h"
#include "podium/obs/log.h"
#include "podium/json/writer.h"
#include "podium/telemetry/export.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/string_util.h"
#include "podium/util/thread_pool.h"

namespace {

using podium::util::EndsWith;
using podium::util::Split;

template <typename T>
T Unwrap(podium::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "podium: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const podium::Status& status) {
  if (!status.ok()) {
    std::cerr << "podium: " << status << "\n";
    std::exit(1);
  }
}

podium::ProfileRepository LoadRepository(const std::string& path) {
  if (EndsWith(path, ".csv")) {
    return Unwrap(podium::LoadRepositoryCsv(path));
  }
  return Unwrap(podium::LoadRepositoryJson(path));
}

/// Resolves ';'-separated group labels to ids; aborts on unknown labels.
std::vector<podium::GroupId> ResolveGroups(
    const podium::DiversificationInstance& instance,
    const std::string& labels) {
  std::vector<podium::GroupId> groups;
  if (labels.empty()) return groups;
  for (const std::string& label : Split(labels, ';')) {
    if (label.empty()) continue;
    podium::GroupId found = podium::kInvalidGroup;
    for (podium::GroupId g = 0; g < instance.groups().group_count(); ++g) {
      if (instance.groups().label(g) == label) {
        found = g;
        break;
      }
    }
    if (found == podium::kInvalidGroup) {
      std::cerr << "podium: unknown group label '" << label
                << "' (run `podium groups` to list labels)\n";
      std::exit(1);
    }
    groups.push_back(found);
  }
  return groups;
}

podium::DiversificationInstance BuildInstance(
    const podium::ProfileRepository& repository, podium::bench::Flags& flags,
    std::size_t budget) {
  podium::InstanceOptions options;
  options.grouping.bucket_method = flags.String("bucket", "quantile");
  options.grouping.max_buckets =
      static_cast<int>(flags.Int("buckets", 3));
  options.weight_kind =
      Unwrap(podium::ParseWeightKind(flags.String("weights", "LBS")));
  options.coverage_kind =
      Unwrap(podium::ParseCoverageKind(flags.String("coverage", "Single")));
  options.budget = budget;
  return Unwrap(podium::DiversificationInstance::Build(repository, options));
}

int RunGroups(podium::bench::Flags& flags) {
  const std::string path = flags.String("profiles", "");
  if (path.empty()) {
    std::cerr << "podium groups: --profiles=FILE is required\n";
    return 2;
  }
  const podium::ProfileRepository repository = LoadRepository(path);
  const podium::DiversificationInstance instance =
      BuildInstance(repository, flags, /*budget=*/8);
  flags.CheckConsumed();

  std::printf("%zu users, %zu properties, %zu groups\n\n",
              repository.user_count(), repository.property_count(),
              instance.groups().group_count());
  for (podium::GroupId g : instance.groups().GroupsBySizeDescending()) {
    std::printf("%8zu  %s\n", instance.groups().group_size(g),
                instance.groups().label(g).c_str());
  }
  return 0;
}

podium::json::Value SelectionToJson(
    const podium::DiversificationInstance& instance,
    const podium::Selection& selection) {
  podium::json::Object root;
  root.Set("score", podium::json::Value(selection.score));
  podium::json::Array users;
  for (podium::UserId u : selection.users) {
    const podium::UserExplanation explanation =
        podium::ExplainUser(instance, u);
    podium::json::Object user;
    user.Set("name", podium::json::Value(explanation.name));
    podium::json::Array groups;
    for (const podium::GroupExplanation& g : explanation.groups) {
      podium::json::Object group;
      group.Set("label", podium::json::Value(g.label));
      group.Set("weight", podium::json::Value(g.weight));
      group.Set("cov", podium::json::Value(
                           static_cast<double>(g.required_coverage)));
      groups.emplace_back(std::move(group));
    }
    user.Set("groups", podium::json::Value(std::move(groups)));
    users.emplace_back(std::move(user));
  }
  root.Set("users", podium::json::Value(std::move(users)));
  return podium::json::Value(std::move(root));
}

int RunSelect(podium::bench::Flags& flags) {
  const std::string path = flags.String("profiles", "");
  if (path.empty()) {
    std::cerr << "podium select: --profiles=FILE is required\n";
    return 2;
  }
  const auto budget = static_cast<std::size_t>(flags.Int("budget", 8));
  const bool timing = flags.Bool("timing", false);
  const std::string telemetry_out = flags.String("telemetry-out", "");
  // Enable before instance construction so grouping/bucketizing phases
  // are captured too.
  if (timing || !telemetry_out.empty()) podium::telemetry::SetEnabled(true);
  const podium::ProfileRepository repository = LoadRepository(path);
  const podium::DiversificationInstance instance =
      BuildInstance(repository, flags, budget);

  podium::CustomizationFeedback feedback;
  feedback.must_have = ResolveGroups(instance, flags.String("must-have", ""));
  feedback.must_not = ResolveGroups(instance, flags.String("must-not", ""));
  feedback.priority = ResolveGroups(instance, flags.String("priority", ""));
  const bool as_json = flags.Bool("json", false);
  const std::string html_path = flags.String("html", "");
  flags.CheckConsumed();

  podium::Selection selection;
  if (feedback.must_have.empty() && feedback.must_not.empty() &&
      feedback.priority.empty()) {
    selection = Unwrap(podium::GreedySelector().Select(instance, budget));
  } else {
    podium::CustomSelection custom =
        Unwrap(podium::SelectCustomized(instance, feedback, budget));
    selection = std::move(custom.selection);
    if (!as_json) {
      std::printf("customized: pool %zu users, priority score %s\n\n",
                  custom.refined_pool_size,
                  podium::util::FormatDouble(custom.score.priority).c_str());
    }
  }

  if (!html_path.empty()) {
    Check(podium::WriteHtmlReport(instance, selection, html_path));
    std::printf("wrote %s\n", html_path.c_str());
  }
  if (as_json) {
    podium::json::WriteOptions options;
    options.indent = 2;
    std::printf("%s\n",
                podium::json::Write(SelectionToJson(instance, selection),
                                    options)
                    .c_str());
  } else {
    std::printf("%s", podium::RenderReport(podium::BuildSelectionReport(
                          instance, selection))
                          .c_str());
  }
  if (timing) {
    std::printf("\n-- timing --\n%s",
                podium::telemetry::RenderTimingSummary().c_str());
  }
  if (!telemetry_out.empty()) {
    Check(podium::telemetry::WriteTelemetryJson(telemetry_out));
    std::printf("wrote telemetry to %s\n", telemetry_out.c_str());
  }
  return 0;
}

int RunIngestYelp(podium::bench::Flags& flags) {
  const std::string business = flags.String("business", "");
  const std::string review = flags.String("review", "");
  const std::string user = flags.String("user", "");
  const std::string out = flags.String("out", "");
  podium::ingest::YelpIngestOptions options;
  options.max_users =
      static_cast<std::size_t>(flags.Int("max-users", 60000));
  flags.CheckConsumed();
  if (business.empty() || review.empty() || user.empty() || out.empty()) {
    std::cerr << "podium ingest-yelp: --business, --review, --user and "
                 "--out are required\n";
    return 2;
  }
  const podium::ingest::YelpDataset data =
      Unwrap(podium::ingest::IngestYelp(business, review, user, options));
  std::printf("ingested %zu businesses, %zu reviews, %zu users "
              "(%zu properties)\n",
              data.businesses_kept, data.reviews_kept,
              data.repository.user_count(),
              data.repository.property_count());
  if (EndsWith(out, ".csv")) {
    Check(podium::SaveRepositoryCsv(data.repository, out));
  } else {
    Check(podium::SaveRepositoryJson(data.repository, out));
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int RunConvert(podium::bench::Flags& flags) {
  const std::string in = flags.String("profiles", "");
  const std::string out = flags.String("out", "");
  flags.CheckConsumed();
  if (in.empty() || out.empty()) {
    std::cerr << "podium convert: --profiles=FILE and --out=FILE required\n";
    return 2;
  }
  const podium::ProfileRepository repository = LoadRepository(in);
  if (EndsWith(out, ".csv")) {
    Check(podium::SaveRepositoryCsv(repository, out));
  } else {
    Check(podium::SaveRepositoryJson(repository, out));
  }
  std::printf("wrote %s (%zu users)\n", out.c_str(),
              repository.user_count());
  return 0;
}

int RunSuggest(podium::bench::Flags& flags) {
  const std::string path = flags.String("profiles", "");
  if (path.empty()) {
    std::cerr << "podium suggest: --profiles=FILE is required\n";
    return 2;
  }
  const auto budget = static_cast<std::size_t>(flags.Int("budget", 8));
  const auto max = static_cast<std::size_t>(flags.Int("max", 10));
  const podium::ProfileRepository repository = LoadRepository(path);
  const podium::DiversificationInstance instance =
      BuildInstance(repository, flags, budget);
  flags.CheckConsumed();

  const podium::Selection selection =
      Unwrap(podium::GreedySelector().Select(instance, budget));
  std::printf("selected %zu users (score %s); suggested refinements:\n\n",
              selection.users.size(),
              podium::util::FormatDouble(selection.score).c_str());
  podium::RefinementOptions options;
  options.max_suggestions = max;
  for (const podium::RefinementSuggestion& suggestion :
       podium::SuggestRefinements(instance, selection, options)) {
    std::printf("  [%-10s] %s\n               %s\n",
                std::string(podium::RefinementKindName(suggestion.kind))
                    .c_str(),
                suggestion.label.c_str(), suggestion.rationale.c_str());
  }
  return 0;
}

int RunConfigCommand(podium::bench::Flags& flags) {
  const std::string profiles = flags.String("profiles", "");
  const std::string configs_path = flags.String("configs", "");
  const std::string only = flags.String("name", "");
  flags.CheckConsumed();
  if (profiles.empty() || configs_path.empty()) {
    std::cerr << "podium run-config: --profiles=FILE and --configs=FILE "
                 "are required\n";
    return 2;
  }
  const podium::ProfileRepository repository = LoadRepository(profiles);
  const std::vector<podium::DiversificationConfig> configs =
      Unwrap(podium::LoadConfigurationsFile(configs_path));

  bool ran_any = false;
  for (const podium::DiversificationConfig& config : configs) {
    if (!only.empty() && config.name != only) continue;
    ran_any = true;
    std::printf("=== %s ===\n%s\n\n", config.name.c_str(),
                config.description.c_str());
    const podium::ConfiguredSelection result =
        Unwrap(podium::RunConfiguration(repository, config));
    if (result.custom_score.has_value()) {
      std::printf("customized: priority score %s\n\n",
                  podium::util::FormatDouble(result.custom_score->priority)
                      .c_str());
    }
    std::printf("%s\n",
                podium::RenderReport(
                    podium::BuildSelectionReport(result.instance,
                                                 result.selection))
                    .c_str());
  }
  if (!ran_any) {
    std::cerr << "podium run-config: no configuration named '" << only
              << "'\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    // Usage text is for humans on a terminal, not log pipelines.
    // podium-lint: allow(raw-stderr)
    std::fprintf(stderr,
                 "usage: podium <groups|select|suggest|run-config|ingest-yelp|convert> [--flags]\n"
                 "see the header of tools/podium_cli.cc for details\n");
    return 2;
  }
  const std::string command = argv[1];
  podium::bench::Flags flags(argc - 1, argv + 1);
  // Every command honors --threads (0 = automatic: PODIUM_THREADS, then
  // hardware concurrency).
  const std::int64_t threads = flags.Int("threads", 0);
  if (threads < 0) {
    podium::obs::LogError("--threads must be >= 0");
    return 2;
  }
  podium::util::ThreadPool::SetGlobalThreadCount(
      static_cast<std::size_t>(threads));
  if (command == "groups") return RunGroups(flags);
  if (command == "select") return RunSelect(flags);
  if (command == "suggest") return RunSuggest(flags);
  if (command == "run-config") return RunConfigCommand(flags);
  if (command == "ingest-yelp") return RunIngestYelp(flags);
  if (command == "convert") return RunConvert(flags);
  podium::obs::LogError("unknown command").Str("command", command);
  return 2;
}
