// Differential-correctness driver: generates small seeded instances and
// asserts that the naïve Algorithm-1 oracle, the optimized selectors
// (plain scan, lazy heap, 1/2/8 threads, forced-scalar and native SIMD
// kernels), and the serve-layer SelectionService all agree byte for byte
// — then fuzzes the JSON and HTTP parsers through their production entry
// points.
//
// Exit status is nonzero on any divergence; every message carries the
// round seed, so a failure reproduces with --seed=<printed> --rounds=1.
//
//   podium_check --rounds=50 --seed=1 --fuzz-iters=200
//   podium_check --rounds=1 --seed=1729        # replay one round
//   podium_check --serve=false --threads=      # core selectors only
//   podium_check --kernel-sweep=false          # ambient kernel variant only
//   podium_check --shard-sweep                 # + sharded engine, K=1,2,8
//   podium_check --shard-sweep --shards=1,4    # custom shard counts

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common/flags.h"
#include "podium/obs/log.h"
#include "podium/util/parse.h"
#include "podium/check/differential.h"
#include "podium/check/fuzz.h"

namespace {

std::vector<std::size_t> ParseSizeList(const char* flag,
                                       const std::string& spec) {
  std::vector<std::size_t> counts;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (!token.empty()) {
      const podium::Result<std::size_t> count = podium::util::ParseSize(token);
      if (!count.ok() || count.value() == 0) {
        podium::obs::LogError("bad count in list flag")
            .Str("flag", flag)
            .Str("value", token);
        std::exit(2);
      }
      counts.push_back(count.value());
    }
    pos = comma + 1;
  }
  return counts;
}

void PrintFailures(const char* stage,
                   const std::vector<std::string>& failures) {
  for (const std::string& failure : failures) {
    podium::obs::LogError("differential check failed")
        .Str("stage", stage)
        .Str("detail", failure);
  }
}

}  // namespace

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  podium::check::DiffOptions options;
  options.seed = static_cast<std::uint64_t>(flags.Int("seed", 1));
  options.rounds = static_cast<int>(flags.Int("rounds", 25));
  options.thread_counts =
      ParseSizeList("--threads", flags.String("threads", "1,2,8"));
  options.with_serve = flags.Bool("serve", true);
  options.sweep_kernel_variants = flags.Bool("kernel-sweep", true);
  if (flags.Bool("shard-sweep", false)) {
    options.shard_counts =
        ParseSizeList("--shards", flags.String("shards", "1,2,8"));
    options.shard_thread_counts =
        ParseSizeList("--shard-threads", flags.String("shard-threads", "1,8"));
  }
  const int fuzz_iters = static_cast<int>(flags.Int("fuzz-iters", 100));
  flags.CheckConsumed();

  const podium::check::DiffReport diff =
      podium::check::RunDifferential(options);
  std::printf("differential: %d rounds, %zu divergences\n", diff.rounds_run,
              diff.divergences.size());
  PrintFailures("differential", diff.divergences);

  const podium::check::FuzzReport json_fuzz =
      podium::check::FuzzJson(options.seed, fuzz_iters);
  std::printf("json fuzz: %d iterations, %zu failures\n",
              json_fuzz.iterations, json_fuzz.failures.size());
  PrintFailures("json-fuzz", json_fuzz.failures);

  const podium::check::FuzzReport http_fuzz =
      podium::check::FuzzHttpRequests(options.seed, fuzz_iters);
  std::printf("http fuzz: %d iterations, %zu failures\n",
              http_fuzz.iterations, http_fuzz.failures.size());
  PrintFailures("http-fuzz", http_fuzz.failures);

  const bool ok = diff.ok() && json_fuzz.ok() && http_fuzz.ok();
  std::printf("%s\n", ok ? "OK" : "DIVERGENCE DETECTED");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
