// podium_lockcheck: proves the lock-order detector fires.
//
//   podium_lockcheck --self-test
//
// Seeds a deliberate lock inversion (acquire A then B, release both,
// acquire B then A — on one thread, so nothing actually deadlocks) and
// exits 1 when the detector reports the cycle. Exit 0 means the detector
// stayed silent on a real inversion; exit 2 means this binary was built
// without -DPODIUM_LOCK_ORDER=ON and there is no detector to test. The
// `lock-order` CI job asserts the nonzero exit, same pattern as
// `podium_benchdiff --self-test`: an enforcement gate has to demonstrate
// it can fail before its green means anything.

#include <cstdio>
#include <string>

#include "podium/analysis/lock_graph.h"
#include "podium/util/mutex.h"

namespace {

void PrintUsage() {
  // Usage text is for humans on a terminal, not log pipelines.
  // podium-lint: allow(raw-stderr)
  std::fprintf(stderr, "usage: podium_lockcheck --self-test\n");
}

int RunSelfTest() {
#if !defined(PODIUM_LOCK_ORDER)
  std::printf("lockcheck: built without PODIUM_LOCK_ORDER; "
              "nothing to test\n");
  return 2;
#else
  int reports = 0;
  std::string rendered;
  podium::analysis::SetLockCycleHandler(
      [&](const podium::analysis::CycleReport& report) {
        ++reports;
        rendered = report.Render();
      });

  podium::util::Mutex a{"lockcheck.a"};
  podium::util::Mutex b{"lockcheck.b"};
  {
    podium::util::MutexLock hold_a(a);
    podium::util::MutexLock hold_b(b);  // records a -> b
  }
  {
    podium::util::MutexLock hold_b(b);
    podium::util::MutexLock hold_a(a);  // must close the cycle
  }

  if (reports == 0) {
    std::printf("lockcheck: FAIL — seeded inversion was not detected\n");
    return 0;  // the CI gate requires nonzero: silent detector = job fails
  }
  std::printf("lockcheck: detector fired on the seeded inversion:\n%s",
              rendered.c_str());
  return 1;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test") {
    return RunSelfTest();
  }
  PrintUsage();
  return 2;
}
