// podium_serve — the Podium selection service: an HTTP/1.1 front end over
// a shared immutable snapshot (repository + prebuilt group index), a
// bounded admission queue, and an LRU result cache.
//
//   podium_serve --profiles=FILE [--port=8080] [--address=127.0.0.1]
//                [--threads=N] [--http-threads=8]
//                [--max-concurrency=4] [--max-queue=64]
//                [--deadline-ms=5000] [--cache-entries=1024]
//                [--bucket=METHOD] [--buckets=K] [--weights=Iden|LBS|EBS]
//                [--coverage=Single|Prop] [--budget=B]
//                [--shards=K] [--shard-strategy=hash|group-affine]
//   podium_serve --generate=tripadvisor|yelp [--users=N] [--seed=S]
//                [--generate-out=FILE] ...
//
// --generate-out writes the generated repository to FILE (JSON or CSV by
// extension) and configures /v1/reload to re-read it — so reload is
// exercisable without a pre-existing profiles file.
//
// Endpoints:
//   POST /v1/select  {"budget": 8, "selector": "greedy",
//                     "weights": "LBS", "coverage": "Single",
//                     "must_have": [...], "must_not": [...],
//                     "priority": [...], "explain": true,
//                     "deadline_ms": 2000}
//   GET  /healthz    liveness + snapshot generation/size/age
//   GET  /metrics    telemetry JSON (counters, latency histograms, phases);
//                    ?format=prometheus for Prometheus text exposition
//   GET  /v1/traces  recent request traces (span trees) from the in-memory
//                    trace ring; ?limit=N caps the count
//   POST /v1/reload  rebuild the snapshot from --profiles and swap it in
//                    atomically (in-flight requests finish on the old one)
//
// Timings and cache status are reported in X-Podium-* response headers so
// cached bodies stay byte-identical to uncached ones. Every response
// carries X-Podium-Trace-Id (client-supplied 32-hex ids are adopted), and
// each request emits a JSON access-log line on stderr; every
// --trace-log-every'th line also carries the request's span tree.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "bench/common/flags.h"
#include "podium/datagen/generator.h"
#include "podium/obs/log.h"
#include "podium/profile/repository_io.h"
#include "podium/serve/handlers.h"
#include "podium/serve/http_server.h"
#include "podium/serve/service.h"
#include "podium/telemetry/telemetry.h"
#include "podium/util/string_util.h"
#include "podium/util/thread_pool.h"

namespace {

using podium::util::EndsWith;

template <typename T>
T Unwrap(podium::Result<T> result) {
  if (!result.ok()) {
    podium::obs::LogError("podium_serve startup failed")
        .Str("error", result.status().ToString());
    std::exit(1);
  }
  return std::move(result).value();
}

podium::ProfileRepository LoadProfiles(const std::string& path) {
  if (EndsWith(path, ".csv")) {
    return Unwrap(podium::LoadRepositoryCsv(path));
  }
  return Unwrap(podium::LoadRepositoryJson(path));
}

podium::ProfileRepository GenerateProfiles(const std::string& preset,
                                           std::size_t users,
                                           std::uint64_t seed) {
  podium::datagen::DatasetConfig config;
  if (preset == "tripadvisor") {
    config = podium::datagen::DatasetConfig::TripAdvisorLike();
  } else if (preset == "yelp") {
    config = podium::datagen::DatasetConfig::YelpLike();
  } else {
    podium::obs::LogError("--generate must be tripadvisor or yelp")
        .Str("value", preset);
    std::exit(2);
  }
  if (users > 0) config.num_users = users;
  config.seed = seed;
  podium::datagen::Dataset dataset =
      Unwrap(podium::datagen::GenerateDataset(config));
  return std::move(dataset.repository);
}

podium::serve::HttpServer* g_server = nullptr;

void HandleSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  // Serving binaries log requests; libraries default to warnings only.
  podium::obs::SetMinLogLevel(podium::obs::LogLevel::kInfo);
  podium::bench::Flags flags(argc, argv);
  std::string profiles = flags.String("profiles", "");
  const std::string generate = flags.String("generate", "");
  const std::string generate_out = flags.String("generate-out", "");
  const auto users = static_cast<std::size_t>(flags.Int("users", 0));
  const auto seed = static_cast<std::uint64_t>(flags.Int("seed", 7));
  const std::string address = flags.String("address", "127.0.0.1");
  const int port = static_cast<int>(flags.Int("port", 8080));
  const std::int64_t threads = flags.Int("threads", 0);

  podium::serve::SnapshotOptions snapshot_options;
  snapshot_options.instance.grouping.bucket_method =
      flags.String("bucket", "quantile");
  snapshot_options.instance.grouping.max_buckets =
      static_cast<int>(flags.Int("buckets", 3));
  snapshot_options.instance.weight_kind = Unwrap(
      podium::ParseWeightKind(flags.String("weights", "LBS")));
  snapshot_options.instance.coverage_kind = Unwrap(
      podium::ParseCoverageKind(flags.String("coverage", "Single")));
  snapshot_options.instance.budget =
      static_cast<std::size_t>(flags.Int("budget", 8));
  snapshot_options.shard.num_shards =
      static_cast<std::size_t>(flags.Int("shards", 1));
  snapshot_options.shard.strategy = Unwrap(podium::shard::ParsePartitionStrategy(
      flags.String("shard-strategy", "hash")));
  if (snapshot_options.shard.num_shards == 0) {
    podium::obs::LogError("--shards must be >= 1");
    return 2;
  }

  podium::serve::ServiceOptions service_options;
  service_options.max_concurrency =
      static_cast<std::size_t>(flags.Int("max-concurrency", 4));
  service_options.max_queue_depth =
      static_cast<std::size_t>(flags.Int("max-queue", 64));
  service_options.default_deadline_ms = flags.Int("deadline-ms", 5000);
  service_options.cache_entries =
      static_cast<std::size_t>(flags.Int("cache-entries", 1024));

  podium::serve::HttpServerOptions http_options;
  http_options.bind_address = address;
  http_options.port = port;
  http_options.worker_threads =
      static_cast<std::size_t>(flags.Int("http-threads", 8));
  http_options.trace_log_every =
      static_cast<std::size_t>(flags.Int("trace-log-every", 100));
  flags.CheckConsumed();

  if (profiles.empty() == generate.empty()) {
    podium::obs::LogError(
        "exactly one of --profiles=FILE or --generate=tripadvisor|yelp "
        "is required");
    return 2;
  }
  if (threads < 0) {
    podium::obs::LogError("--threads must be >= 0");
    return 2;
  }
  podium::util::ThreadPool::SetGlobalThreadCount(
      static_cast<std::size_t>(threads));
  // /metrics serves the telemetry export; keep it recording.
  podium::telemetry::SetEnabled(true);

  podium::ProfileRepository repository =
      profiles.empty() ? GenerateProfiles(generate, users, seed)
                       : LoadProfiles(profiles);
  if (!generate_out.empty()) {
    if (generate.empty()) {
      podium::obs::LogError("--generate-out requires --generate");
      return 2;
    }
    const podium::Status saved =
        EndsWith(generate_out, ".csv")
            ? podium::SaveRepositoryCsv(repository, generate_out)
            : podium::SaveRepositoryJson(repository, generate_out);
    if (!saved.ok()) {
      podium::obs::LogError("cannot write --generate-out")
          .Str("path", generate_out)
          .Str("error", saved.ToString());
      return 2;
    }
    std::printf("podium_serve: wrote generated profiles to %s\n",
                generate_out.c_str());
    // Reload below re-reads this file, so /v1/reload works in
    // --generate mode too.
    profiles = generate_out;
  }
  std::printf("podium_serve: building snapshot over %zu users / %zu "
              "properties...\n",
              repository.user_count(), repository.property_count());
  std::shared_ptr<const podium::serve::Snapshot> snapshot =
      Unwrap(podium::serve::Snapshot::Build(std::move(repository),
                                            snapshot_options,
                                            /*generation=*/1));
  if (snapshot->is_sharded()) {
    std::printf(
        "podium_serve: snapshot generation 1, %zu groups, %zu shards "
        "(%s partition, %.1f MiB adjacency)\n",
        snapshot->group_count(), snapshot->sharded()->shard_count(),
        std::string(podium::shard::PartitionStrategyName(
                        snapshot_options.shard.strategy))
            .c_str(),
        static_cast<double>(snapshot->MemoryBytes()) / (1024.0 * 1024.0));
  } else {
    std::printf("podium_serve: snapshot generation 1, %zu groups\n",
                snapshot->group_count());
  }

  podium::serve::SelectionService service(std::move(snapshot),
                                          service_options);

  // Reload = re-read --profiles, rebuild, atomic swap. Generation bumps so
  // cache keys from the old snapshot stop matching.
  std::uint64_t generation = 1;
  std::function<podium::Status()> reload;
  if (!profiles.empty()) {
    reload = [&service, &generation, profiles, snapshot_options]() {
      podium::Result<podium::ProfileRepository> repository =
          EndsWith(profiles, ".csv") ? podium::LoadRepositoryCsv(profiles)
                                     : podium::LoadRepositoryJson(profiles);
      if (!repository.ok()) return repository.status();
      auto rebuilt = podium::serve::Snapshot::Build(
          std::move(repository).value(), snapshot_options, ++generation);
      if (!rebuilt.ok()) return rebuilt.status();
      service.SwapSnapshot(std::move(rebuilt).value());
      return podium::Status::Ok();
    };
  }

  podium::serve::HttpServer server(
      http_options, podium::serve::MakeServiceHandler(service,
                                                      std::move(reload)));
  const podium::Status started = server.Start();
  if (!started.ok()) {
    podium::obs::LogError("cannot start server")
        .Str("error", started.ToString());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("podium_serve: listening on http://%s:%d "
              "(concurrency %zu, queue %zu, cache %zu, deadline %lld ms)\n",
              address.c_str(), server.port(), service_options.max_concurrency,
              service_options.max_queue_depth, service_options.cache_entries,
              static_cast<long long>(service_options.default_deadline_ms));
  std::fflush(stdout);
  server.Wait();
  std::printf("podium_serve: shutting down\n");
  return 0;
}
