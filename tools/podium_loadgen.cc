// podium_loadgen — closed-loop load generator for podium_serve: N client
// threads each keep one persistent connection and fire POST /v1/select
// back-to-back, then the merged latencies are reported as throughput and
// p50/p95/p99.
//
//   podium_loadgen --port=8080 [--host=127.0.0.1] [--connections=8]
//                  [--requests=1000] [--body-file=FILE] [--distinct=1]
//                  [--explain=false] [--expect-generation=N]
//                  [--bench-out=BENCH_serve.json]
//
// --distinct=K rotates K distinct request bodies (budgets 2..K+1) across
// requests so cache behavior can be exercised from both sides; the
// default sends one identical body, the all-hit regime. --body-file
// overrides the body entirely. Exits non-zero when any request fails
// (transport error or non-2xx), so smoke scripts can assert "zero
// errors".
//
// Every 2xx response's X-Podium-Snapshot header is tallied and the
// distinct snapshot generations exercised are printed; with
// --expect-generation=N a response from any other generation counts as
// an error, so smoke scripts can assert a /v1/reload actually took (e.g.
// a sharded snapshot rebuilt and swapped in).
//
// The summary reports throughput, latency percentiles and a per-HTTP-
// status-code breakdown. --bench-out=PATH additionally writes the run as
// a canonical BENCH_*.json perf artifact (bench/common/bench_report.h)
// for tools/podium_benchdiff.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/bench_report.h"
#include "bench/common/flags.h"
#include "podium/obs/log.h"
#include "podium/serve/http.h"
#include "podium/util/parse.h"
#include "podium/util/stopwatch.h"
#include "podium/util/string_util.h"

namespace {

using podium::bench::Percentile;

struct WorkerResult {
  std::vector<double> latencies_ms;
  std::size_t errors = 0;
  std::size_t cache_hits = 0;
  /// Response count per HTTP status code (0 = transport failure).
  std::map<int, std::size_t> status_counts;
  /// 2xx response count per X-Podium-Snapshot generation (-1 = header
  /// absent or unparseable).
  std::map<long long, std::size_t> generation_counts;
  std::string first_error;
};

}  // namespace

int main(int argc, char** argv) {
  podium::obs::SetMinLogLevel(podium::obs::LogLevel::kInfo);
  podium::bench::Flags flags(argc, argv);
  const std::string host = flags.String("host", "127.0.0.1");
  const int port = static_cast<int>(flags.Int("port", 8080));
  const auto connections =
      static_cast<std::size_t>(flags.Int("connections", 8));
  const auto total_requests =
      static_cast<std::size_t>(flags.Int("requests", 1000));
  const std::string body_file = flags.String("body-file", "");
  const auto distinct = static_cast<std::size_t>(flags.Int("distinct", 1));
  const bool explain = flags.Bool("explain", false);
  const long long expect_generation = flags.Int("expect-generation", 0);
  const std::string bench_out = flags.String("bench-out", "");
  flags.CheckConsumed();
  if (connections == 0 || total_requests == 0 || distinct == 0) {
    podium::obs::LogError(
        "--connections, --requests and --distinct must be >= 1");
    return 2;
  }

  // Request bodies: one fixed body, or K distinct ones varying the budget.
  std::vector<std::string> bodies;
  if (!body_file.empty()) {
    std::ifstream in(body_file, std::ios::binary);
    if (!in) {
      podium::obs::LogError("cannot open body file")
          .Str("path", body_file);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bodies.push_back(buffer.str());
  } else {
    for (std::size_t i = 0; i < distinct; ++i) {
      bodies.push_back(podium::util::StringPrintf(
          "{\"budget\": %zu%s}", i + 2, explain ? ", \"explain\": true" : ""));
    }
  }

  std::atomic<std::size_t> next_request{0};
  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  podium::util::Stopwatch wall;

  for (std::size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& result = results[c];
      podium::serve::HttpClient client;
      podium::Status connected = client.Connect(host, port);
      if (!connected.ok()) {
        result.errors = 1;
        result.first_error = connected.ToString();
        return;
      }
      for (;;) {
        const std::size_t index =
            next_request.fetch_add(1, std::memory_order_relaxed);
        if (index >= total_requests) break;
        podium::serve::HttpRequest request;
        request.method = "POST";
        request.target = "/v1/select";
        request.headers.emplace_back("Host", host);
        request.headers.emplace_back("Content-Type", "application/json");
        request.body = bodies[index % bodies.size()];

        podium::util::Stopwatch clock;
        podium::Result<podium::serve::HttpResponse> response =
            client.RoundTrip(request);
        const double latency_ms = clock.ElapsedMillis();
        if (!response.ok()) {
          ++result.errors;
          ++result.status_counts[0];
          if (result.first_error.empty()) {
            result.first_error = response.status().ToString();
          }
          // Transport failure kills the connection; reconnect and go on.
          if (!client.Connect(host, port).ok()) break;
          continue;
        }
        ++result.status_counts[response->status];
        if (response->status < 200 || response->status >= 300) {
          ++result.errors;
          if (result.first_error.empty()) {
            result.first_error = podium::util::StringPrintf(
                "HTTP %d: %s", response->status,
                response->body.substr(0, 200).c_str());
          }
          continue;
        }
        result.latencies_ms.push_back(latency_ms);
        const std::string* cache = response->FindHeader("X-Podium-Cache");
        if (cache != nullptr && *cache == "hit") ++result.cache_hits;
        const std::string* snapshot =
            response->FindHeader("X-Podium-Snapshot");
        long long generation = -1;
        if (snapshot != nullptr && !snapshot->empty()) {
          const podium::Result<std::int64_t> parsed =
              podium::util::ParseInt64(*snapshot);
          if (parsed.ok()) generation = parsed.value();
        }
        ++result.generation_counts[generation];
        if (expect_generation > 0 && generation != expect_generation) {
          ++result.errors;
          if (result.first_error.empty()) {
            result.first_error = podium::util::StringPrintf(
                "snapshot generation %lld, expected %lld", generation,
                expect_generation);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> latencies;
  std::size_t errors = 0;
  std::size_t cache_hits = 0;
  std::map<int, std::size_t> status_counts;
  std::map<long long, std::size_t> generation_counts;
  std::string first_error;
  for (WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    errors += result.errors;
    cache_hits += result.cache_hits;
    for (const auto& [status, count] : result.status_counts) {
      status_counts[status] += count;
    }
    for (const auto& [generation, count] : result.generation_counts) {
      generation_counts[generation] += count;
    }
    if (first_error.empty()) first_error = result.first_error;
  }
  std::sort(latencies.begin(), latencies.end());

  std::printf("podium_loadgen: %zu requests, %zu ok, %zu errors, "
              "%zu cache hits over %zu connections in %.2fs\n",
              total_requests, latencies.size(), errors, cache_hits,
              connections, elapsed);
  for (const auto& [status, count] : status_counts) {
    if (status == 0) {
      std::printf("  transport errors: %zu\n", count);
    } else {
      std::printf("  HTTP %d: %zu\n", status, count);
    }
  }
  for (const auto& [generation, count] : generation_counts) {
    if (generation < 0) {
      std::printf("  snapshot generation (missing header): %zu\n", count);
    } else {
      std::printf("  snapshot generation %lld: %zu\n", generation, count);
    }
  }
  const double throughput =
      elapsed > 0.0 ? static_cast<double>(latencies.size()) / elapsed : 0.0;
  if (!latencies.empty()) {
    std::printf(
        "  throughput %.1f req/s | latency ms p50 %.3f p95 %.3f p99 %.3f "
        "max %.3f\n",
        throughput, Percentile(latencies, 0.50), Percentile(latencies, 0.95),
        Percentile(latencies, 0.99), latencies.back());
  }

  if (!bench_out.empty()) {
    podium::bench::BenchReport report =
        podium::bench::NewBenchReport("serve");
    report.threads = connections;
    report.repeats = latencies.size();
    report.metrics["throughput_rps"] =
        podium::bench::BenchMetric{"req/s", "higher", throughput, throughput};
    if (!latencies.empty()) {
      // latency_ms carries the distribution directly: median = p50 (the
      // diffed value), p95 = p95. p99 rides as its own metric.
      report.metrics["latency_ms"] = podium::bench::BenchMetric{
          "ms", "lower", Percentile(latencies, 0.50),
          Percentile(latencies, 0.95)};
      const double p99 = Percentile(latencies, 0.99);
      report.metrics["latency_p99_ms"] =
          podium::bench::BenchMetric{"ms", "lower", p99, p99};
    }
    report.notes["connections"] = static_cast<double>(connections);
    report.notes["requests"] = static_cast<double>(total_requests);
    report.notes["errors"] = static_cast<double>(errors);
    report.notes["cache_hits"] = static_cast<double>(cache_hits);
    for (const auto& [status, count] : status_counts) {
      report.notes[podium::util::StringPrintf("status.%d", status)] =
          static_cast<double>(count);
    }
    for (const auto& [generation, count] : generation_counts) {
      report.notes[podium::util::StringPrintf("generation.%lld",
                                              generation)] =
          static_cast<double>(count);
    }
    const podium::Status written =
        podium::bench::WriteBenchReport(report, bench_out);
    if (!written.ok()) {
      podium::obs::LogError("cannot write bench report")
          .Str("path", bench_out)
          .Str("error", written.ToString());
      return 2;
    }
    std::printf("podium_loadgen: wrote %s\n", bench_out.c_str());
  }

  if (errors > 0) {
    podium::obs::LogError("load run saw errors")
        .Num("errors", static_cast<double>(errors))
        .Str("first_error", first_error);
    return 1;
  }
  return 0;
}
