// podium_loadgen — load generator for podium_serve. Two modes:
//
// Closed loop (default): N client threads each keep one persistent
// connection and fire POST /v1/select back-to-back, then the merged
// latencies are reported as throughput and p50/p95/p99.
//
//   podium_loadgen --port=8080 [--host=127.0.0.1] [--connections=8]
//                  [--requests=1000] [--body-file=FILE] [--distinct=1]
//                  [--explain=false] [--expect-generation=N]
//                  [--bench-out=BENCH_serve.json] [--bench-merge=false]
//
// Open loop (--open-loop): requests are scheduled at a fixed arrival rate
// independent of completions (request i fires at t0 + i/rate), and
// latency is measured from the *scheduled* arrival time, so server
// queueing and backlog count against it instead of being silently
// absorbed by a slow client (no coordinated omission). Each --rates entry
// runs for --duration-s seconds, producing one throughput-vs-latency
// curve point per rate:
//
//   podium_loadgen --port=8080 --open-loop --rates=500,1000,2000
//                  [--duration-s=2.0] [--connections=32] ...
//
// --connections bounds in-flight requests (a scheduled arrival past that
// bound waits for a free connection, and the wait counts as latency).
// With --bench-out the curve lands in the report as open.r<RATE>.*
// metrics; --bench-merge=true folds them into an existing report (e.g. a
// closed-loop run's) instead of replacing it.
//
// --distinct=K rotates K distinct request bodies (budgets 2..K+1) across
// requests so cache behavior can be exercised from both sides; the
// default sends one identical body, the all-hit regime. --body-file
// overrides the body entirely. Exits non-zero when any request fails
// (transport error or non-2xx), so smoke scripts can assert "zero
// errors".
//
// Every 2xx response's X-Podium-Snapshot header is tallied and the
// distinct snapshot generations exercised are printed; with
// --expect-generation=N a response from any other generation counts as
// an error, so smoke scripts can assert a /v1/reload actually took (e.g.
// a sharded snapshot rebuilt and swapped in).
//
// The summary reports throughput, latency percentiles and a per-HTTP-
// status-code breakdown. --bench-out=PATH additionally writes the run as
// a canonical BENCH_*.json perf artifact (bench/common/bench_report.h)
// for tools/podium_benchdiff.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/bench_report.h"
#include "bench/common/flags.h"
#include "podium/obs/log.h"
#include "podium/serve/http.h"
#include "podium/util/parse.h"
#include "podium/util/stopwatch.h"
#include "podium/util/string_util.h"

namespace {

using podium::bench::Percentile;

struct WorkerResult {
  std::vector<double> latencies_ms;
  std::size_t errors = 0;
  std::size_t cache_hits = 0;
  /// Response count per HTTP status code (0 = transport failure).
  std::map<int, std::size_t> status_counts;
  /// 2xx response count per X-Podium-Snapshot generation (-1 = header
  /// absent or unparseable).
  std::map<long long, std::size_t> generation_counts;
  std::string first_error;
};

/// One point of the open-loop throughput-vs-latency curve.
struct OpenLoopPoint {
  double offered_rate = 0.0;    // requests/s scheduled
  double achieved_rps = 0.0;    // 2xx completions / wall time
  std::vector<double> latencies_ms;  // sorted, scheduled-time based
  std::size_t sent = 0;
  std::size_t errors = 0;
  std::string first_error;
};

/// Runs one open-loop rate: `total` requests with arrival i scheduled at
/// t0 + i/rate, fired from a pool of `connections` persistent clients.
/// Latency for request i is (completion - scheduled arrival), so time a
/// request spends waiting for a free connection or parked in the server
/// counts against it.
OpenLoopPoint RunOpenLoopRate(const std::string& host, int port,
                              std::size_t connections, double rate,
                              double duration_s,
                              const std::vector<std::string>& bodies) {
  OpenLoopPoint point;
  point.offered_rate = rate;
  const auto total =
      static_cast<std::size_t>(std::max(1.0, rate * duration_s));
  std::atomic<std::size_t> next_request{0};
  std::vector<WorkerResult> results(connections);
  // Small lead-in so every worker is connected before the first arrival.
  const auto t0 =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);

  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& result = results[c];
      podium::serve::HttpClient client;
      if (podium::Status connected = client.Connect(host, port);
          !connected.ok()) {
        result.errors = 1;
        result.first_error = connected.ToString();
        return;
      }
      for (;;) {
        const std::size_t index =
            next_request.fetch_add(1, std::memory_order_relaxed);
        if (index >= total) break;
        const auto scheduled =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(
                         static_cast<double>(index) / rate));
        std::this_thread::sleep_until(scheduled);

        podium::serve::HttpRequest request;
        request.method = "POST";
        request.target = "/v1/select";
        request.headers.emplace_back("Host", host);
        request.headers.emplace_back("Content-Type", "application/json");
        request.body = bodies[index % bodies.size()];

        podium::Result<podium::serve::HttpResponse> response =
            client.RoundTrip(request);
        const double latency_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - scheduled)
                .count();
        if (!response.ok()) {
          ++result.errors;
          if (result.first_error.empty()) {
            result.first_error = response.status().ToString();
          }
          if (!client.Connect(host, port).ok()) break;
          continue;
        }
        if (response->status < 200 || response->status >= 300) {
          ++result.errors;
          if (result.first_error.empty()) {
            result.first_error = podium::util::StringPrintf(
                "HTTP %d: %s", response->status,
                response->body.substr(0, 200).c_str());
          }
          continue;
        }
        result.latencies_ms.push_back(latency_ms);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  point.sent = total;
  for (WorkerResult& result : results) {
    point.latencies_ms.insert(point.latencies_ms.end(),
                              result.latencies_ms.begin(),
                              result.latencies_ms.end());
    point.errors += result.errors;
    if (point.first_error.empty()) point.first_error = result.first_error;
  }
  std::sort(point.latencies_ms.begin(), point.latencies_ms.end());
  point.achieved_rps =
      elapsed > 0.0
          ? static_cast<double>(point.latencies_ms.size()) / elapsed
          : 0.0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  podium::obs::SetMinLogLevel(podium::obs::LogLevel::kInfo);
  podium::bench::Flags flags(argc, argv);
  const std::string host = flags.String("host", "127.0.0.1");
  const int port = static_cast<int>(flags.Int("port", 8080));
  const auto connections =
      static_cast<std::size_t>(flags.Int("connections", 8));
  const auto total_requests =
      static_cast<std::size_t>(flags.Int("requests", 1000));
  const std::string body_file = flags.String("body-file", "");
  const auto distinct = static_cast<std::size_t>(flags.Int("distinct", 1));
  const bool explain = flags.Bool("explain", false);
  const long long expect_generation = flags.Int("expect-generation", 0);
  const std::string bench_out = flags.String("bench-out", "");
  const bool bench_merge = flags.Bool("bench-merge", false);
  const bool open_loop = flags.Bool("open-loop", false);
  const std::string rates_flag = flags.String("rates", "500,1000,2000");
  const double duration_s = flags.Double("duration-s", 2.0);
  flags.CheckConsumed();
  if (connections == 0 || total_requests == 0 || distinct == 0) {
    podium::obs::LogError(
        "--connections, --requests and --distinct must be >= 1");
    return 2;
  }

  // Request bodies: one fixed body, or K distinct ones varying the budget.
  std::vector<std::string> bodies;
  if (!body_file.empty()) {
    std::ifstream in(body_file, std::ios::binary);
    if (!in) {
      podium::obs::LogError("cannot open body file")
          .Str("path", body_file);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bodies.push_back(buffer.str());
  } else {
    for (std::size_t i = 0; i < distinct; ++i) {
      bodies.push_back(podium::util::StringPrintf(
          "{\"budget\": %zu%s}", i + 2, explain ? ", \"explain\": true" : ""));
    }
  }

  if (open_loop) {
    std::vector<double> rates;
    for (const std::string& token :
         podium::util::Split(rates_flag, ',')) {
      const std::string trimmed(podium::util::StripWhitespace(token));
      if (trimmed.empty()) continue;
      const podium::Result<std::int64_t> rate =
          podium::util::ParseInt64(trimmed);
      if (!rate.ok() || rate.value() <= 0) {
        podium::obs::LogError("--rates must be positive integers")
            .Str("rates", rates_flag);
        return 2;
      }
      rates.push_back(static_cast<double>(rate.value()));
    }
    if (rates.empty() || duration_s <= 0.0) {
      podium::obs::LogError("--open-loop needs --rates and --duration-s > 0");
      return 2;
    }

    std::vector<OpenLoopPoint> curve;
    curve.reserve(rates.size());
    std::size_t errors = 0;
    std::string first_error;
    for (double rate : rates) {
      OpenLoopPoint point =
          RunOpenLoopRate(host, port, connections, rate, duration_s, bodies);
      errors += point.errors;
      if (first_error.empty()) first_error = point.first_error;
      if (!point.latencies_ms.empty()) {
        std::printf(
            "podium_loadgen open-loop: offered %.0f req/s achieved %.1f | "
            "%zu sent %zu errors | latency ms p50 %.3f p95 %.3f p99 %.3f\n",
            point.offered_rate, point.achieved_rps, point.sent, point.errors,
            Percentile(point.latencies_ms, 0.50),
            Percentile(point.latencies_ms, 0.95),
            Percentile(point.latencies_ms, 0.99));
      } else {
        std::printf(
            "podium_loadgen open-loop: offered %.0f req/s, no successful "
            "responses (%zu errors)\n",
            point.offered_rate, point.errors);
      }
      curve.push_back(std::move(point));
    }

    if (!bench_out.empty()) {
      podium::bench::BenchReport report =
          podium::bench::NewBenchReport("serve");
      if (bench_merge) {
        // Fold the curve into an existing report (e.g. the closed-loop
        // run's) so one BENCH_serve.json carries both regimes.
        podium::Result<podium::bench::BenchReport> existing =
            podium::bench::LoadBenchReport(bench_out);
        if (existing.ok()) report = std::move(existing).value();
      }
      report.threads = connections;
      for (const OpenLoopPoint& point : curve) {
        const std::string prefix = podium::util::StringPrintf(
            "open.r%.0f", point.offered_rate);
        if (!point.latencies_ms.empty()) {
          report.metrics[prefix + ".latency_ms"] = podium::bench::BenchMetric{
              "ms", "lower", Percentile(point.latencies_ms, 0.50),
              Percentile(point.latencies_ms, 0.95)};
          const double p99 = Percentile(point.latencies_ms, 0.99);
          report.metrics[prefix + ".latency_p99_ms"] =
              podium::bench::BenchMetric{"ms", "lower", p99, p99};
          report.metrics[prefix + ".achieved_rps"] =
              podium::bench::BenchMetric{"req/s", "higher",
                                         point.achieved_rps,
                                         point.achieved_rps};
        }
        report.notes[prefix + ".sent"] = static_cast<double>(point.sent);
        report.notes[prefix + ".errors"] = static_cast<double>(point.errors);
      }
      report.notes["open.duration_s"] = duration_s;
      report.notes["open.connections"] = static_cast<double>(connections);
      const podium::Status written =
          podium::bench::WriteBenchReport(report, bench_out);
      if (!written.ok()) {
        podium::obs::LogError("cannot write bench report")
            .Str("path", bench_out)
            .Str("error", written.ToString());
        return 2;
      }
      std::printf("podium_loadgen: wrote %s\n", bench_out.c_str());
    }

    if (errors > 0) {
      podium::obs::LogError("open-loop run saw errors")
          .Num("errors", static_cast<double>(errors))
          .Str("first_error", first_error);
      return 1;
    }
    return 0;
  }

  std::atomic<std::size_t> next_request{0};
  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  podium::util::Stopwatch wall;

  for (std::size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& result = results[c];
      podium::serve::HttpClient client;
      podium::Status connected = client.Connect(host, port);
      if (!connected.ok()) {
        result.errors = 1;
        result.first_error = connected.ToString();
        return;
      }
      for (;;) {
        const std::size_t index =
            next_request.fetch_add(1, std::memory_order_relaxed);
        if (index >= total_requests) break;
        podium::serve::HttpRequest request;
        request.method = "POST";
        request.target = "/v1/select";
        request.headers.emplace_back("Host", host);
        request.headers.emplace_back("Content-Type", "application/json");
        request.body = bodies[index % bodies.size()];

        podium::util::Stopwatch clock;
        podium::Result<podium::serve::HttpResponse> response =
            client.RoundTrip(request);
        const double latency_ms = clock.ElapsedMillis();
        if (!response.ok()) {
          ++result.errors;
          ++result.status_counts[0];
          if (result.first_error.empty()) {
            result.first_error = response.status().ToString();
          }
          // Transport failure kills the connection; reconnect and go on.
          if (!client.Connect(host, port).ok()) break;
          continue;
        }
        ++result.status_counts[response->status];
        if (response->status < 200 || response->status >= 300) {
          ++result.errors;
          if (result.first_error.empty()) {
            result.first_error = podium::util::StringPrintf(
                "HTTP %d: %s", response->status,
                response->body.substr(0, 200).c_str());
          }
          continue;
        }
        result.latencies_ms.push_back(latency_ms);
        const std::string* cache = response->FindHeader("X-Podium-Cache");
        if (cache != nullptr && *cache == "hit") ++result.cache_hits;
        const std::string* snapshot =
            response->FindHeader("X-Podium-Snapshot");
        long long generation = -1;
        if (snapshot != nullptr && !snapshot->empty()) {
          const podium::Result<std::int64_t> parsed =
              podium::util::ParseInt64(*snapshot);
          if (parsed.ok()) generation = parsed.value();
        }
        ++result.generation_counts[generation];
        if (expect_generation > 0 && generation != expect_generation) {
          ++result.errors;
          if (result.first_error.empty()) {
            result.first_error = podium::util::StringPrintf(
                "snapshot generation %lld, expected %lld", generation,
                expect_generation);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> latencies;
  std::size_t errors = 0;
  std::size_t cache_hits = 0;
  std::map<int, std::size_t> status_counts;
  std::map<long long, std::size_t> generation_counts;
  std::string first_error;
  for (WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    errors += result.errors;
    cache_hits += result.cache_hits;
    for (const auto& [status, count] : result.status_counts) {
      status_counts[status] += count;
    }
    for (const auto& [generation, count] : result.generation_counts) {
      generation_counts[generation] += count;
    }
    if (first_error.empty()) first_error = result.first_error;
  }
  std::sort(latencies.begin(), latencies.end());

  std::printf("podium_loadgen: %zu requests, %zu ok, %zu errors, "
              "%zu cache hits over %zu connections in %.2fs\n",
              total_requests, latencies.size(), errors, cache_hits,
              connections, elapsed);
  for (const auto& [status, count] : status_counts) {
    if (status == 0) {
      std::printf("  transport errors: %zu\n", count);
    } else {
      std::printf("  HTTP %d: %zu\n", status, count);
    }
  }
  for (const auto& [generation, count] : generation_counts) {
    if (generation < 0) {
      std::printf("  snapshot generation (missing header): %zu\n", count);
    } else {
      std::printf("  snapshot generation %lld: %zu\n", generation, count);
    }
  }
  const double throughput =
      elapsed > 0.0 ? static_cast<double>(latencies.size()) / elapsed : 0.0;
  if (!latencies.empty()) {
    std::printf(
        "  throughput %.1f req/s | latency ms p50 %.3f p95 %.3f p99 %.3f "
        "max %.3f\n",
        throughput, Percentile(latencies, 0.50), Percentile(latencies, 0.95),
        Percentile(latencies, 0.99), latencies.back());
  }

  if (!bench_out.empty()) {
    podium::bench::BenchReport report =
        podium::bench::NewBenchReport("serve");
    report.threads = connections;
    report.repeats = latencies.size();
    report.metrics["throughput_rps"] =
        podium::bench::BenchMetric{"req/s", "higher", throughput, throughput};
    if (!latencies.empty()) {
      // latency_ms carries the distribution directly: median = p50 (the
      // diffed value), p95 = p95. p99 rides as its own metric.
      report.metrics["latency_ms"] = podium::bench::BenchMetric{
          "ms", "lower", Percentile(latencies, 0.50),
          Percentile(latencies, 0.95)};
      const double p99 = Percentile(latencies, 0.99);
      report.metrics["latency_p99_ms"] =
          podium::bench::BenchMetric{"ms", "lower", p99, p99};
    }
    report.notes["connections"] = static_cast<double>(connections);
    report.notes["requests"] = static_cast<double>(total_requests);
    report.notes["errors"] = static_cast<double>(errors);
    report.notes["cache_hits"] = static_cast<double>(cache_hits);
    for (const auto& [status, count] : status_counts) {
      report.notes[podium::util::StringPrintf("status.%d", status)] =
          static_cast<double>(count);
    }
    for (const auto& [generation, count] : generation_counts) {
      report.notes[podium::util::StringPrintf("generation.%lld",
                                              generation)] =
          static_cast<double>(count);
    }
    const podium::Status written =
        podium::bench::WriteBenchReport(report, bench_out);
    if (!written.ok()) {
      podium::obs::LogError("cannot write bench report")
          .Str("path", bench_out)
          .Str("error", written.ToString());
      return 2;
    }
    std::printf("podium_loadgen: wrote %s\n", bench_out.c_str());
  }

  if (errors > 0) {
    podium::obs::LogError("load run saw errors")
        .Num("errors", static_cast<double>(errors))
        .Str("first_error", first_error);
    return 1;
  }
  return 0;
}
