// podium_loadgen — closed-loop load generator for podium_serve: N client
// threads each keep one persistent connection and fire POST /v1/select
// back-to-back, then the merged latencies are reported as throughput and
// p50/p95/p99.
//
//   podium_loadgen --port=8080 [--host=127.0.0.1] [--connections=8]
//                  [--requests=1000] [--body-file=FILE] [--distinct=1]
//                  [--explain=false]
//
// --distinct=K rotates K distinct request bodies (budgets 2..K+1) across
// requests so cache behavior can be exercised from both sides; the
// default sends one identical body, the all-hit regime. --body-file
// overrides the body entirely. Exits non-zero when any request fails
// (transport error or non-2xx), so smoke scripts can assert "zero
// errors".

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/flags.h"
#include "podium/serve/http.h"
#include "podium/util/stopwatch.h"
#include "podium/util/string_util.h"

namespace {

struct WorkerResult {
  std::vector<double> latencies_ms;
  std::size_t errors = 0;
  std::size_t cache_hits = 0;
  std::string first_error;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  podium::bench::Flags flags(argc, argv);
  const std::string host = flags.String("host", "127.0.0.1");
  const int port = static_cast<int>(flags.Int("port", 8080));
  const auto connections =
      static_cast<std::size_t>(flags.Int("connections", 8));
  const auto total_requests =
      static_cast<std::size_t>(flags.Int("requests", 1000));
  const std::string body_file = flags.String("body-file", "");
  const auto distinct = static_cast<std::size_t>(flags.Int("distinct", 1));
  const bool explain = flags.Bool("explain", false);
  flags.CheckConsumed();
  if (connections == 0 || total_requests == 0 || distinct == 0) {
    std::fprintf(stderr,
                 "podium_loadgen: --connections, --requests and --distinct "
                 "must be >= 1\n");
    return 2;
  }

  // Request bodies: one fixed body, or K distinct ones varying the budget.
  std::vector<std::string> bodies;
  if (!body_file.empty()) {
    std::ifstream in(body_file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "podium_loadgen: cannot open %s\n",
                   body_file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bodies.push_back(buffer.str());
  } else {
    for (std::size_t i = 0; i < distinct; ++i) {
      bodies.push_back(podium::util::StringPrintf(
          "{\"budget\": %zu%s}", i + 2, explain ? ", \"explain\": true" : ""));
    }
  }

  std::atomic<std::size_t> next_request{0};
  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  podium::util::Stopwatch wall;

  for (std::size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& result = results[c];
      podium::serve::HttpClient client;
      podium::Status connected = client.Connect(host, port);
      if (!connected.ok()) {
        result.errors = 1;
        result.first_error = connected.ToString();
        return;
      }
      for (;;) {
        const std::size_t index =
            next_request.fetch_add(1, std::memory_order_relaxed);
        if (index >= total_requests) break;
        podium::serve::HttpRequest request;
        request.method = "POST";
        request.target = "/v1/select";
        request.headers.emplace_back("Host", host);
        request.headers.emplace_back("Content-Type", "application/json");
        request.body = bodies[index % bodies.size()];

        podium::util::Stopwatch clock;
        podium::Result<podium::serve::HttpResponse> response =
            client.RoundTrip(request);
        const double latency_ms = clock.ElapsedMillis();
        if (!response.ok()) {
          ++result.errors;
          if (result.first_error.empty()) {
            result.first_error = response.status().ToString();
          }
          // Transport failure kills the connection; reconnect and go on.
          if (!client.Connect(host, port).ok()) break;
          continue;
        }
        if (response->status < 200 || response->status >= 300) {
          ++result.errors;
          if (result.first_error.empty()) {
            result.first_error = podium::util::StringPrintf(
                "HTTP %d: %s", response->status,
                response->body.substr(0, 200).c_str());
          }
          continue;
        }
        result.latencies_ms.push_back(latency_ms);
        const std::string* cache = response->FindHeader("X-Podium-Cache");
        if (cache != nullptr && *cache == "hit") ++result.cache_hits;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> latencies;
  std::size_t errors = 0;
  std::size_t cache_hits = 0;
  std::string first_error;
  for (WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    errors += result.errors;
    cache_hits += result.cache_hits;
    if (first_error.empty()) first_error = result.first_error;
  }
  std::sort(latencies.begin(), latencies.end());

  std::printf("podium_loadgen: %zu requests, %zu ok, %zu errors, "
              "%zu cache hits over %zu connections in %.2fs\n",
              total_requests, latencies.size(), errors, cache_hits,
              connections, elapsed);
  if (!latencies.empty()) {
    std::printf(
        "  throughput %.1f req/s | latency ms p50 %.3f p95 %.3f p99 %.3f "
        "max %.3f\n",
        static_cast<double>(latencies.size()) / elapsed,
        Percentile(latencies, 0.50), Percentile(latencies, 0.95),
        Percentile(latencies, 0.99), latencies.back());
  }
  if (errors > 0) {
    std::fprintf(stderr, "podium_loadgen: first error: %s\n",
                 first_error.c_str());
    return 1;
  }
  return 0;
}
