// podium_lint: the repository's own static checker.
//
// Token-level (no compiler front end needed), so it runs in milliseconds
// over the whole tree and in any environment that can build the repo:
//
//   podium_lint src tools tests bench --exclude=tests/lint/fixtures
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. Findings print
// as "file:line: rule: message"; silence a deliberate violation with
// `// podium-lint: allow(<rule>)` on the same line or the line above.

#include <cstdio>
#include <string>
#include <vector>

#include "podium/lint/lint.h"
#include "podium/obs/log.h"
#include "podium/util/string_util.h"

namespace {

void PrintUsage() {
  // Usage text is for humans on a terminal, not log pipelines.
  // podium-lint: allow(raw-stderr)
  std::fprintf(stderr,
               "usage: podium_lint <dir-or-file>... "
               "[--exclude=<path-substring>]...\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  podium::lint::LintOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (podium::util::StartsWith(arg, "--exclude=")) {
      options.exclude_substrings.push_back(arg.substr(10));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 2;
    } else if (podium::util::StartsWith(arg, "-")) {
      podium::obs::LogError("unknown option").Str("option", arg);
      PrintUsage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    PrintUsage();
    return 2;
  }

  const podium::Result<std::vector<podium::lint::Finding>> findings =
      podium::lint::LintTree(roots, options);
  if (!findings.ok()) {
    podium::obs::LogError("lint failed")
        .Str("error", findings.status().ToString());
    return 2;
  }
  for (const podium::lint::Finding& finding : findings.value()) {
    std::printf("%s\n", podium::lint::FormatFinding(finding).c_str());
  }
  if (!findings.value().empty()) {
    podium::obs::LogError("lint findings")
        .Num("count", static_cast<double>(findings.value().size()));
    return 1;
  }
  return 0;
}
